//! The per-process tool API.
//!
//! A [`Node`] is what an application written against one of the 1995 tools
//! sees: its rank, the process count, and the tool's primitives
//! (send/receive, broadcast, barrier, global sum). The node prices every
//! operation through the tool's [`ToolProfile`] and the platform's fabric,
//! so identical application code exhibits each tool's measured behaviour.

use crate::error::ToolError;
use crate::profile::ToolProfile;
use crate::spec::ToolSpec;
use crate::tool::ToolKind;
use bytes::Bytes;
use pdceval_simnet::engine::Ctx;
use pdceval_simnet::envelope::{Envelope, Matcher};
use pdceval_simnet::fabric::Fabric;
use pdceval_simnet::flight::{Stage, Train, TransmitPlan};
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::ids::{ProcId, ResourceId, Tag};
use pdceval_simnet::perturb::{
    InjectedCrash, PerturbConfig, PerturbSpec, SplitMix64, MAX_RETRANSMITS,
};
use pdceval_simnet::platform::Platform;
use pdceval_simnet::time::{SimDuration, SimTime};
use pdceval_simnet::trace::{SpanPhase, TraceHandle, TraceSink};
use pdceval_simnet::work::Work;
use std::sync::{Arc, Mutex};

/// User message tags must be below this value; the range above is
/// reserved for the tool layer's internal collective protocols.
pub const RESERVED_TAG_BASE: Tag = 0xFFFF_0000;

pub(crate) const OP_BCAST: u32 = 1;
pub(crate) const OP_REDUCE: u32 = 2;
pub(crate) const OP_BARRIER_UP: u32 = 3;
pub(crate) const OP_BARRIER_DOWN: u32 = 4;
pub(crate) const OP_ACK: u32 = 5;
pub(crate) const OP_RING: u32 = 6;
pub(crate) const OP_REDUCE_DOWN: u32 = 7;

pub(crate) fn coll_tag(op: u32, seq: u32) -> Tag {
    RESERVED_TAG_BASE | (op << 12) | (seq & 0x0FFF)
}

/// Immutable per-run state shared by all nodes.
#[derive(Debug)]
pub(crate) struct Shared {
    pub platform: Platform,
    pub tool: ToolKind,
    /// The tool's spec, resolved once per run (not per node).
    pub tool_spec: Arc<ToolSpec>,
    pub fabric: Fabric,
    pub hosts: Vec<HostSpec>,
    /// Per-host protocol-stack transmit resource (p4, Express, PVM-direct).
    pub stack_tx: Vec<ResourceId>,
    /// Per-host protocol-stack receive resource.
    pub stack_rx: Vec<ResourceId>,
    /// Per-host single-threaded PVM daemon (serializes both directions).
    pub daemon: Vec<ResourceId>,
    pub nprocs: usize,
    /// The run's perturbation, if any. `None` is the clean path: no
    /// random draw ever happens and behaviour is byte-identical to the
    /// pre-perturbation model.
    pub perturb: Option<PerturbConfig>,
    /// The run's trace sink, if tracing is enabled. Recording is purely
    /// observational — no event scheduled, no draw taken — so a traced
    /// run is bit-identical to an untraced one.
    pub trace: Option<Arc<Mutex<TraceSink>>>,
    /// Price runs of identical fragments as batched trains (see
    /// `SpmdHarness::set_batch_trains`). Off by default so contended
    /// fragment interleaving stays byte-identical to the per-fragment
    /// model.
    pub batch_trains: bool,
}

/// Per-node perturbation state: the spec, this rank's private draw
/// stream, and the precomputed crash point (if this rank is the one
/// being crashed).
struct PerturbState {
    spec: Arc<PerturbSpec>,
    rng: SplitMix64,
    crash_at: Option<SimTime>,
}

/// What the perturbation layer actually did to one fragment, so the
/// trace can attribute injected slowdown (zeroed when nothing applied).
#[derive(Debug, Clone, Copy, Default)]
struct PerturbApplied {
    jitter_us: f64,
    lost: u32,
}

/// Applies a perturbation to one fragment's fabric stages, in a fixed
/// draw order (congestion, then jitter, then loss) so the sequence of
/// RNG draws — and hence replay — depends only on the spec, never on
/// scheduler interleaving. `applied` reports what was injected, for
/// tracing only.
fn perturb_net_stages(
    state: &mut PerturbState,
    mut net: Vec<Stage>,
    link_latency_us: f64,
    applied: &mut PerturbApplied,
) -> Vec<Stage> {
    if state.spec.congestion > 0.0 {
        // Background traffic inflates both wire occupancy and latency
        // for this fragment by a factor in [1, 1 + congestion].
        let factor = 1.0 + state.spec.congestion * state.rng.next_f64();
        for stage in &mut net {
            match stage {
                Stage::Latency(d) => {
                    *d = SimDuration::from_micros_f64(d.as_micros_f64() * factor);
                }
                Stage::Serve { service, .. } => {
                    *service = SimDuration::from_micros_f64(service.as_micros_f64() * factor);
                }
            }
        }
    }
    if state.spec.jitter > 0.0 {
        // Extra propagation delay in [0, jitter × link latency].
        let extra = link_latency_us * state.spec.jitter * state.rng.next_f64();
        applied.jitter_us = extra;
        net.push(Stage::Latency(SimDuration::from_micros_f64(extra)));
    }
    if state.spec.loss > 0.0 {
        // Each loss draw prices one failed traversal: the fragment
        // occupies the fabric, vanishes, and the sender waits out the
        // retransmit timeout before trying again. Retries are capped so
        // a pathological stream cannot stall a run forever.
        let mut lost = 0;
        while lost < MAX_RETRANSMITS && state.rng.next_f64() < state.spec.loss {
            lost += 1;
        }
        applied.lost = lost;
        if lost > 0 {
            let timeout = Stage::Latency(SimDuration::from_micros_f64(state.spec.loss_timeout_us));
            let mut priced = Vec::with_capacity((net.len() + 1) * (lost as usize + 1));
            for _ in 0..lost {
                priced.extend(net.iter().cloned());
                priced.push(timeout);
            }
            priced.extend(net);
            return priced;
        }
    }
    net
}

/// A received message.
#[derive(Debug, Clone)]
pub struct RecvMsg {
    /// Rank of the sender.
    pub src: usize,
    /// The message tag.
    pub tag: Tag,
    /// The payload.
    pub data: Bytes,
}

/// Per-node message statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Messages sent by this node (including internal collective traffic).
    pub messages_sent: u64,
    /// Payload bytes sent by this node.
    pub bytes_sent: u64,
}

/// Cost parameters of one send, derived from the profile (or overridden
/// for the tools' optimized tiny-message collective paths).
pub(crate) struct SendCosts {
    pub alpha_send_us: f64,
    pub beta_send_us_per_byte: f64,
    pub beta_recv_us_per_byte: f64,
    pub copy_before_us_per_byte: f64,
}

impl SendCosts {
    fn from_profile(p: &ToolProfile) -> SendCosts {
        SendCosts {
            alpha_send_us: p.send_alpha_us,
            beta_send_us_per_byte: p.send_beta_us_per_byte,
            beta_recv_us_per_byte: p.recv_beta_us_per_byte,
            copy_before_us_per_byte: p.copy_before_send_us_per_byte,
        }
    }

    /// A "light" transfer with a single fixed cost split across the two
    /// sides (the receive half is charged by `recv_light`) and no per-byte
    /// software cost — the tools' optimized small combine paths.
    fn light(alpha_us: f64) -> SendCosts {
        SendCosts {
            alpha_send_us: alpha_us / 2.0,
            beta_send_us_per_byte: 0.0,
            beta_recv_us_per_byte: 0.0,
            copy_before_us_per_byte: 0.0,
        }
    }
}

/// A process's view of the message-passing tool (see module docs).
pub struct Node<'a> {
    ctx: &'a Ctx,
    rank: usize,
    shared: Arc<Shared>,
    profile: ToolProfile,
    coll_seq: u32,
    stats: NodeStats,
    perturb: Option<PerturbState>,
    trace: Option<TraceHandle>,
}

impl<'a> Node<'a> {
    pub(crate) fn new(ctx: &'a Ctx, rank: usize, shared: Arc<Shared>) -> Node<'a> {
        let profile = shared.tool_spec.profile.clone();
        // The draw stream is a pure function of (seed, rank): replay is
        // bit-identical no matter how the scheduler interleaves ranks.
        let perturb = shared.perturb.as_ref().map(|cfg| PerturbState {
            spec: Arc::clone(&cfg.spec),
            rng: cfg.rank_stream(rank),
            crash_at: cfg.crash_point(rank),
        });
        let trace = shared
            .trace
            .as_ref()
            .map(|sink| TraceHandle::new(Arc::clone(sink), rank));
        Node {
            ctx,
            rank,
            shared,
            profile,
            coll_seq: 0,
            stats: NodeStats::default(),
            perturb,
            trace,
        }
    }

    // -- identity & environment (the paper's "system management" group) ----

    /// This node's rank in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the run.
    pub fn nprocs(&self) -> usize {
        self.shared.nprocs
    }

    /// The tool this run uses.
    pub fn tool(&self) -> ToolKind {
        self.shared.tool
    }

    /// The platform this run executes on.
    pub fn platform(&self) -> Platform {
        self.shared.platform
    }

    /// The host this node runs on.
    pub fn host(&self) -> &HostSpec {
        &self.shared.hosts[self.rank]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Message statistics for this node so far.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Switches PVM to direct task-to-task routing
    /// (`pvm_advise(PvmRouteDirect)`), as tuned applications did.
    /// A no-op for the other tools.
    pub fn advise_direct_route(&mut self) {
        self.profile = self.shared.tool_spec.direct_profile.clone();
    }

    /// Performs computational work, advancing virtual time by its cost on
    /// this node's host.
    pub fn compute(&mut self, w: Work) {
        self.maybe_crash();
        let start = self.ctx.now();
        self.ctx.work(w);
        if let Some(t) = &self.trace {
            let end = self.ctx.now();
            if end > start {
                t.with(|s, r| s.span(r, SpanPhase::Compute, start, end, 0, None));
            }
        }
    }

    /// Fires the injected rank crash if this rank's crash point has been
    /// reached. Checked at the entry of every tool primitive (a crashed
    /// process stops calling the tool — it does not die mid-transmission).
    /// The unwind payload is caught by the engine and surfaced as a
    /// structured `SimError::InjectedCrash`, so surviving ranks can never
    /// deadlock on the dead one.
    fn maybe_crash(&self) {
        if let Some(state) = &self.perturb {
            if let Some(at) = state.crash_at {
                if self.ctx.now() >= at {
                    if let Some(t) = &self.trace {
                        let now = self.ctx.now();
                        t.with(|s, r| s.crash(r, now));
                    }
                    // resume_unwind (not panic!) skips the panic hook: an
                    // injected crash is a modeled fault, not a bug report.
                    std::panic::resume_unwind(Box::new(InjectedCrash { at: self.ctx.now() }));
                }
            }
        }
    }

    /// Aborts the whole run with a message (models the tools' abort
    /// primitives); surfaces as a `ProcPanic` simulation error.
    pub fn abort(&mut self, msg: &str) -> ! {
        panic!("tool abort at rank {}: {msg}", self.rank);
    }

    // -- internal cost plumbing --------------------------------------------

    fn sw(&self, us: f64, host: usize) -> SimDuration {
        SimDuration::from_micros_f64(us * self.shared.hosts[host].sw_scale)
    }

    fn send_resource(&self, host: usize) -> ResourceId {
        if self.profile.daemon_routed {
            self.shared.daemon[host]
        } else {
            self.shared.stack_tx[host]
        }
    }

    fn recv_resource(&self, host: usize) -> ResourceId {
        if self.profile.daemon_routed {
            self.shared.daemon[host]
        } else {
            self.shared.stack_rx[host]
        }
    }

    /// Splits a wire payload at the effective fragmentation granularity:
    /// the smaller of the endpoint pair's link-class MTU and the tool's
    /// own fragment size (heterogeneous topologies fragment differently
    /// per link class; homogeneous ones have a single class).
    fn fragment_sizes(&self, wire_bytes: u64, src: usize, dst: usize) -> Vec<u64> {
        let net_mtu = self.shared.fabric.link_class(src, dst).mtu;
        let eff = match self.profile.max_fragment_bytes {
            Some(tool_frag) => net_mtu.min(tool_frag),
            None => net_mtu,
        } as u64;
        if wire_bytes == 0 {
            return vec![0];
        }
        let full = wire_bytes / eff;
        let rem = wire_bytes % eff;
        let mut sizes = vec![eff; full as usize];
        if rem > 0 {
            sizes.push(rem);
        }
        sizes
    }

    fn check_rank(&self, rank: usize) -> Result<(), ToolError> {
        if rank >= self.shared.nprocs {
            Err(ToolError::InvalidRank {
                rank,
                nprocs: self.shared.nprocs,
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn next_coll_seq(&mut self) -> u32 {
        let s = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        s
    }

    /// Marks entry into a collective on this rank's timeline (no-op when
    /// tracing is off).
    pub(crate) fn trace_collective(&self, op: &'static str) {
        if let Some(t) = &self.trace {
            let at = self.ctx.now();
            t.with(|s, r| s.collective(r, at, op));
        }
    }

    pub(crate) fn send_with_costs(
        &mut self,
        dst: usize,
        tag: Tag,
        data: Bytes,
        costs: &SendCosts,
    ) -> Result<(), ToolError> {
        self.maybe_crash();
        self.check_rank(dst)?;
        let src_host = self.rank;
        let dst_host = dst;
        let len = data.len() as u64;
        let wire_bytes = len + self.profile.header_bytes;
        let frags = self.fragment_sizes(wire_bytes, src_host, dst_host);
        let send_start = self.ctx.now();

        // Synchronous pre-send costs (Express buffer copy + segmentation,
        // PVM pack), paid on the send resource together with the fixed cost.
        let pre_us = costs.alpha_send_us
            + costs.copy_before_us_per_byte * len as f64
            + self.profile.seg_us_per_extra_fragment * (frags.len().saturating_sub(1)) as f64;
        self.ctx
            .serve(self.send_resource(src_host), self.sw(pre_us, src_host));
        let env = Envelope::new(ProcId(self.rank as u32), ProcId(dst as u32), tag, data)
            .with_wire_bytes(wire_bytes);

        let plan = if dst == self.rank {
            // Self-send: local memory move, no fabric involvement.
            TransmitPlan::instant()
        } else {
            let send_res = self.send_resource(src_host);
            let recv_res = self.recv_resource(dst_host);
            let link_latency_us = self
                .shared
                .fabric
                .link_class(src_host, dst_host)
                .latency
                .as_micros_f64();
            let class_name = if self.trace.is_some() {
                Some(
                    self.shared
                        .fabric
                        .link_class(src_host, dst_host)
                        .name
                        .clone(),
                )
            } else {
                None
            };
            // Runs of identical fragments (the splitter emits `full`
            // MTU-sized fragments plus an optional remainder) can be priced
            // as batched trains: one stage walk per run instead of one
            // flight per fragment. Opt-in via `Shared::batch_trains`, and
            // perturbed sends always keep one train per fragment because
            // perturbation draws are per-fragment.
            let per_fragment = !self.shared.batch_trains || self.perturb.is_some();
            let mut trains = Vec::with_capacity(2);
            let mut i = 0;
            while i < frags.len() {
                let frag = frags[i];
                let mut count = 1u32;
                if !per_fragment {
                    while i + (count as usize) < frags.len() && frags[i + count as usize] == frag {
                        count += 1;
                    }
                }
                i += count as usize;
                // Only the fabric traversal is perturbed; the endpoint
                // software costs (beta serve stages) are not network
                // conditions and stay exact.
                let mut net = self.shared.fabric.fragment_stages(src_host, dst_host, frag);
                let mut applied = PerturbApplied::default();
                if let Some(state) = self.perturb.as_mut() {
                    net = perturb_net_stages(state, net, link_latency_us, &mut applied);
                }
                if let Some(t) = &self.trace {
                    let class = class_name.as_deref().unwrap_or("");
                    let at = self.ctx.now();
                    let cost = net
                        .iter()
                        .map(|s| match s {
                            Stage::Latency(d) => *d,
                            Stage::Serve { service, .. } => *service,
                        })
                        .sum();
                    t.with(|s, r| {
                        s.link_train(r, class, frag, count, at, cost);
                        if applied.jitter_us > 0.0 {
                            s.jitter(r, at, SimDuration::from_micros_f64(applied.jitter_us));
                        }
                        if applied.lost > 0 {
                            s.retransmit(r, at, applied.lost);
                        }
                    });
                }
                let mut stages = Vec::with_capacity(net.len() + 2);
                if costs.beta_send_us_per_byte > 0.0 {
                    stages.push(Stage::Serve {
                        resource: send_res,
                        service: self.sw(costs.beta_send_us_per_byte * frag as f64, src_host),
                    });
                }
                stages.extend(net);
                if costs.beta_recv_us_per_byte > 0.0 {
                    stages.push(Stage::Serve {
                        resource: recv_res,
                        service: self.sw(costs.beta_recv_us_per_byte * frag as f64, dst_host),
                    });
                }
                trains.push(Train::new(stages, count));
            }
            TransmitPlan::trains(trains)
        };

        self.ctx.transmit(env, plan);
        if let Some(t) = &self.trace {
            let end = self.ctx.now();
            t.with(|s, r| s.span(r, SpanPhase::Send, send_start, end, len, Some(dst)));
        }
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += len;
        Ok(())
    }

    fn recv_with_costs(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
        alpha_recv_us: f64,
    ) -> Result<RecvMsg, ToolError> {
        self.maybe_crash();
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let m = Matcher {
            src: src.map(|s| ProcId(s as u32)),
            tag,
        };
        let wait_start = self.ctx.now();
        let env = self.ctx.recv(m);
        if let Some(t) = &self.trace {
            let end = self.ctx.now();
            let bytes = env.payload.len() as u64;
            let peer = env.src.index();
            t.with(|s, r| s.span(r, SpanPhase::RecvWait, wait_start, end, bytes, Some(peer)));
        }
        // A blocking receive may return past the crash point: the rank
        // dies before processing the message.
        self.maybe_crash();
        let me = self.rank;
        let wildcard = if src.is_none() {
            self.profile.wildcard_recv_extra_us
        } else {
            0.0
        };
        self.ctx.serve(
            self.recv_resource(me),
            self.sw(alpha_recv_us + wildcard, me),
        );
        Ok(RecvMsg {
            src: env.src.index(),
            tag: env.tag,
            data: env.payload,
        })
    }

    pub(crate) fn send_internal(
        &mut self,
        dst: usize,
        tag: Tag,
        data: Bytes,
    ) -> Result<(), ToolError> {
        let costs = SendCosts::from_profile(&self.profile);
        self.send_with_costs(dst, tag, data, &costs)
    }

    pub(crate) fn recv_internal(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<RecvMsg, ToolError> {
        let alpha = self.profile.recv_alpha_us;
        self.recv_with_costs(src, tag, alpha)
    }

    pub(crate) fn send_light(
        &mut self,
        dst: usize,
        tag: Tag,
        data: Bytes,
        alpha_us: f64,
    ) -> Result<(), ToolError> {
        let costs = SendCosts::light(alpha_us);
        self.send_with_costs(dst, tag, data, &costs)
    }

    pub(crate) fn recv_light(
        &mut self,
        src: usize,
        tag: Tag,
        alpha_us: f64,
    ) -> Result<RecvMsg, ToolError> {
        self.recv_with_costs(Some(src), Some(tag), alpha_us / 2.0)
    }

    pub(crate) fn profile(&self) -> &ToolProfile {
        &self.profile
    }

    fn check_user_tag(tag: Tag) -> Result<(), ToolError> {
        if tag >= RESERVED_TAG_BASE {
            Err(ToolError::ReservedTag { tag })
        } else {
            Ok(())
        }
    }

    // -- point-to-point (paper §2.1 group 1a) ------------------------------

    /// Sends `data` to `dst` with `tag` (contiguous buffer —
    /// `p4_send` / `exsend` / `pvm_pk* + pvm_send`).
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::InvalidRank`] for an out-of-range destination
    /// and [`ToolError::ReservedTag`] for tags at or above
    /// [`RESERVED_TAG_BASE`].
    pub fn send(&mut self, dst: usize, tag: Tag, data: Bytes) -> Result<(), ToolError> {
        Self::check_user_tag(tag)?;
        self.send_internal(dst, tag, data)
    }

    /// Sends logically strided (non-contiguous) data of `elem_bytes`-sized
    /// elements. PVM's typed packing handles strides natively; p4 and
    /// Express applications must first gather into a contiguous buffer,
    /// which this method prices as an extra per-element pass.
    ///
    /// # Errors
    ///
    /// Same as [`Node::send`].
    pub fn send_strided(
        &mut self,
        dst: usize,
        tag: Tag,
        data: Bytes,
        elem_bytes: usize,
    ) -> Result<(), ToolError> {
        Self::check_user_tag(tag)?;
        assert!(elem_bytes > 0, "element size must be positive");
        if self.profile.strided_native {
            // Native typed packing (pvm_pkint with stride): one memory
            // pass through the pack machinery.
            let pack = self.profile.strided_pack_us_per_byte;
            if pack > 0.0 {
                let host = self.rank;
                self.ctx.serve(
                    self.send_resource(host),
                    self.sw(pack * data.len() as f64, host),
                );
            }
        } else {
            // Gather into a contiguous staging buffer: a strided read pass
            // plus a sequential write pass, with per-element index math.
            let elems = (data.len() / elem_bytes) as u64;
            self.compute(Work {
                flops: 0,
                int_ops: elems * 8,
                bytes_moved: 2 * data.len() as u64,
            });
        }
        self.send_internal(dst, tag, data)
    }

    /// Receives a message. `src` and `tag` are optional filters (PVM-style
    /// wildcards); messages are matched in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::InvalidRank`] if `src` is out of range.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<Tag>) -> Result<RecvMsg, ToolError> {
        self.recv_internal(src, tag)
    }

    /// Non-blocking probe-and-receive (models `pvm_probe` + receive): if a
    /// matching message has arrived, receives it.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::InvalidRank`] if `src` is out of range.
    pub fn try_recv(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Result<Option<RecvMsg>, ToolError> {
        self.maybe_crash();
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let m = Matcher {
            src: src.map(|s| ProcId(s as u32)),
            tag,
        };
        match self.ctx.try_recv(m) {
            None => Ok(None),
            Some(env) => {
                let me = self.rank;
                let mut alpha = self.profile.recv_alpha_us;
                if src.is_none() {
                    alpha += self.profile.wildcard_recv_extra_us;
                }
                self.ctx.serve(self.recv_resource(me), self.sw(alpha, me));
                Ok(Some(RecvMsg {
                    src: env.src.index(),
                    tag: env.tag,
                    data: env.payload,
                }))
            }
        }
    }

    // -- collectives (paper §2.1 groups 1b & 2) ----------------------------

    /// Global synchronization (`exsync` / `p4_barrier` / `pvm_barrier`):
    /// returns once every rank has entered the barrier.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors from the underlying protocol.
    pub fn barrier(&mut self) -> Result<(), ToolError> {
        crate::collective::barrier(self)
    }

    /// One-to-many broadcast (`p4_broadcast` / `pvm_mcast` /
    /// `exbroadcast`). All ranks must call it with the same `root`; the
    /// root's `data` is returned on every rank (non-root arguments are
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::InvalidRank`] if `root` is out of range.
    pub fn broadcast(&mut self, root: usize, data: Bytes) -> Result<Bytes, ToolError> {
        self.check_rank(root)?;
        crate::collective::broadcast(self, root, data)
    }

    /// Global vector summation over `f64` (`p4_global_op` / `excombine`).
    /// Every rank contributes a slice of identical length and receives the
    /// element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Unsupported`] for PVM, which has no global
    /// operation (paper Table 1) — PVM applications hand-roll reductions
    /// from point-to-point messages instead.
    pub fn global_sum_f64(&mut self, xs: &[f64]) -> Result<Vec<f64>, ToolError> {
        crate::collective::global_sum_f64(self, xs)
    }

    /// Global vector summation over `i32`; see [`Node::global_sum_f64`].
    ///
    /// # Errors
    ///
    /// Returns [`ToolError::Unsupported`] for PVM.
    pub fn global_sum_i32(&mut self, xs: &[i32]) -> Result<Vec<i32>, ToolError> {
        crate::collective::global_sum_i32(self, xs)
    }

    /// Simultaneous ring shift ("all nodes send and receive", the paper's
    /// third TPL benchmark): sends `data` to rank `(rank + 1) % nprocs`
    /// and returns the payload received from `(rank - 1) % nprocs`.
    ///
    /// # Errors
    ///
    /// Propagates point-to-point errors from the underlying protocol.
    pub fn ring_shift(&mut self, data: Bytes) -> Result<Bytes, ToolError> {
        let p = self.shared.nprocs;
        if p == 1 {
            return Ok(data);
        }
        self.trace_collective("ring-shift");
        let seq = self.next_coll_seq();
        let tag = coll_tag(OP_RING, seq);
        let next = (self.rank + 1) % p;
        let prev = (self.rank + p - 1) % p;
        self.send_internal(next, tag, data)?;
        let msg = self.recv_internal(Some(prev), Some(tag))?;
        Ok(msg.data)
    }
}

impl std::fmt::Debug for Node<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("rank", &self.rank)
            .field("nprocs", &self.shared.nprocs)
            .field("tool", &self.shared.tool)
            .field("platform", &self.shared.platform)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_tags_are_reserved_and_distinct() {
        let t1 = coll_tag(OP_BCAST, 0);
        let t2 = coll_tag(OP_BCAST, 1);
        let t3 = coll_tag(OP_REDUCE, 0);
        assert!(t1 >= RESERVED_TAG_BASE);
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn coll_seq_wraps_within_tag_mask() {
        // Sequences 0 and 4096 map to the same tag; blocking collectives
        // can never have 4096 outstanding, so this is safe.
        assert_eq!(coll_tag(OP_BCAST, 0), coll_tag(OP_BCAST, 4096));
        assert_ne!(coll_tag(OP_BCAST, 1), coll_tag(OP_BCAST, 4095));
    }
}
