//! Collective-communication algorithms.
//!
//! Each tool implements collectives differently, and those differences
//! drive the paper's Figure 2 (broadcast), Figure 4 (global sum) and the
//! barrier behaviour:
//!
//! * p4 broadcasts along a **binomial tree** and reduces with a
//!   tree-gather + tree-release — `O(log P)` rounds;
//! * PVM's `pvm_mcast` is a **sequential fan-out** from the root;
//! * Express's `exbroadcast` is a sequential fan-out where the root waits
//!   for an **acknowledgement** after every child (fully serialized), and
//!   its `excombine` is a **sequential ring** accumulate-and-circulate.
//!
//! All algorithms are real message protocols built from the node's
//! point-to-point primitives, so software overheads, wire contention and
//! pipelining all apply.

use crate::error::ToolError;
use crate::message::{MsgReader, MsgWriter};
use crate::node::{
    coll_tag, Node, OP_ACK, OP_BARRIER_DOWN, OP_BARRIER_UP, OP_BCAST, OP_REDUCE, OP_REDUCE_DOWN,
};
use crate::profile::{BcastAlgo, ReduceAlgo};
use crate::tool::ToolKind;
use bytes::Bytes;
use pdceval_simnet::ids::Tag;
use pdceval_simnet::work::Work;

/// Payloads at or below this size take the tools' optimized small-combine
/// path in reductions (Express's `excombine` fast path).
const SMALL_COMBINE_BYTES: usize = 64;

/// Binomial-tree broadcast (MPICH pattern), used by p4 and by the barrier
/// release phase. `light_alpha` selects the tools' optimized small-payload
/// transfer path (used by tiny reductions).
fn bcast_binomial_with(
    node: &mut Node<'_>,
    root: usize,
    data: Bytes,
    tag: Tag,
    light_alpha: Option<f64>,
) -> Result<Bytes, ToolError> {
    let p = node.nprocs();
    let me = node.rank();
    let relative = (me + p - root) % p;
    let mut payload = data;
    let mut mask = 1usize;
    while mask < p {
        if relative & mask != 0 {
            let src = (relative - mask + root) % p;
            payload = match light_alpha {
                Some(a) => node.recv_light(src, tag, a)?.data,
                None => node.recv_internal(Some(src), Some(tag))?.data,
            };
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if relative + mask < p {
            let dst = (relative + mask + root) % p;
            match light_alpha {
                Some(a) => node.send_light(dst, tag, payload.clone(), a)?,
                None => node.send_internal(dst, tag, payload.clone())?,
            }
        }
        mask >>= 1;
    }
    Ok(payload)
}

fn bcast_binomial(
    node: &mut Node<'_>,
    root: usize,
    data: Bytes,
    tag: Tag,
) -> Result<Bytes, ToolError> {
    bcast_binomial_with(node, root, data, tag, None)
}

/// Sequential fan-out from the root (PVM `pvm_mcast`), optionally waiting
/// for a per-child acknowledgement (Express `exbroadcast`).
fn bcast_sequential(
    node: &mut Node<'_>,
    root: usize,
    data: Bytes,
    tag: Tag,
    ack_tag: Option<Tag>,
) -> Result<Bytes, ToolError> {
    let p = node.nprocs();
    let me = node.rank();
    if me == root {
        for dst in 0..p {
            if dst == root {
                continue;
            }
            node.send_internal(dst, tag, data.clone())?;
            if let Some(at) = ack_tag {
                let _ = node.recv_internal(Some(dst), Some(at))?;
            }
        }
        Ok(data)
    } else {
        let msg = node.recv_internal(Some(root), Some(tag))?;
        if let Some(at) = ack_tag {
            node.send_internal(root, at, Bytes::new())?;
        }
        Ok(msg.data)
    }
}

/// Dispatches a broadcast according to the tool's algorithm.
pub(crate) fn broadcast(node: &mut Node<'_>, root: usize, data: Bytes) -> Result<Bytes, ToolError> {
    node.trace_collective("broadcast");
    let seq = node.next_coll_seq();
    let tag = coll_tag(OP_BCAST, seq);
    match node.profile().bcast {
        BcastAlgo::BinomialTree => bcast_binomial(node, root, data, tag),
        BcastAlgo::SequentialRoot => bcast_sequential(node, root, data, tag, None),
        BcastAlgo::SequentialAck => {
            let ack = coll_tag(OP_ACK, seq);
            bcast_sequential(node, root, data, tag, Some(ack))
        }
    }
}

/// Barrier: binomial gather of empty messages to rank 0, then binomial
/// release. Message costs differ per tool through the send path.
pub(crate) fn barrier(node: &mut Node<'_>) -> Result<(), ToolError> {
    let p = node.nprocs();
    if p == 1 {
        return Ok(());
    }
    node.trace_collective("barrier");
    let seq = node.next_coll_seq();
    let up = coll_tag(OP_BARRIER_UP, seq);
    let down = coll_tag(OP_BARRIER_DOWN, seq);
    let me = node.rank();

    // Gather phase: each node waits for all children, then reports to parent.
    let mut mask = 1usize;
    while mask < p {
        if me & mask != 0 {
            node.send_internal(me - mask, up, Bytes::new())?;
            break;
        }
        let child = me + mask;
        if child < p {
            let _ = node.recv_internal(Some(child), Some(up))?;
        }
        mask <<= 1;
    }

    // Release phase: binomial broadcast of an empty payload from rank 0.
    bcast_binomial(node, 0, Bytes::new(), down)?;
    Ok(())
}

/// Element types that tool reductions can sum.
trait SumElem: Copy {
    const BYTES: usize;
    fn encode(xs: &[Self]) -> Bytes;
    fn decode(data: Bytes) -> Result<Vec<Self>, ToolError>;
    fn add_into(acc: &mut [Self], xs: &[Self]);
    /// Work of one element-wise addition pass of length `n`.
    fn add_work(n: usize) -> Work;
}

impl SumElem for f64 {
    const BYTES: usize = 8;
    fn encode(xs: &[Self]) -> Bytes {
        let mut w = MsgWriter::with_capacity(4 + xs.len() * 8);
        w.put_f64_slice(xs);
        w.freeze()
    }
    fn decode(data: Bytes) -> Result<Vec<Self>, ToolError> {
        Ok(MsgReader::new(data).get_f64_slice()?)
    }
    fn add_into(acc: &mut [Self], xs: &[Self]) {
        for (a, x) in acc.iter_mut().zip(xs) {
            *a += *x;
        }
    }
    fn add_work(n: usize) -> Work {
        Work::flops(n as u64)
    }
}

impl SumElem for i32 {
    const BYTES: usize = 4;
    fn encode(xs: &[Self]) -> Bytes {
        let mut w = MsgWriter::with_capacity(4 + xs.len() * 4);
        w.put_i32_slice(xs);
        w.freeze()
    }
    fn decode(data: Bytes) -> Result<Vec<Self>, ToolError> {
        Ok(MsgReader::new(data).get_i32_slice()?)
    }
    fn add_into(acc: &mut [Self], xs: &[Self]) {
        for (a, x) in acc.iter_mut().zip(xs) {
            *a = a.wrapping_add(*x);
        }
    }
    fn add_work(n: usize) -> Work {
        Work::int_ops(n as u64)
    }
}

/// Sends a reduction payload: small payloads use the tool's optimized
/// combine path, large ones the normal send path.
fn reduce_send(node: &mut Node<'_>, dst: usize, tag: Tag, data: Bytes) -> Result<(), ToolError> {
    let small = data.len() <= SMALL_COMBINE_BYTES;
    let alpha = node.profile().small_combine_alpha_us;
    if small && alpha.is_finite() {
        node.send_light(dst, tag, data, alpha)
    } else {
        node.send_internal(dst, tag, data)
    }
}

fn reduce_recv(node: &mut Node<'_>, src: usize, tag: Tag, small: bool) -> Result<Bytes, ToolError> {
    let alpha = node.profile().small_combine_alpha_us;
    if small && alpha.is_finite() {
        Ok(node.recv_light(src, tag, alpha)?.data)
    } else {
        Ok(node.recv_internal(Some(src), Some(tag))?.data)
    }
}

fn global_sum_impl<T: SumElem>(node: &mut Node<'_>, xs: &[T]) -> Result<Vec<T>, ToolError> {
    let algo = match node.profile().reduce {
        Some(a) => a,
        None => {
            return Err(ToolError::Unsupported {
                tool: node.tool(),
                op: "global sum",
            })
        }
    };
    node.trace_collective("global-sum");
    let p = node.nprocs();
    let me = node.rank();
    let seq = node.next_coll_seq();
    let up = coll_tag(OP_REDUCE, seq);
    let down = coll_tag(OP_REDUCE_DOWN, seq);
    let small = xs.len() * T::BYTES + 4 <= SMALL_COMBINE_BYTES;
    let mut acc: Vec<T> = xs.to_vec();

    if p == 1 {
        return Ok(acc);
    }

    match algo {
        ReduceAlgo::Tree => {
            // Binomial gather with accumulation, then tree broadcast.
            let mut mask = 1usize;
            while mask < p {
                if me & mask != 0 {
                    reduce_send(node, me - mask, up, T::encode(&acc))?;
                    break;
                }
                let child = me + mask;
                if child < p {
                    let data = reduce_recv(node, child, up, small)?;
                    let v = T::decode(data)?;
                    node.compute(T::add_work(acc.len()));
                    T::add_into(&mut acc, &v);
                }
                mask <<= 1;
            }
            let alpha = node.profile().small_combine_alpha_us;
            let light = if small && alpha.is_finite() {
                Some(alpha)
            } else {
                None
            };
            let result = bcast_binomial_with(
                node,
                0,
                if me == 0 {
                    T::encode(&acc)
                } else {
                    Bytes::new()
                },
                down,
                light,
            )?;
            T::decode(result)
        }
        ReduceAlgo::Ring => {
            // Sequential accumulate 0 -> 1 -> ... -> P-1, then circulate
            // the total P-1 -> 0 -> 1 -> ... -> P-2.
            if me == 0 {
                reduce_send(node, 1, up, T::encode(&acc))?;
            } else {
                let data = reduce_recv(node, me - 1, up, small)?;
                let v = T::decode(data)?;
                node.compute(T::add_work(acc.len()));
                T::add_into(&mut acc, &v);
                if me + 1 < p {
                    reduce_send(node, me + 1, up, T::encode(&acc))?;
                }
            }
            if me == p - 1 {
                reduce_send(node, 0, down, T::encode(&acc))?;
                Ok(acc)
            } else {
                let prev = (me + p - 1) % p;
                let data = reduce_recv(node, prev, down, small)?;
                let total = T::decode(data)?;
                if me + 1 < p - 1 {
                    reduce_send(node, me + 1, down, T::encode(&total))?;
                }
                Ok(total)
            }
        }
    }
}

/// Global `f64` vector sum; see [`Node::global_sum_f64`].
pub(crate) fn global_sum_f64(node: &mut Node<'_>, xs: &[f64]) -> Result<Vec<f64>, ToolError> {
    global_sum_impl(node, xs)
}

/// Global `i32` vector sum; see [`Node::global_sum_i32`].
pub(crate) fn global_sum_i32(node: &mut Node<'_>, xs: &[i32]) -> Result<Vec<i32>, ToolError> {
    global_sum_impl(node, xs)
}

/// True if the tool/algorithm combination exists (used by evaluation code
/// to mirror the paper's "Not Available" entries). Resolved from the
/// tool's spec, so spec-registered tools answer correctly too.
pub fn tool_has_reduce(tool: ToolKind) -> bool {
    tool.supports_global_ops()
}

#[cfg(test)]
mod tests {
    // The collective algorithms are exercised end-to-end in the runtime
    // tests (they need a running simulation); here we only test the pure
    // helpers.
    use super::*;

    #[test]
    fn sum_elem_f64_round_trip() {
        let xs = [1.5f64, -2.0, 3.25];
        let enc = <f64 as SumElem>::encode(&xs);
        let dec = <f64 as SumElem>::decode(enc).unwrap();
        assert_eq!(dec, xs);
    }

    #[test]
    fn sum_elem_i32_add() {
        let mut acc = [1i32, 2, 3];
        <i32 as SumElem>::add_into(&mut acc, &[10, 20, 30]);
        assert_eq!(acc, [11, 22, 33]);
    }

    #[test]
    fn add_work_units_match_type() {
        assert_eq!(<f64 as SumElem>::add_work(5), Work::flops(5));
        assert_eq!(<i32 as SumElem>::add_work(5), Work::int_ops(5));
    }

    #[test]
    fn reduce_support_mirrors_table1() {
        assert!(tool_has_reduce(ToolKind::P4));
        assert!(tool_has_reduce(ToolKind::EXPRESS));
        assert!(!tool_has_reduce(ToolKind::PVM));
    }
}
