//! Severity-carrying diagnostics shared by `pdceval validate` and
//! `pdceval lint`.
//!
//! Every diagnostic carries a stable code (`L0xxx`), a severity, an
//! optional source location, and a human-readable message. Two renderings
//! exist:
//!
//! * [`Diag::render`] — the full form used by `pdceval lint`:
//!   `warning[L0101]: file.spec:12: message`;
//! * [`Diag::render_bare`] — the legacy form `warning: message`, kept so
//!   `pdceval validate`'s pre-existing warning output stays byte-
//!   compatible.
//!
//! # Diagnostic code index
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | L0001 | error    | spec failed to parse or validate |
//! | L0011 | warning  | tool `ports.allow`/`ports.deny` names an unknown platform |
//! | L0012 | warning  | campaign `tools` selector names an unknown tool |
//! | L0013 | warning  | campaign `platforms` selector names an unknown platform |
//! | L0014 | warning  | campaign `perturb` selector names an unknown perturbation |
//! | L0101 | warning  | dead tool: declared but referenced by no campaign |
//! | L0102 | warning  | dead platform: declared but referenced by no campaign |
//! | L0103 | warning  | dead perturbation: declared but referenced by no campaign |
//! | L0201 | error    | unsatisfiable grid: every scenario point is filtered out |
//! | L0202 | warning  | `nprocs` exceeds a selected platform's capacity |
//! | L0301 | warning  | crash perturbation can never fire (`crash.rank` ≥ every campaign's max nprocs) |
//! | L0302 | warning  | randomized perturbation swept with `seeds = 1` |
//! | L0401 | warning  | slug collision across namespaces within one file |
//! | L0402 | error    | slug shadows an already-registered model (load would fail) |
//! | L0403 | error    | campaign name collides with a built-in campaign |
//! | L0501 | warning  | link latency/bandwidth orders of magnitude off its peers |
//!
//! The exit-code contract for both commands: `0` clean, `1` warnings
//! under `--deny-warnings`, `2` errors. See [`exit_code`].

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not fatal; gates only under `--deny-warnings`.
    Warning,
    /// The spec is wrong or could not be loaded; always gates.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One diagnostic produced by the spec lint or validation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable diagnostic code, e.g. `"L0101"`. Codes are append-only:
    /// once published they keep their meaning forever.
    pub code: &'static str,
    /// How serious the finding is (drives the exit-code contract).
    pub severity: Severity,
    /// Source file the diagnostic refers to, when known.
    pub file: Option<String>,
    /// 1-based line of the offending stanza header, when known.
    pub line: Option<usize>,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diag {
    /// A warning with no location (attach one with [`Diag::at`]).
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diag {
        Diag {
            code,
            severity: Severity::Warning,
            file: None,
            line: None,
            message: message.into(),
        }
    }

    /// An error with no location (attach one with [`Diag::at`]).
    pub fn error(code: &'static str, message: impl Into<String>) -> Diag {
        Diag {
            code,
            severity: Severity::Error,
            file: None,
            line: None,
            message: message.into(),
        }
    }

    /// Attaches a source location.
    #[must_use]
    pub fn at(mut self, file: impl Into<String>, line: Option<usize>) -> Diag {
        self.file = Some(file.into());
        self.line = line;
        self
    }

    /// Full rendering with code and location:
    /// `warning[L0101]: file.spec:12: message`.
    pub fn render(&self) -> String {
        match (&self.file, self.line) {
            (Some(f), Some(l)) => {
                format!(
                    "{}[{}]: {}:{}: {}",
                    self.severity, self.code, f, l, self.message
                )
            }
            (Some(f), None) => format!("{}[{}]: {}: {}", self.severity, self.code, f, self.message),
            _ => format!("{}[{}]: {}", self.severity, self.code, self.message),
        }
    }

    /// Legacy rendering without code or location: `warning: message`.
    /// `pdceval validate` uses this for its pre-existing warning classes
    /// so their output stays byte-compatible.
    pub fn render_bare(&self) -> String {
        format!("{}: {}", self.severity, self.message)
    }
}

/// The most severe level present, if any diagnostics exist.
pub fn worst(diags: &[Diag]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// The `pdceval lint`/`validate` exit-code contract (matches `diff`'s
/// gating conventions): `0` clean, `1` warnings under `--deny-warnings`,
/// `2` errors. Warnings without `--deny-warnings` do not gate.
pub fn exit_code(diags: &[Diag], deny_warnings: bool) -> u8 {
    match worst(diags) {
        Some(Severity::Error) => 2,
        Some(Severity::Warning) if deny_warnings => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_full_and_bare_forms() {
        let d = Diag::warning("L0101", "tool 'x' is never referenced").at("a.spec", Some(12));
        assert_eq!(
            d.render(),
            "warning[L0101]: a.spec:12: tool 'x' is never referenced"
        );
        assert_eq!(d.render_bare(), "warning: tool 'x' is never referenced");
        let e = Diag::error("L0201", "no valid points");
        assert_eq!(e.render(), "error[L0201]: no valid points");
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        let clean: Vec<Diag> = Vec::new();
        let warn = vec![Diag::warning("L0101", "w")];
        let err = vec![Diag::warning("L0101", "w"), Diag::error("L0201", "e")];
        assert_eq!(exit_code(&clean, false), 0);
        assert_eq!(exit_code(&clean, true), 0);
        assert_eq!(exit_code(&warn, false), 0);
        assert_eq!(exit_code(&warn, true), 1);
        assert_eq!(exit_code(&err, false), 2);
        assert_eq!(exit_code(&err, true), 2);
        assert_eq!(worst(&err), Some(Severity::Error));
    }
}
