//! # pdceval-mpt
//!
//! The three message-passing tools evaluated by *"Software Tool Evaluation
//! Methodology"* (Hariri et al., 1995) — **Express**, **p4** and **PVM** —
//! implemented as runtimes over the [`pdceval_simnet`] testbed simulator.
//!
//! Applications are written once against the [`node::Node`] API and run
//! under any tool; each tool's measured behaviour (fixed overheads,
//! per-byte costs, daemon routing, broadcast/reduction algorithms,
//! capability gaps) is reproduced by its [`profile::ToolProfile`] and the
//! protocol implementations in [`collective`].
//!
//! # Example
//!
//! ```
//! use bytes::Bytes;
//! use pdceval_mpt::prelude::*;
//!
//! let cfg = SpmdConfig::new(Platform::SUN_ATM_LAN, ToolKind::PVM, 4);
//! let out = run_spmd(&cfg, |node| {
//!     // A rank-0-rooted broadcast, PVM style (sequential pvm_mcast).
//!     let data = if node.rank() == 0 {
//!         Bytes::from(vec![42u8; 1024])
//!     } else {
//!         Bytes::new()
//!     };
//!     node.broadcast(0, data).unwrap().len()
//! })?;
//! assert!(out.results.iter().all(|&n| n == 1024));
//! # Ok::<(), pdceval_mpt::error::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builtin;
pub mod collective;
pub mod diag;
pub mod error;
pub mod hash;
pub mod message;
pub mod node;
pub mod profile;
pub mod registry;
pub mod runtime;
pub mod spec;
pub mod tool;

pub use node::{Node, RecvMsg};
pub use registry::ModelRegistry;
pub use runtime::{run_spmd, SparseOutcome, SpmdConfig, SpmdHarness, SpmdOutcome};
pub use spec::{CampaignSpec, SpecFile, Support, ToolSpec};
pub use tool::{Primitive, ToolId, ToolKind};

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::error::{RunError, ToolError};
    pub use crate::message::{MsgReader, MsgWriter};
    pub use crate::node::{Node, RecvMsg};
    pub use crate::profile::ToolProfile;
    pub use crate::registry::ModelRegistry;
    pub use crate::runtime::{run_spmd, SparseOutcome, SpmdConfig, SpmdHarness, SpmdOutcome};
    pub use crate::spec::{CampaignSpec, SpecFile, Support, ToolSpec};
    pub use crate::tool::{Primitive, ToolId, ToolKind};
    pub use pdceval_simnet::platform::{Platform, PlatformId, PlatformSpec};
    pub use pdceval_simnet::time::{SimDuration, SimTime};
    pub use pdceval_simnet::work::Work;
}
