//! Error types for the tool layer.

use crate::tool::ToolKind;
use pdceval_simnet::error::SimError;
use pdceval_simnet::platform::Platform;
use pdceval_simnet::time::SimTime;
use std::error::Error;
use std::fmt;

/// Errors reported by individual tool primitives.
///
/// The paper's §2.3 "Error Handling" criterion observes that none of the
/// 1995 tools handled errors gracefully; this reproduction does better —
/// every misuse surfaces as a typed error rather than a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolError {
    /// The tool does not implement the requested primitive (e.g. PVM has
    /// no global-sum operation — paper Table 1, "Not Available").
    Unsupported {
        /// The tool lacking the primitive.
        tool: ToolKind,
        /// The primitive's name.
        op: &'static str,
    },
    /// A rank argument was outside `0..nprocs`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Number of processes in the run.
        nprocs: usize,
    },
    /// A user message tag collided with the reserved internal tag space.
    ReservedTag {
        /// The offending tag.
        tag: u32,
    },
    /// A typed payload failed to decode.
    Codec(CodecError),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Unsupported { tool, op } => {
                write!(f, "{tool} does not support the {op} primitive")
            }
            ToolError::InvalidRank { rank, nprocs } => {
                write!(f, "rank {rank} is out of range for {nprocs} process(es)")
            }
            ToolError::ReservedTag { tag } => {
                write!(f, "tag {tag:#x} lies in the reserved internal tag space")
            }
            ToolError::Codec(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl Error for ToolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ToolError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for ToolError {
    fn from(e: CodecError) -> Self {
        ToolError::Codec(e)
    }
}

/// Errors decoding a typed message payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran past the end of the payload.
    UnexpectedEnd {
        /// Bytes requested.
        wanted: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// A length prefix was implausibly large.
    BadLength {
        /// The decoded length.
        len: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { wanted, available } => {
                write!(
                    f,
                    "unexpected end of payload: wanted {wanted} bytes, {available} available"
                )
            }
            CodecError::BadLength { len } => write!(f, "implausible length prefix {len}"),
        }
    }
}

impl Error for CodecError {}

/// Errors aborting an entire SPMD run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The underlying simulation failed (deadlock or process panic).
    Sim(SimError),
    /// The tool has no port for this platform (e.g. Express was not
    /// available across the NYNET ATM WAN in the paper's experiments).
    PlatformUnsupported {
        /// The tool requested.
        tool: ToolKind,
        /// The unsupported platform.
        platform: Platform,
    },
    /// More nodes were requested than the platform offers.
    TooManyNodes {
        /// Nodes requested.
        requested: usize,
        /// Nodes available.
        max: usize,
    },
    /// Zero nodes were requested.
    ZeroNodes,
    /// A rank was crashed by fault injection (see
    /// `pdceval_simnet::perturb`). This is the *expected* structured
    /// outcome of a crash-perturbed run whose collectives could not
    /// tolerate the dead rank — the run terminated cleanly instead of
    /// deadlocking.
    RankCrashed {
        /// The crashed rank.
        rank: usize,
        /// Virtual time at which the crash fired.
        at: SimTime,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::PlatformUnsupported { tool, platform } => {
                write!(f, "{tool} has no port for the {platform} platform")
            }
            RunError::TooManyNodes { requested, max } => {
                write!(f, "requested {requested} nodes but the platform has {max}")
            }
            RunError::ZeroNodes => write!(f, "an SPMD run needs at least one node"),
            RunError::RankCrashed { rank, at } => {
                write!(f, "rank {rank} crashed by fault injection at {at}")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = ToolError::Unsupported {
            tool: ToolKind::PVM,
            op: "global sum",
        };
        assert!(e.to_string().contains("PVM"));
        assert!(e.to_string().contains("global sum"));

        let e = ToolError::InvalidRank { rank: 9, nprocs: 4 };
        assert!(e.to_string().contains('9'));

        let e = RunError::PlatformUnsupported {
            tool: ToolKind::EXPRESS,
            platform: Platform::SUN_ATM_WAN,
        };
        assert!(e.to_string().contains("Express"));
        assert!(e.to_string().contains("NYNET"));

        let e = RunError::RankCrashed {
            rank: 2,
            at: SimTime::from_nanos(1_500_000),
        };
        let s = e.to_string();
        assert!(s.contains("rank 2"), "{s}");
        assert!(s.contains("fault injection"), "{s}");
    }

    #[test]
    fn codec_error_converts() {
        let c = CodecError::UnexpectedEnd {
            wanted: 8,
            available: 3,
        };
        let t: ToolError = c.into();
        assert_eq!(t, ToolError::Codec(c));
    }
}
