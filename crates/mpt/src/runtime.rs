//! The SPMD run harness: builds a simulated cluster, spawns one node
//! process per host, runs an application function on every rank, and
//! collects per-rank results plus timing.
//!
//! # Examples
//!
//! ```
//! use pdceval_mpt::runtime::{run_spmd, SpmdConfig};
//! use pdceval_mpt::ToolKind;
//! use pdceval_simnet::platform::Platform;
//!
//! let cfg = SpmdConfig::new(Platform::SUN_ETHERNET, ToolKind::P4, 4);
//! let out = run_spmd(&cfg, |node| {
//!     // Everyone contributes its rank; the barrier synchronizes.
//!     node.barrier().unwrap();
//!     node.rank() * 10
//! })?;
//! assert_eq!(out.results, vec![0, 10, 20, 30]);
//! assert!(out.elapsed.as_millis_f64() > 0.0);
//! # Ok::<(), pdceval_mpt::error::RunError>(())
//! ```

use crate::error::RunError;
use crate::node::{Node, Shared};
use crate::tool::ToolKind;
use pdceval_simnet::engine::{Ctx, SimOutcome, Simulation};
use pdceval_simnet::error::SimError;
use pdceval_simnet::fabric::Fabric;
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::ids::ResourceId;
use pdceval_simnet::perturb::PerturbConfig;
use pdceval_simnet::platform::Platform;
use pdceval_simnet::time::{SimDuration, SimTime};
use pdceval_simnet::trace::TraceSink;
use std::sync::{Arc, Mutex};

/// Configuration of one SPMD run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmdConfig {
    /// The testbed to run on.
    pub platform: Platform,
    /// The message-passing tool to use.
    pub tool: ToolKind,
    /// Number of node processes (one per host).
    pub nprocs: usize,
}

impl SpmdConfig {
    /// Creates a run configuration.
    pub fn new(platform: Platform, tool: ToolKind, nprocs: usize) -> SpmdConfig {
        SpmdConfig {
            platform,
            tool,
            nprocs,
        }
    }

    /// Checks the configuration against the platform's node limits and the
    /// tool's platform ports (Express had no NYNET WAN port).
    ///
    /// # Errors
    ///
    /// * [`RunError::ZeroNodes`] / [`RunError::TooManyNodes`] for bad sizes;
    /// * [`RunError::PlatformUnsupported`] for a missing tool port.
    pub fn validate(&self) -> Result<(), RunError> {
        validate_size(self.platform, self.nprocs)?;
        if !self.tool.supports_platform(self.platform) {
            return Err(RunError::PlatformUnsupported {
                tool: self.tool,
                platform: self.platform,
            });
        }
        Ok(())
    }
}

fn validate_size(platform: Platform, nprocs: usize) -> Result<(), RunError> {
    if nprocs == 0 {
        return Err(RunError::ZeroNodes);
    }
    let max = platform.max_nodes();
    if nprocs > max {
        return Err(RunError::TooManyNodes {
            requested: nprocs,
            max,
        });
    }
    Ok(())
}

/// Results of a completed SPMD run.
#[derive(Debug, Clone)]
pub struct SpmdOutcome<T> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<T>,
    /// Virtual time from start to the last rank's completion — the
    /// "execution time" every table and figure of the paper reports.
    pub elapsed: SimDuration,
    /// Per-rank completion times.
    pub rank_finish: Vec<SimDuration>,
    /// Raw simulation statistics (resource utilization, message counts).
    pub sim: SimOutcome,
}

/// Results of a sparse SPMD run ([`SpmdHarness::run_sparse`]): only the
/// ranks that actually ran — eagerly active, or materialized by an
/// incoming message — report results.
#[derive(Debug, Clone)]
pub struct SparseOutcome<T> {
    /// `(rank, result)` for every rank that ran, in rank order.
    pub results: Vec<(usize, T)>,
    /// Virtual time to the last running rank's completion.
    pub elapsed: SimDuration,
    /// Raw simulation statistics (resource utilization, message counts).
    pub sim: SimOutcome,
}

/// A reusable SPMD run skeleton: one simulated cluster (fabric, hosts,
/// protocol-stack and daemon resources) kept alive across sweep points.
///
/// Building the cluster — registering the fabric's wire/port resources
/// and the per-host stack/daemon resources — used to happen once per
/// [`run_spmd`] call, i.e. once per sweep *point*. A harness does it once
/// per `(platform, nprocs)` pair; each [`SpmdHarness::run`] then only
/// spawns the rank processes, runs, and resets the engine in place
/// ([`Simulation::run_in_place`]). The tool may differ per point, so one
/// harness serves all three tools on its platform.
///
/// Runs through a harness are deterministic and bit-identical to
/// standalone [`run_spmd`] runs of the same configuration: the resource
/// registration order, process ids and event schedule are exactly the
/// same.
///
/// # Examples
///
/// ```
/// use pdceval_mpt::runtime::SpmdHarness;
/// use pdceval_mpt::ToolKind;
/// use pdceval_simnet::platform::Platform;
///
/// let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, 4)?;
/// for tool in ToolKind::all() {
///     let out = h.run(tool, |node| {
///         node.barrier().unwrap();
///         node.rank()
///     })?;
///     assert_eq!(out.results, vec![0, 1, 2, 3]);
/// }
/// # Ok::<(), pdceval_mpt::error::RunError>(())
/// ```
pub struct SpmdHarness {
    platform: Platform,
    nprocs: usize,
    sim: Simulation,
    fabric: Fabric,
    hosts: Vec<HostSpec>,
    /// Per-rank topology group name (straggler multipliers target groups).
    groups: Vec<String>,
    stack_tx: Vec<ResourceId>,
    stack_rx: Vec<ResourceId>,
    daemon: Vec<ResourceId>,
    batch_trains: bool,
}

impl std::fmt::Debug for SpmdHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmdHarness")
            .field("platform", &self.platform)
            .field("nprocs", &self.nprocs)
            .finish_non_exhaustive()
    }
}

impl SpmdHarness {
    /// Builds the cluster skeleton for `nprocs` hosts of `platform`.
    ///
    /// # Errors
    ///
    /// [`RunError::ZeroNodes`] / [`RunError::TooManyNodes`] for sizes the
    /// platform cannot host.
    pub fn new(platform: Platform, nprocs: usize) -> Result<SpmdHarness, RunError> {
        validate_size(platform, nprocs)?;
        let spec = platform.spec();
        let mut sim = Simulation::new();
        let fabric = Fabric::build(&mut sim, &spec.topology, nprocs);
        // Deterministic placement: rank r lands on the host model of the
        // topology group covering index r (groups fill in declaration
        // order), so skewed host groups show up as per-rank speeds.
        let placement = spec.topology.placement();
        let hosts: Vec<_> = (0..nprocs)
            .map(|r| spec.topology.groups[placement.group_of(r)].host.clone())
            .collect();
        let groups: Vec<_> = (0..nprocs)
            .map(|r| spec.topology.groups[placement.group_of(r)].name.clone())
            .collect();
        let stack_tx = (0..nprocs)
            .map(|i| sim.add_resource_indexed("stack-tx", i))
            .collect();
        let stack_rx = (0..nprocs)
            .map(|i| sim.add_resource_indexed("stack-rx", i))
            .collect();
        let daemon = (0..nprocs)
            .map(|i| sim.add_resource_indexed("daemon", i))
            .collect();
        Ok(SpmdHarness {
            platform,
            nprocs,
            sim,
            fabric,
            hosts,
            groups,
            stack_tx,
            stack_rx,
            daemon,
            batch_trains: false,
        })
    }

    /// Prices runs of identical message fragments as batched trains (one
    /// engine walk per run instead of one flight per fragment — see
    /// `pdceval_simnet::flight::Train`).
    ///
    /// Off by default: batched trains occupy contended FIFOs contiguously,
    /// which is exact for uncontended pipelines but suppresses the
    /// fragment-level interleaving that competing senders produce on a
    /// shared medium, so heavily contended timings can shift slightly.
    /// Byte/fragment accounting is identical either way. Enable for large
    /// sparse scenarios where event count, not interleaving fidelity,
    /// dominates.
    pub fn set_batch_trains(&mut self, on: bool) {
        self.batch_trains = on;
    }

    /// The platform this harness simulates.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// The number of node processes per run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Runs one SPMD point under `tool`, reusing the cluster skeleton.
    ///
    /// # Errors
    ///
    /// * [`RunError::PlatformUnsupported`] if `tool` has no port for this
    ///   harness's platform;
    /// * [`RunError::Sim`] if the application deadlocks or panics (the
    ///   harness stays reusable afterwards).
    pub fn run<T, F>(&mut self, tool: ToolKind, f: F) -> Result<SpmdOutcome<T>, RunError>
    where
        T: Send + 'static,
        F: Fn(&mut Node<'_>) -> T + Send + Sync + 'static,
    {
        self.run_perturbed(tool, None, f)
    }

    /// Runs one SPMD point under `tool` with an optional seeded
    /// perturbation (latency jitter, background congestion, straggler
    /// host groups, message loss, rank crashes — see
    /// [`pdceval_simnet::perturb`]). `None` is exactly [`SpmdHarness::run`]:
    /// the clean path draws no random numbers and stays bit-identical.
    ///
    /// # Errors
    ///
    /// Everything [`SpmdHarness::run`] reports, plus
    /// [`RunError::RankCrashed`] when an injected crash fires and the
    /// application cannot tolerate the dead rank. Either way the harness
    /// stays reusable: the engine resets in place and the next point is
    /// unaffected.
    pub fn run_perturbed<T, F>(
        &mut self,
        tool: ToolKind,
        perturb: Option<&PerturbConfig>,
        f: F,
    ) -> Result<SpmdOutcome<T>, RunError>
    where
        T: Send + 'static,
        F: Fn(&mut Node<'_>) -> T + Send + Sync + 'static,
    {
        self.run_perturbed_traced(tool, perturb, None, f)
    }

    /// Runs one SPMD point like [`SpmdHarness::run_perturbed`], recording
    /// typed per-rank trace events into `trace` when a sink is supplied.
    ///
    /// Tracing is purely observational: the sink records what already
    /// happens, never schedules events and never draws random numbers, so
    /// a traced run is bit-identical to the same point run untraced. When
    /// the run fails (deadlock, injected crash) the sink still holds every
    /// event recorded up to the failure — callers keep their `Arc` and can
    /// inspect the partial timeline.
    ///
    /// # Errors
    ///
    /// Exactly those of [`SpmdHarness::run_perturbed`].
    pub fn run_perturbed_traced<T, F>(
        &mut self,
        tool: ToolKind,
        perturb: Option<&PerturbConfig>,
        trace: Option<Arc<Mutex<TraceSink>>>,
        f: F,
    ) -> Result<SpmdOutcome<T>, RunError>
    where
        T: Send + 'static,
        F: Fn(&mut Node<'_>) -> T + Send + Sync + 'static,
    {
        if !tool.supports_platform(self.platform) {
            return Err(RunError::PlatformUnsupported {
                tool,
                platform: self.platform,
            });
        }
        let nprocs = self.nprocs;
        // Straggler multipliers slow whole topology groups: rank hosts in
        // a straggled group compute slower (mflops/mips/bandwidth divided
        // by the factor) and pay proportionally more software overhead.
        let hosts: Vec<HostSpec> = match perturb {
            Some(cfg) => self
                .hosts
                .iter()
                .zip(&self.groups)
                .map(|(h, g)| {
                    let factor = cfg.straggler_factor(g);
                    if factor > 1.0 {
                        let mut slow = h.clone();
                        slow.sw_scale *= factor;
                        slow.mflops /= factor;
                        slow.mips /= factor;
                        slow.mem_bw_mbs /= factor;
                        slow
                    } else {
                        h.clone()
                    }
                })
                .collect(),
            None => self.hosts.clone(),
        };
        // Stragglers are a property of the run setup, not of any event the
        // ranks emit, so the harness stamps them on the timeline up front.
        if let (Some(sink), Some(cfg)) = (&trace, perturb) {
            let mut s = sink.lock().expect("trace sink poisoned");
            for (rank, group) in self.groups.iter().enumerate() {
                let factor = cfg.straggler_factor(group);
                if factor > 1.0 {
                    s.straggler(rank, factor);
                }
            }
        }
        let shared = Arc::new(Shared {
            platform: self.platform,
            tool,
            tool_spec: tool.spec(),
            fabric: self.fabric.clone(),
            hosts: hosts.clone(),
            stack_tx: self.stack_tx.clone(),
            stack_rx: self.stack_rx.clone(),
            daemon: self.daemon.clone(),
            nprocs,
            perturb: perturb.cloned(),
            trace,
            batch_trains: self.batch_trains,
        });

        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..nprocs).map(|_| None).collect()));
        let f = Arc::new(f);

        for (rank, host) in hosts.iter().enumerate() {
            let shared = Arc::clone(&shared);
            let results = Arc::clone(&results);
            let f = Arc::clone(&f);
            self.sim
                .spawn_indexed("rank", rank, host.clone(), move |ctx| {
                    let mut node = Node::new(ctx, rank, shared);
                    let r = f(&mut node);
                    // Indexed write: an out-of-bounds rank is an engine bug and
                    // must panic loudly, not silently drop the result.
                    results.lock().expect("results mutex poisoned")[rank] = Some(r);
                });
        }

        let crash_rank = perturb.and_then(|p| p.spec.crash_rank);
        let sim_outcome = self.sim.run_in_place().map_err(|e| match (e, crash_rank) {
            (SimError::InjectedCrash { at, .. }, Some(rank)) => RunError::RankCrashed { rank, at },
            (other, _) => RunError::Sim(other),
        })?;

        let rank_finish: Vec<SimDuration> = sim_outcome
            .proc_finish
            .iter()
            .map(|(_, t)| *t - SimTime::ZERO)
            .collect();
        let elapsed = rank_finish
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO);

        let results = Arc::try_unwrap(results)
            .map_err(|_| ())
            .expect("result references leaked")
            .into_inner()
            .expect("results mutex poisoned");
        let results: Vec<T> = results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect();

        Ok(SpmdOutcome {
            results,
            elapsed,
            rank_finish,
            sim: sim_outcome,
        })
    }

    /// Runs a *sparse* SPMD point: only the ranks listed in `active` are
    /// spawned eagerly; every other rank is registered lazily
    /// ([`pdceval_simnet::engine::Simulation::spawn_indexed_lazy`]) and
    /// materializes — worker, mailbox, node state — only if a message
    /// reaches it. Ranks nobody messages cost nothing beyond their
    /// registration slot, so a mostly-idle job prices like a job of its
    /// active working set.
    ///
    /// Every rank, eager or lazy, runs the same `f`; a lazily
    /// materialized rank starts at the virtual time its first message
    /// arrives. Perturbation and tracing are not offered on this path —
    /// sparse runs are a scale vehicle, not a measurement one.
    ///
    /// # Panics
    ///
    /// Panics if an `active` rank is out of range.
    ///
    /// # Errors
    ///
    /// * [`RunError::PlatformUnsupported`] if `tool` has no port for this
    ///   harness's platform;
    /// * [`RunError::Sim`] if the application deadlocks or panics.
    pub fn run_sparse<T, F>(
        &mut self,
        tool: ToolKind,
        active: &[usize],
        f: F,
    ) -> Result<SparseOutcome<T>, RunError>
    where
        T: Send + 'static,
        F: Fn(&mut Node<'_>) -> T + Send + Sync + 'static,
    {
        if !tool.supports_platform(self.platform) {
            return Err(RunError::PlatformUnsupported {
                tool,
                platform: self.platform,
            });
        }
        let nprocs = self.nprocs;
        let mut eager = vec![false; nprocs];
        for &r in active {
            assert!(r < nprocs, "active rank {r} out of range ({nprocs} ranks)");
            eager[r] = true;
        }
        let shared = Arc::new(Shared {
            platform: self.platform,
            tool,
            tool_spec: tool.spec(),
            fabric: self.fabric.clone(),
            hosts: self.hosts.clone(),
            stack_tx: self.stack_tx.clone(),
            stack_rx: self.stack_rx.clone(),
            daemon: self.daemon.clone(),
            nprocs,
            perturb: None,
            trace: None,
            batch_trains: self.batch_trains,
        });
        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..nprocs).map(|_| None).collect()));
        let f = Arc::new(f);

        for (rank, &eager_rank) in eager.iter().enumerate() {
            let shared = Arc::clone(&shared);
            let results = Arc::clone(&results);
            let f = Arc::clone(&f);
            let host = self.hosts[rank].clone();
            let body = move |ctx: &Ctx| {
                let mut node = Node::new(ctx, rank, shared);
                let r = f(&mut node);
                results.lock().expect("results mutex poisoned")[rank] = Some(r);
            };
            if eager_rank {
                self.sim.spawn_indexed("rank", rank, host, body);
            } else {
                self.sim.spawn_indexed_lazy("rank", rank, host, body);
            }
        }

        let sim_outcome = self.sim.run_in_place().map_err(RunError::Sim)?;
        let elapsed = sim_outcome
            .proc_finish
            .iter()
            .map(|(_, t)| *t - SimTime::ZERO)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let results = Arc::try_unwrap(results)
            .map_err(|_| ())
            .expect("result references leaked")
            .into_inner()
            .expect("results mutex poisoned");
        let results: Vec<(usize, T)> = results
            .into_iter()
            .enumerate()
            .filter_map(|(rank, r)| r.map(|r| (rank, r)))
            .collect();

        Ok(SparseOutcome {
            results,
            elapsed,
            sim: sim_outcome,
        })
    }
}

/// Runs `f` on every rank of a simulated SPMD job.
///
/// The function receives each rank's [`Node`] handle; its return values
/// are collected by rank. The run is deterministic: identical
/// configurations produce identical outcomes. Internally this builds a
/// one-shot [`SpmdHarness`]; sweeps that revisit the same
/// `(platform, nprocs)` should hold a harness instead.
///
/// # Errors
///
/// * [`RunError::ZeroNodes`] / [`RunError::TooManyNodes`] for bad sizes;
/// * [`RunError::PlatformUnsupported`] if the tool has no port for the
///   platform (Express on the ATM WAN);
/// * [`RunError::Sim`] if the application deadlocks or panics.
pub fn run_spmd<T, F>(cfg: &SpmdConfig, f: F) -> Result<SpmdOutcome<T>, RunError>
where
    T: Send + 'static,
    F: Fn(&mut Node<'_>) -> T + Send + Sync + 'static,
{
    cfg.validate()?;
    let mut harness = SpmdHarness::new(cfg.platform, cfg.nprocs)?;
    harness.run(cfg.tool, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ToolError;
    use bytes::Bytes;
    use pdceval_simnet::error::SimError;

    fn cfg(tool: ToolKind, n: usize) -> SpmdConfig {
        SpmdConfig::new(Platform::SUN_ETHERNET, tool, n)
    }

    #[test]
    fn results_collected_by_rank() {
        let out = run_spmd(&cfg(ToolKind::P4, 4), |node| node.rank()).unwrap();
        assert_eq!(out.results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_nodes_rejected() {
        assert_eq!(
            run_spmd(&cfg(ToolKind::P4, 0), |_| ()).unwrap_err(),
            RunError::ZeroNodes
        );
    }

    #[test]
    fn too_many_nodes_rejected() {
        let err = run_spmd(&cfg(ToolKind::P4, 99), |_| ()).unwrap_err();
        assert!(matches!(err, RunError::TooManyNodes { requested: 99, .. }));
    }

    #[test]
    fn express_rejected_on_wan() {
        let c = SpmdConfig::new(Platform::SUN_ATM_WAN, ToolKind::EXPRESS, 2);
        assert!(matches!(
            run_spmd(&c, |_| ()).unwrap_err(),
            RunError::PlatformUnsupported { .. }
        ));
    }

    #[test]
    fn point_to_point_round_trip() {
        let out = run_spmd(&cfg(ToolKind::P4, 2), |node| {
            if node.rank() == 0 {
                node.send(1, 7, Bytes::from_static(b"hello")).unwrap();
                let reply = node.recv(Some(1), Some(8)).unwrap();
                assert_eq!(&reply.data[..], b"world");
                node.now().as_millis_f64()
            } else {
                let msg = node.recv(Some(0), Some(7)).unwrap();
                assert_eq!(&msg.data[..], b"hello");
                node.send(0, 8, Bytes::from_static(b"world")).unwrap();
                0.0
            }
        })
        .unwrap();
        // A 5-byte round trip on SUN/Ethernet should take single-digit
        // milliseconds (paper Table 3: ~3.2 ms each way for p4).
        assert!(
            out.results[0] > 2.0 && out.results[0] < 20.0,
            "rtt = {}",
            out.results[0]
        );
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let out = run_spmd(&cfg(ToolKind::P4, 4), |node| {
            // Rank 2 works before the barrier; everyone leaves after it.
            if node.rank() == 2 {
                node.compute(pdceval_simnet::work::Work::flops(3_600_000)); // ~1 s on ELC
            }
            node.barrier().unwrap();
            node.now().as_secs_f64()
        })
        .unwrap();
        for t in &out.results {
            assert!(
                *t >= 1.0,
                "a rank left the barrier before the slowest entered: {t}"
            );
        }
    }

    #[test]
    fn broadcast_delivers_to_all_tools() {
        for tool in ToolKind::all() {
            let out = run_spmd(&cfg(tool, 4), |node| {
                let data = if node.rank() == 1 {
                    Bytes::from_static(b"payload")
                } else {
                    Bytes::new()
                };
                let got = node.broadcast(1, data).unwrap();
                got.len()
            })
            .unwrap();
            assert_eq!(out.results, vec![7, 7, 7, 7], "{tool} broadcast failed");
        }
    }

    #[test]
    fn global_sum_correct_for_p4_and_express() {
        for tool in [ToolKind::P4, ToolKind::EXPRESS] {
            let out = run_spmd(&cfg(tool, 4), |node| {
                let mine = vec![node.rank() as f64, 1.0];
                node.global_sum_f64(&mine).unwrap()
            })
            .unwrap();
            for r in &out.results {
                assert_eq!(r, &vec![0.0 + 1.0 + 2.0 + 3.0, 4.0], "{tool} sum wrong");
            }
        }
    }

    #[test]
    fn global_sum_unsupported_for_pvm() {
        let out = run_spmd(&cfg(ToolKind::PVM, 2), |node| {
            node.global_sum_f64(&[1.0]).unwrap_err()
        })
        .unwrap();
        assert!(matches!(
            out.results[0],
            ToolError::Unsupported {
                tool: ToolKind::PVM,
                ..
            }
        ));
    }

    #[test]
    fn ring_shift_rotates_payloads() {
        let out = run_spmd(&cfg(ToolKind::EXPRESS, 4), |node| {
            let mine = Bytes::from(vec![node.rank() as u8]);
            let got = node.ring_shift(mine).unwrap();
            got[0]
        })
        .unwrap();
        assert_eq!(out.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn mismatched_collectives_deadlock_cleanly() {
        let err = run_spmd(&cfg(ToolKind::P4, 2), |node| {
            if node.rank() == 0 {
                node.barrier().unwrap();
            } else {
                // Rank 1 never enters the barrier.
                let _ = node.recv(Some(0), Some(12345));
            }
        })
        .unwrap_err();
        assert!(matches!(err, RunError::Sim(SimError::Deadlock { .. })));
    }

    #[test]
    fn invalid_rank_errors() {
        let out = run_spmd(&cfg(ToolKind::P4, 2), |node| {
            node.send(5, 0, Bytes::new()).unwrap_err()
        })
        .unwrap();
        assert!(matches!(
            out.results[0],
            ToolError::InvalidRank { rank: 5, nprocs: 2 }
        ));
    }

    #[test]
    fn reserved_tags_rejected() {
        let out = run_spmd(&cfg(ToolKind::P4, 2), |node| {
            node.send(1, 0xFFFF_0001, Bytes::new()).unwrap_err()
        })
        .unwrap();
        assert!(matches!(out.results[0], ToolError::ReservedTag { .. }));
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            run_spmd(&cfg(ToolKind::PVM, 4), |node| {
                let data = Bytes::from(vec![0u8; 4096]);
                let got = node.ring_shift(data).unwrap();
                node.barrier().unwrap();
                (got.len(), node.now().as_nanos())
            })
            .unwrap()
            .results
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn self_send_delivers_locally() {
        let out = run_spmd(&cfg(ToolKind::P4, 2), |node| {
            if node.rank() == 0 {
                node.send(0, 3, Bytes::from_static(b"me")).unwrap();
                let msg = node.recv(Some(0), Some(3)).unwrap();
                msg.data.len()
            } else {
                0
            }
        })
        .unwrap();
        assert_eq!(out.results[0], 2);
    }

    #[test]
    fn harness_runs_match_standalone_runs() {
        // The same point through a reused harness and through run_spmd
        // must be bit-identical (same resource ids, same schedule).
        let mut h = SpmdHarness::new(Platform::SUN_ATM_LAN, 4).unwrap();
        for tool in ToolKind::all() {
            for _ in 0..2 {
                let via_harness = h
                    .run(tool, |node| {
                        let data = Bytes::from(vec![node.rank() as u8; 2048]);
                        let got = node.ring_shift(data).unwrap();
                        (got.len(), node.now().as_nanos())
                    })
                    .unwrap();
                let standalone =
                    run_spmd(&SpmdConfig::new(Platform::SUN_ATM_LAN, tool, 4), |node| {
                        let data = Bytes::from(vec![node.rank() as u8; 2048]);
                        let got = node.ring_shift(data).unwrap();
                        (got.len(), node.now().as_nanos())
                    })
                    .unwrap();
                assert_eq!(via_harness.results, standalone.results, "{tool}");
                assert_eq!(via_harness.elapsed, standalone.elapsed, "{tool}");
                assert_eq!(via_harness.rank_finish, standalone.rank_finish);
            }
        }
    }

    #[test]
    fn harness_rejects_unsupported_tool_but_stays_usable() {
        let mut h = SpmdHarness::new(Platform::SUN_ATM_WAN, 2).unwrap();
        assert!(matches!(
            h.run(ToolKind::EXPRESS, |_| ()),
            Err(RunError::PlatformUnsupported { .. })
        ));
        let out = h.run(ToolKind::P4, |node| node.rank()).unwrap();
        assert_eq!(out.results, vec![0, 1]);
    }

    #[test]
    fn harness_recovers_after_deadlocked_point() {
        let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, 2).unwrap();
        let err = h
            .run(ToolKind::P4, |node| {
                if node.rank() == 0 {
                    let _ = node.recv(Some(1), Some(1));
                }
            })
            .unwrap_err();
        assert!(matches!(err, RunError::Sim(SimError::Deadlock { .. })));
        let out = h.run(ToolKind::P4, |node| node.rank() * 2).unwrap();
        assert_eq!(out.results, vec![0, 2]);
    }

    #[test]
    fn harness_size_validation() {
        assert_eq!(
            SpmdHarness::new(Platform::SUN_ETHERNET, 0).unwrap_err(),
            RunError::ZeroNodes
        );
        assert!(matches!(
            SpmdHarness::new(Platform::SUN_ATM_WAN, 5).unwrap_err(),
            RunError::TooManyNodes {
                requested: 5,
                max: 4
            }
        ));
    }

    fn pcfg(spec: pdceval_simnet::perturb::PerturbSpec, seed: u32) -> PerturbConfig {
        PerturbConfig {
            spec: Arc::new(spec),
            seed,
        }
    }

    #[test]
    fn injected_crash_terminates_with_structured_error() {
        let mut spec = pdceval_simnet::perturb::PerturbSpec::quiet("crash-term");
        spec.crash_rank = Some(1);
        spec.crash_at_us = Some(100.0);
        let cfg = pcfg(spec, 1);
        let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, 2).unwrap();
        let err = h
            .run_perturbed(ToolKind::P4, Some(&cfg), |node| {
                // Ring traffic keeps both ranks talking past the crash point.
                for _ in 0..50 {
                    node.ring_shift(Bytes::from(vec![0u8; 2048])).unwrap();
                }
            })
            .unwrap_err();
        assert!(
            matches!(err, RunError::RankCrashed { rank: 1, .. }),
            "expected RankCrashed, got {err:?}"
        );
    }

    #[test]
    fn harness_recovers_after_injected_crash() {
        // A crashed point must not wedge the pooled scheduler for the next
        // sweep point: a clean run on the same harness afterwards must be
        // bit-identical to one on a fresh harness.
        let clean = |node: &mut Node<'_>| {
            let data = Bytes::from(vec![node.rank() as u8; 2048]);
            let got = node.ring_shift(data).unwrap();
            (got.len(), node.now().as_nanos())
        };
        let mut spec = pdceval_simnet::perturb::PerturbSpec::quiet("crash-recover");
        spec.crash_rank = Some(1);
        spec.crash_at_us = Some(100.0);
        let cfg = pcfg(spec, 7);
        let mut warm = SpmdHarness::new(Platform::SUN_ETHERNET, 2).unwrap();
        let err = warm
            .run_perturbed(ToolKind::P4, Some(&cfg), |node| {
                for _ in 0..50 {
                    node.ring_shift(Bytes::from(vec![0u8; 2048])).unwrap();
                }
            })
            .unwrap_err();
        assert!(matches!(err, RunError::RankCrashed { rank: 1, .. }));
        let via_warm = warm.run(ToolKind::P4, clean).unwrap();
        let mut fresh = SpmdHarness::new(Platform::SUN_ETHERNET, 2).unwrap();
        let via_fresh = fresh.run(ToolKind::P4, clean).unwrap();
        assert_eq!(via_warm.results, via_fresh.results);
        assert_eq!(via_warm.elapsed, via_fresh.elapsed);
        assert_eq!(via_warm.rank_finish, via_fresh.rank_finish);
    }

    #[test]
    fn perturbed_runs_replay_bit_identically() {
        let mut spec = pdceval_simnet::perturb::PerturbSpec::quiet("noisy");
        spec.jitter = 0.5;
        spec.congestion = 0.5;
        spec.loss = 0.05;
        spec.loss_timeout_us = 1000.0;
        let cfg = pcfg(spec, 42);
        let app = |node: &mut Node<'_>| {
            let data = Bytes::from(vec![node.rank() as u8; 4096]);
            let got = node.ring_shift(data).unwrap();
            node.barrier().unwrap();
            (got.len(), node.now().as_nanos())
        };
        let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, 4).unwrap();
        let a = h.run_perturbed(ToolKind::P4, Some(&cfg), app).unwrap();
        let b = h.run_perturbed(ToolKind::P4, Some(&cfg), app).unwrap();
        assert_eq!(
            a.results, b.results,
            "same seed must replay bit-identically"
        );
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.rank_finish, b.rank_finish);

        // A different seed draws different delays...
        let other_seed = PerturbConfig {
            spec: Arc::clone(&cfg.spec),
            seed: 43,
        };
        let c = h
            .run_perturbed(ToolKind::P4, Some(&other_seed), app)
            .unwrap();
        assert_ne!(a.elapsed, c.elapsed, "different seeds should differ");

        // ...and any perturbed run is slower than the clean one, which is
        // itself untouched by the machinery existing.
        let clean = h.run(ToolKind::P4, app).unwrap();
        assert!(
            a.elapsed > clean.elapsed,
            "perturbation must cost time: {:?} vs {:?}",
            a.elapsed,
            clean.elapsed
        );
    }

    #[test]
    fn straggler_multiplier_slows_the_group() {
        let mut spec = pdceval_simnet::perturb::PerturbSpec::quiet("slowpoke");
        // Builtin homogeneous platforms have the single group "all".
        spec.stragglers = vec![("all".to_string(), 3.0)];
        let cfg = pcfg(spec, 1);
        let app = |node: &mut Node<'_>| {
            node.compute(pdceval_simnet::work::Work::flops(3_600_000));
            node.now().as_nanos()
        };
        let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, 2).unwrap();
        let slow = h.run_perturbed(ToolKind::P4, Some(&cfg), app).unwrap();
        let clean = h.run(ToolKind::P4, app).unwrap();
        let ratio = slow.elapsed.as_micros_f64() / clean.elapsed.as_micros_f64();
        assert!(
            ratio > 2.5 && ratio < 3.5,
            "3x straggler should run ~3x slower, got {ratio}"
        );
    }

    #[test]
    fn traced_run_is_bit_identical_and_records_events() {
        use pdceval_simnet::trace::{SpanPhase, TraceEvent, TraceSink};
        let app = |node: &mut Node<'_>| {
            node.compute(pdceval_simnet::work::Work::flops(500_000));
            let data = Bytes::from(vec![node.rank() as u8; 2048]);
            let got = node.ring_shift(data).unwrap();
            node.barrier().unwrap();
            (got.len(), node.now().as_nanos())
        };
        let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, 4).unwrap();
        let plain = h.run(ToolKind::P4, app).unwrap();
        let sink = TraceSink::shared(4);
        let traced = h
            .run_perturbed_traced(ToolKind::P4, None, Some(Arc::clone(&sink)), app)
            .unwrap();
        assert_eq!(plain.results, traced.results);
        assert_eq!(plain.elapsed, traced.elapsed);
        assert_eq!(plain.rank_finish, traced.rank_finish);

        let s = sink.lock().unwrap();
        for rank in 0..4 {
            let evs = s.rank_events(rank);
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    TraceEvent::Span {
                        phase: SpanPhase::Compute,
                        ..
                    }
                )),
                "rank {rank} recorded no compute span"
            );
            assert!(
                evs.iter().any(|e| matches!(
                    e,
                    TraceEvent::Collective {
                        op: "ring-shift",
                        ..
                    }
                )),
                "rank {rank} recorded no ring-shift marker"
            );
            assert!(
                evs.iter()
                    .any(|e| matches!(e, TraceEvent::LinkFragment { .. })),
                "rank {rank} recorded no link fragments"
            );
        }
        let summary = s.summary(&traced.rank_finish);
        assert_eq!(summary.ranks.len(), 4);
        assert!(summary.crash.is_none());
    }

    #[test]
    fn traced_straggler_run_stamps_factors() {
        use pdceval_simnet::trace::{TraceEvent, TraceSink};
        let mut spec = pdceval_simnet::perturb::PerturbSpec::quiet("slow-traced");
        spec.stragglers = vec![("all".to_string(), 2.0)];
        let cfg = pcfg(spec, 1);
        let sink = TraceSink::shared(2);
        let mut h = SpmdHarness::new(Platform::SUN_ETHERNET, 2).unwrap();
        h.run_perturbed_traced(ToolKind::P4, Some(&cfg), Some(Arc::clone(&sink)), |node| {
            node.compute(pdceval_simnet::work::Work::flops(100_000));
        })
        .unwrap();
        let s = sink.lock().unwrap();
        for rank in 0..2 {
            assert!(
                matches!(
                    s.rank_events(rank).first(),
                    Some(TraceEvent::Straggler { factor }) if *factor == 2.0
                ),
                "rank {rank} timeline should start with its straggler stamp"
            );
        }
    }

    #[test]
    fn wildcard_recv_matches_any_source() {
        let out = run_spmd(&cfg(ToolKind::PVM, 3), |node| {
            if node.rank() == 0 {
                let a = node.recv(None, Some(9)).unwrap();
                let b = node.recv(None, Some(9)).unwrap();
                a.src + b.src
            } else {
                node.send(0, 9, Bytes::new()).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(out.results[0], 3); // ranks 1 + 2 in either order
    }

    #[test]
    fn sparse_run_materializes_only_messaged_ranks() {
        use pdceval_simnet::host::HostSpec;
        use pdceval_simnet::net::NetworkKind;
        use pdceval_simnet::platform::PlatformSpec;
        // 256 registered ranks, one active: only the two ranks it messages
        // ever materialize; the other 253 never run and never report.
        let platform = pdceval_simnet::registry::register_platform(PlatformSpec::homogeneous(
            "Sparse ATM LAN",
            "sparse-atm-256",
            HostSpec::sun_ipx(),
            NetworkKind::AtmLan.params(),
            256,
            false,
        ))
        .unwrap();
        let mut h = SpmdHarness::new(platform, 256).unwrap();
        let body = |node: &mut Node<'_>| match node.rank() {
            0 => {
                node.send(7, 1, Bytes::from_static(b"wake")).unwrap();
                node.send(200, 1, Bytes::from_static(b"wake")).unwrap();
                0
            }
            r => {
                let m = node.recv(Some(0), Some(1)).unwrap();
                m.data.len() + r
            }
        };
        let out = h.run_sparse(ToolKind::P4, &[0], body).unwrap();
        let ranks: Vec<usize> = out.results.iter().map(|(r, _)| *r).collect();
        assert_eq!(ranks, vec![0, 7, 200]);
        assert_eq!(
            out.sim.proc_finish.len(),
            3,
            "only messaged ranks may materialize"
        );
        assert!(out.elapsed > SimDuration::ZERO);
        // The harness stays reusable and sparse runs are deterministic.
        let again = h.run_sparse(ToolKind::P4, &[0], body).unwrap();
        assert_eq!(again.elapsed, out.elapsed);
        assert_eq!(again.results, out.results);
    }

    #[test]
    fn all_active_sparse_run_matches_the_dense_harness() {
        // With every rank active, run_sparse spawns everything eagerly and
        // must reproduce the dense harness's timing exactly.
        let ring = |node: &mut Node<'_>| {
            let next = (node.rank() + 1) % node.nprocs();
            node.send(next, 5, Bytes::from_static(b"tok")).unwrap();
            node.recv(None, Some(5)).unwrap().data.len()
        };
        let mut dense = SpmdHarness::new(Platform::SUN_ATM_LAN, 4).unwrap();
        let d = dense.run(ToolKind::P4, ring).unwrap();
        let mut sparse = SpmdHarness::new(Platform::SUN_ATM_LAN, 4).unwrap();
        let s = sparse
            .run_sparse(ToolKind::P4, &[0, 1, 2, 3], ring)
            .unwrap();
        assert_eq!(s.elapsed, d.elapsed);
        assert_eq!(s.results.len(), 4);
        for (rank, len) in &s.results {
            assert_eq!(*len, 3, "rank {rank} got a wrong token");
        }
    }

    #[test]
    fn batched_trains_preserve_sparse_ring_timing() {
        // The opt-in batched-train pricing must agree with the
        // per-fragment model on an uncontended multi-fragment exchange.
        let relay = |node: &mut Node<'_>| {
            if node.rank() == 0 {
                // ~4 ATM-MTU fragments of payload.
                node.send(1, 2, Bytes::from(vec![0u8; 36_000])).unwrap();
                0.0
            } else {
                node.recv(Some(0), Some(2)).unwrap();
                node.now().as_millis_f64()
            }
        };
        let mut plain = SpmdHarness::new(Platform::SUN_ATM_LAN, 2).unwrap();
        let p = plain.run(ToolKind::P4, relay).unwrap();
        let mut batched = SpmdHarness::new(Platform::SUN_ATM_LAN, 2).unwrap();
        batched.set_batch_trains(true);
        let b = batched.run(ToolKind::P4, relay).unwrap();
        assert_eq!(b.elapsed, p.elapsed);
        assert_eq!(b.results, p.results);
        // Batching must collapse events: fewer scheduled events, same answer.
        assert!(
            b.sim.events_scheduled < p.sim.events_scheduled,
            "batched {} vs per-fragment {}",
            b.sim.events_scheduled,
            p.sim.events_scheduled
        );
    }
}
