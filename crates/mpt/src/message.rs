//! Typed message encoding.
//!
//! The 1995 tools exchanged raw byte buffers (p4, Express) or typed packed
//! buffers (PVM's `pvm_pkint` family). This module provides the portable
//! equivalent: a little-endian writer/reader pair used by the application
//! suite to move typed data through the simulator's opaque payloads.
//!
//! # Examples
//!
//! ```
//! use pdceval_mpt::message::{MsgReader, MsgWriter};
//!
//! let mut w = MsgWriter::new();
//! w.put_u32(7);
//! w.put_f64_slice(&[1.0, 2.5]);
//! let bytes = w.freeze();
//!
//! let mut r = MsgReader::new(bytes);
//! assert_eq!(r.get_u32()?, 7);
//! assert_eq!(r.get_f64_slice()?, vec![1.0, 2.5]);
//! # Ok::<(), pdceval_mpt::error::CodecError>(())
//! ```

use crate::error::CodecError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum plausible element count in a length-prefixed slice (guards
/// against decoding garbage as a huge allocation).
const MAX_SLICE_LEN: usize = 1 << 28;

/// Builds a typed message payload.
#[derive(Debug, Default)]
pub struct MsgWriter {
    buf: BytesMut,
}

impl MsgWriter {
    /// Creates an empty writer.
    pub fn new() -> MsgWriter {
        MsgWriter::default()
    }

    /// Creates a writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> MsgWriter {
        MsgWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends an `i32` (little-endian).
    pub fn put_i32(&mut self, v: i32) {
        self.buf.put_i32_le(v);
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `f64` (little-endian bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends a length-prefixed `i32` slice.
    pub fn put_i32_slice(&mut self, xs: &[i32]) {
        self.buf.put_u32_le(xs.len() as u32);
        for &x in xs {
            self.buf.put_i32_le(x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, xs: &[u32]) {
        self.buf.put_u32_le(xs.len() as u32);
        for &x in xs {
            self.buf.put_u32_le(x);
        }
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.buf.put_u32_le(xs.len() as u32);
        for &x in xs {
            self.buf.put_f64_le(x);
        }
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bs: &[u8]) {
        self.buf.put_u32_le(bs.len() as u32);
        self.buf.put_slice(bs);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes the message, yielding the payload.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads a typed message payload.
#[derive(Debug)]
pub struct MsgReader {
    buf: Bytes,
}

impl MsgReader {
    /// Wraps a payload for reading.
    pub fn new(buf: Bytes) -> MsgReader {
        MsgReader { buf }
    }

    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.buf.remaining() < n {
            Err(CodecError::UnexpectedEnd {
                wanted: n,
                available: self.buf.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if the payload is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if the payload is exhausted.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads an `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if the payload is exhausted.
    pub fn get_i32(&mut self) -> Result<i32, CodecError> {
        self.need(4)?;
        Ok(self.buf.get_i32_le())
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if the payload is exhausted.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if the payload is exhausted.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_SLICE_LEN {
            return Err(CodecError::BadLength { len });
        }
        Ok(len)
    }

    /// Reads a length-prefixed `i32` slice.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation or an implausible length.
    pub fn get_i32_slice(&mut self) -> Result<Vec<i32>, CodecError> {
        let len = self.get_len()?;
        self.need(len * 4)?;
        Ok((0..len).map(|_| self.buf.get_i32_le()).collect())
    }

    /// Reads a length-prefixed `u32` slice.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation or an implausible length.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, CodecError> {
        let len = self.get_len()?;
        self.need(len * 4)?;
        Ok((0..len).map(|_| self.buf.get_u32_le()).collect())
    }

    /// Reads a length-prefixed `f64` slice.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation or an implausible length.
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.get_len()?;
        self.need(len * 8)?;
        Ok((0..len).map(|_| self.buf.get_f64_le()).collect())
    }

    /// Reads length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncation or an implausible length.
    pub fn get_bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.get_len()?;
        self.need(len)?;
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = MsgWriter::new();
        w.put_u8(9);
        w.put_u32(123_456);
        w.put_i32(-77);
        w.put_u64(1 << 40);
        w.put_f64(-2.75);
        let mut r = MsgReader::new(w.freeze());
        assert_eq!(r.get_u8().unwrap(), 9);
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_i32().unwrap(), -77);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap(), -2.75);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_round_trip() {
        let mut w = MsgWriter::new();
        w.put_i32_slice(&[1, -2, 3]);
        w.put_f64_slice(&[0.5]);
        w.put_bytes(b"abc");
        w.put_u32_slice(&[7, 8]);
        let mut r = MsgReader::new(w.freeze());
        assert_eq!(r.get_i32_slice().unwrap(), vec![1, -2, 3]);
        assert_eq!(r.get_f64_slice().unwrap(), vec![0.5]);
        assert_eq!(&r.get_bytes().unwrap()[..], b"abc");
        assert_eq!(r.get_u32_slice().unwrap(), vec![7, 8]);
    }

    #[test]
    fn truncated_read_errors() {
        let mut w = MsgWriter::new();
        w.put_u32(1);
        let mut r = MsgReader::new(w.freeze());
        let _ = r.get_u32().unwrap();
        assert!(matches!(
            r.get_f64(),
            Err(CodecError::UnexpectedEnd {
                wanted: 8,
                available: 0
            })
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = MsgWriter::new();
        w.put_u32(u32::MAX);
        let mut r = MsgReader::new(w.freeze());
        assert!(matches!(
            r.get_i32_slice(),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn empty_slice_round_trip() {
        let mut w = MsgWriter::new();
        w.put_i32_slice(&[]);
        let mut r = MsgReader::new(w.freeze());
        assert_eq!(r.get_i32_slice().unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = MsgWriter::with_capacity(16);
        assert!(w.is_empty());
        w.put_u32(1);
        assert_eq!(w.len(), 4);
    }
}
