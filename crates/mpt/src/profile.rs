//! Calibrated cost profiles of the three tools.
//!
//! Every ranking the paper reports is traced to a *protocol mechanism*,
//! not a fudge factor:
//!
//! * **p4** is a thin layer over the transport: small fixed costs, small
//!   per-byte costs, zero-copy contiguous sends, tree-structured
//!   collectives. The paper attributes p4's wins to exactly this
//!   ("very small amount of overhead to the underlying transport layer").
//! * **PVM** routes messages through per-host daemons by default
//!   (`task → pvmd → pvmd → task`): large fixed cost, and both directions
//!   of a node's traffic serialize through the single-threaded daemon,
//!   which is why PVM loses the full-duplex ring test to Express even
//!   though it wins the half-duplex echo test. Applications could request
//!   direct task-to-task routing (`pvm_advise(PvmRouteDirect)`), which the
//!   tuned application suite does. PVM's typed packing handles strided
//!   data natively. PVM has **no** global reduction (Table 1).
//! * **Express** copies the whole message through an internal buffer
//!   before transmission (no pipelining of that copy), giving it the worst
//!   large-message throughput; but its transmit and receive paths overlap
//!   (good for continuous flow, as the paper notes for the ring test), its
//!   broadcast is sequential-with-acks (worst of the three), its reduction
//!   is a ring combine, and its tiny-message `excombine` is the cheapest.
//!
//! All constants are microseconds at SUN SPARCstation IPX speed and scale
//! by the host model's `sw_scale`. They were fitted against the paper's
//! Table 3 (see `EXPERIMENTS.md` for fitted-vs-paper values).

use crate::tool::ToolKind;

/// How a tool implements one-to-many broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlgo {
    /// Binomial tree (p4): `ceil(log2 P)` forwarding rounds.
    BinomialTree,
    /// Root sends to every destination in sequence (PVM `pvm_mcast`).
    SequentialRoot,
    /// Root sends to each destination and waits for an acknowledgement
    /// before the next (Express `exbroadcast`); fully serialized.
    SequentialAck,
}

/// How a tool implements global reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceAlgo {
    /// Binomial-tree reduce to rank 0, then binomial broadcast of the
    /// result (p4 `p4_global_op`).
    Tree,
    /// Sequential ring: accumulate around the ring, then circulate the
    /// result; `2 (P - 1)` serialized transfers. Kept as an ablation
    /// alternative (see the `ablation` benches) — none of the calibrated
    /// profiles use it by default.
    Ring,
}

/// Calibrated software cost model of one tool.
///
/// Fixed costs are in microseconds, per-byte costs in microseconds per
/// byte, all at IPX speed (multiplied by the acting host's `sw_scale`).
#[derive(Debug, Clone, PartialEq)]
pub struct ToolProfile {
    /// The tool this profile describes.
    pub tool: ToolKind,
    /// Fixed send-side cost, paid on the send service resource.
    pub send_alpha_us: f64,
    /// Fixed receive-side cost, paid on the receive service resource.
    pub recv_alpha_us: f64,
    /// Per-byte send-side cost, paid per fragment (pipelines with the wire).
    pub send_beta_us_per_byte: f64,
    /// Per-byte receive-side cost, paid per fragment (pipelines with the wire).
    pub recv_beta_us_per_byte: f64,
    /// Per-byte cost paid synchronously *before* transmission begins
    /// (Express's internal buffer copy; does not pipeline).
    pub copy_before_send_us_per_byte: f64,
    /// Protocol header bytes added to the payload on the wire.
    pub header_bytes: u64,
    /// `true` if both send and receive software costs serialize through a
    /// single per-host daemon resource (PVM default route).
    pub daemon_routed: bool,
    /// `true` if the tool's typed packing sends strided (non-contiguous)
    /// data without a separate user-side gather pass (PVM).
    pub strided_native: bool,
    /// Broadcast algorithm.
    pub bcast: BcastAlgo,
    /// Global-reduction algorithm, if the tool has one.
    pub reduce: Option<ReduceAlgo>,
    /// Fixed cost of a tiny-payload combine round (Express's `excombine`
    /// fast path; used when a reduction payload is at most 64 bytes).
    pub small_combine_alpha_us: f64,
    /// Extra synchronous send-side cost per fragment *beyond the first*
    /// (Express segments large messages through its buffering layer).
    pub seg_us_per_extra_fragment: f64,
    /// Per-byte typed-packing cost charged only on *strided* sends when
    /// the tool packs strides natively (PVM's `pvm_pkint` with stride:
    /// one memory pass). Tools without native strided packing pay a
    /// user-side gather instead.
    pub strided_pack_us_per_byte: f64,
    /// The tool's own fragmentation granularity, if smaller than the
    /// network MTU (PVM fragments at 4 KB independent of the medium).
    pub max_fragment_bytes: Option<usize>,
    /// Extra receive cost for *any-source* (wildcard) receives. p4 keeps
    /// one socket per peer and must poll them all for a wildcard receive;
    /// Express's exreceive similarly scans channels. PVM's `pvm_recv(-1,
    /// tag)` reads its unified message queue, so wildcards are free.
    pub wildcard_recv_extra_us: f64,
}

impl ToolProfile {
    /// The calibrated profile for a tool's *default* configuration —
    /// what the paper's TPL microbenchmarks exercise.
    pub fn for_tool(tool: ToolKind) -> ToolProfile {
        match tool {
            ToolKind::P4 => ToolProfile {
                tool,
                send_alpha_us: 1000.0,
                recv_alpha_us: 1350.0,
                send_beta_us_per_byte: 0.42,
                recv_beta_us_per_byte: 0.42,
                copy_before_send_us_per_byte: 0.0,
                header_bytes: 64,
                daemon_routed: false,
                strided_native: false,
                bcast: BcastAlgo::BinomialTree,
                reduce: Some(ReduceAlgo::Tree),
                small_combine_alpha_us: 1600.0,
                seg_us_per_extra_fragment: 0.0,
                strided_pack_us_per_byte: 0.0,
                max_fragment_bytes: None,
                wildcard_recv_extra_us: 150.0,
            },
            ToolKind::Pvm => ToolProfile {
                tool,
                send_alpha_us: 3100.0,
                recv_alpha_us: 4600.0,
                send_beta_us_per_byte: 1.09,
                recv_beta_us_per_byte: 1.09,
                copy_before_send_us_per_byte: 0.06,
                header_bytes: 96,
                daemon_routed: true,
                strided_native: true,
                bcast: BcastAlgo::SequentialRoot,
                reduce: None,
                small_combine_alpha_us: f64::INFINITY,
                // The daemon-route pack copy (copy_before) already covers
                // strided data, so no separate strided charge here.
                seg_us_per_extra_fragment: 0.0,
                strided_pack_us_per_byte: 0.0,
                max_fragment_bytes: Some(4096),
                wildcard_recv_extra_us: 0.0,
            },
            // Express's excombine is tree-structured like p4's global op;
            // its Figure 4 disadvantage comes from per-byte buffer costs,
            // while its small-payload fast path is the cheapest of the
            // three (which is why Express wins Monte Carlo in Figure 5).
            ToolKind::Express => ToolProfile {
                tool,
                send_alpha_us: 1450.0,
                recv_alpha_us: 2250.0,
                send_beta_us_per_byte: 0.0,
                recv_beta_us_per_byte: 1.05,
                copy_before_send_us_per_byte: 1.10,
                header_bytes: 80,
                daemon_routed: false,
                strided_native: false,
                bcast: BcastAlgo::SequentialAck,
                reduce: Some(ReduceAlgo::Tree),
                small_combine_alpha_us: 900.0,
                seg_us_per_extra_fragment: 1000.0,
                strided_pack_us_per_byte: 0.0,
                max_fragment_bytes: None,
                wildcard_recv_extra_us: 100.0,
            },
        }
    }

    /// PVM's tuned direct-route configuration (`pvm_advise(PvmRouteDirect)`),
    /// used by performance-tuned applications: task-to-task TCP, bypassing
    /// the daemons. Costs approach p4's, with a slightly higher fixed cost
    /// and the unavoidable pack copy.
    ///
    /// For the other two tools this returns the default profile unchanged.
    pub fn direct_route(tool: ToolKind) -> ToolProfile {
        let mut p = Self::for_tool(tool);
        if tool == ToolKind::Pvm {
            // The direct-route data path is a plain task-to-task TCP
            // socket — the same transport p4 sends on — with a small
            // residual fixed cost for PVM's routing/fragment bookkeeping.
            p.send_alpha_us = 1050.0;
            p.recv_alpha_us = 1400.0;
            p.send_beta_us_per_byte = 0.42;
            p.recv_beta_us_per_byte = 0.42;
            // Tuned codes send contiguous data with pvm_psend (no pack
            // buffer). Strided data still flows through typed packing —
            // one memory pass, priced separately below — which is the
            // advantage strided_native models.
            p.copy_before_send_us_per_byte = 0.0;
            p.strided_pack_us_per_byte = 0.04;
            p.daemon_routed = false;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_is_the_thinnest_layer() {
        let p4 = ToolProfile::for_tool(ToolKind::P4);
        let pvm = ToolProfile::for_tool(ToolKind::Pvm);
        let ex = ToolProfile::for_tool(ToolKind::Express);
        assert!(p4.send_alpha_us < pvm.send_alpha_us);
        assert!(p4.send_alpha_us < ex.send_alpha_us);
        assert!(p4.send_beta_us_per_byte < pvm.send_beta_us_per_byte);
        // Express total per-byte (copy + recv) is the worst.
        let ex_per_byte = ex.copy_before_send_us_per_byte + ex.recv_beta_us_per_byte;
        let pvm_per_byte = pvm.send_beta_us_per_byte + pvm.recv_beta_us_per_byte;
        let _ = pvm_per_byte;
        assert!(ex_per_byte > p4.send_beta_us_per_byte + p4.recv_beta_us_per_byte);
    }

    #[test]
    fn express_fixed_cost_below_pvm() {
        // This produces the paper's small-message crossover: Express beats
        // PVM below ~1-2 KB, PVM wins at larger sizes.
        let pvm = ToolProfile::for_tool(ToolKind::Pvm);
        let ex = ToolProfile::for_tool(ToolKind::Express);
        assert!(ex.send_alpha_us + ex.recv_alpha_us < pvm.send_alpha_us + pvm.recv_alpha_us);
    }

    #[test]
    fn only_pvm_is_daemon_routed() {
        assert!(ToolProfile::for_tool(ToolKind::Pvm).daemon_routed);
        assert!(!ToolProfile::for_tool(ToolKind::P4).daemon_routed);
        assert!(!ToolProfile::for_tool(ToolKind::Express).daemon_routed);
    }

    #[test]
    fn pvm_has_no_reduce() {
        assert_eq!(ToolProfile::for_tool(ToolKind::Pvm).reduce, None);
        assert_eq!(
            ToolProfile::for_tool(ToolKind::P4).reduce,
            Some(ReduceAlgo::Tree)
        );
        assert_eq!(
            ToolProfile::for_tool(ToolKind::Express).reduce,
            Some(ReduceAlgo::Tree)
        );
    }

    #[test]
    fn direct_route_only_changes_pvm() {
        let pvm = ToolProfile::direct_route(ToolKind::Pvm);
        assert!(!pvm.daemon_routed);
        assert!(pvm.send_beta_us_per_byte < 1.0);
        assert_eq!(
            ToolProfile::direct_route(ToolKind::P4),
            ToolProfile::for_tool(ToolKind::P4)
        );
    }

    #[test]
    fn express_small_combine_is_cheapest() {
        let p4 = ToolProfile::for_tool(ToolKind::P4);
        let ex = ToolProfile::for_tool(ToolKind::Express);
        assert!(ex.small_combine_alpha_us < p4.small_combine_alpha_us);
    }
}
