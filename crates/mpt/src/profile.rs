//! Calibrated cost profiles.
//!
//! A [`ToolProfile`] is the software cost model of one tool — pure data,
//! carried by the tool's [`crate::spec::ToolSpec`]. The three built-in
//! profiles (and the protocol-mechanism reasoning behind every constant)
//! live in [`crate::builtin`]; spec files declare new ones as
//! `profile.*` keys.
//!
//! All fixed costs are in microseconds, per-byte costs in microseconds
//! per byte, at SUN SPARCstation IPX speed (multiplied by the acting
//! host's `sw_scale`).

use crate::tool::ToolKind;

/// How a tool implements one-to-many broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastAlgo {
    /// Binomial tree (p4): `ceil(log2 P)` forwarding rounds.
    BinomialTree,
    /// Root sends to every destination in sequence (PVM `pvm_mcast`).
    SequentialRoot,
    /// Root sends to each destination and waits for an acknowledgement
    /// before the next (Express `exbroadcast`); fully serialized.
    SequentialAck,
}

/// How a tool implements global reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceAlgo {
    /// Binomial-tree reduce to rank 0, then binomial broadcast of the
    /// result (p4 `p4_global_op`).
    Tree,
    /// Sequential ring: accumulate around the ring, then circulate the
    /// result; `2 (P - 1)` serialized transfers. Kept as an ablation
    /// alternative (see the `ablation` benches) — none of the calibrated
    /// profiles use it by default.
    Ring,
}

/// Calibrated software cost model of one tool configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolProfile {
    /// Fixed send-side cost, paid on the send service resource.
    pub send_alpha_us: f64,
    /// Fixed receive-side cost, paid on the receive service resource.
    pub recv_alpha_us: f64,
    /// Per-byte send-side cost, paid per fragment (pipelines with the wire).
    pub send_beta_us_per_byte: f64,
    /// Per-byte receive-side cost, paid per fragment (pipelines with the wire).
    pub recv_beta_us_per_byte: f64,
    /// Per-byte cost paid synchronously *before* transmission begins
    /// (Express's internal buffer copy; does not pipeline).
    pub copy_before_send_us_per_byte: f64,
    /// Protocol header bytes added to the payload on the wire.
    pub header_bytes: u64,
    /// `true` if both send and receive software costs serialize through a
    /// single per-host daemon resource (PVM default route).
    pub daemon_routed: bool,
    /// `true` if the tool's typed packing sends strided (non-contiguous)
    /// data without a separate user-side gather pass (PVM).
    pub strided_native: bool,
    /// Broadcast algorithm.
    pub bcast: BcastAlgo,
    /// Global-reduction algorithm, if the tool has one.
    pub reduce: Option<ReduceAlgo>,
    /// Fixed cost of a tiny-payload combine round (Express's `excombine`
    /// fast path; used when a reduction payload is at most 64 bytes).
    /// `f64::INFINITY` disables the fast path.
    pub small_combine_alpha_us: f64,
    /// Extra synchronous send-side cost per fragment *beyond the first*
    /// (Express segments large messages through its buffering layer).
    pub seg_us_per_extra_fragment: f64,
    /// Per-byte typed-packing cost charged only on *strided* sends when
    /// the tool packs strides natively (PVM's `pvm_pkint` with stride:
    /// one memory pass). Tools without native strided packing pay a
    /// user-side gather instead.
    pub strided_pack_us_per_byte: f64,
    /// The tool's own fragmentation granularity, if smaller than the
    /// network MTU (PVM fragments at 4 KB independent of the medium).
    pub max_fragment_bytes: Option<usize>,
    /// Extra receive cost for *any-source* (wildcard) receives.
    pub wildcard_recv_extra_us: f64,
}

impl ToolProfile {
    /// The calibrated profile for a tool's *default* configuration —
    /// what the paper's TPL microbenchmarks exercise. Resolved through
    /// the registry, so spec-registered tools work identically.
    pub fn for_tool(tool: ToolKind) -> ToolProfile {
        tool.spec().profile.clone()
    }

    /// The tool's tuned direct-route configuration
    /// (`pvm_advise(PvmRouteDirect)` for PVM: task-to-task TCP,
    /// bypassing the daemons). For tools without such a mode this is the
    /// default profile unchanged.
    pub fn direct_route(tool: ToolKind) -> ToolProfile {
        tool.spec().direct_profile.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_is_the_thinnest_layer() {
        let p4 = ToolProfile::for_tool(ToolKind::P4);
        let pvm = ToolProfile::for_tool(ToolKind::PVM);
        let ex = ToolProfile::for_tool(ToolKind::EXPRESS);
        assert!(p4.send_alpha_us < pvm.send_alpha_us);
        assert!(p4.send_alpha_us < ex.send_alpha_us);
        assert!(p4.send_beta_us_per_byte < pvm.send_beta_us_per_byte);
        // Express total per-byte (copy + recv) is the worst.
        let ex_per_byte = ex.copy_before_send_us_per_byte + ex.recv_beta_us_per_byte;
        assert!(ex_per_byte > p4.send_beta_us_per_byte + p4.recv_beta_us_per_byte);
    }

    #[test]
    fn express_fixed_cost_below_pvm() {
        // This produces the paper's small-message crossover: Express beats
        // PVM below ~1-2 KB, PVM wins at larger sizes.
        let pvm = ToolProfile::for_tool(ToolKind::PVM);
        let ex = ToolProfile::for_tool(ToolKind::EXPRESS);
        assert!(ex.send_alpha_us + ex.recv_alpha_us < pvm.send_alpha_us + pvm.recv_alpha_us);
    }

    #[test]
    fn only_pvm_is_daemon_routed() {
        assert!(ToolProfile::for_tool(ToolKind::PVM).daemon_routed);
        assert!(!ToolProfile::for_tool(ToolKind::P4).daemon_routed);
        assert!(!ToolProfile::for_tool(ToolKind::EXPRESS).daemon_routed);
    }

    #[test]
    fn pvm_has_no_reduce() {
        assert_eq!(ToolProfile::for_tool(ToolKind::PVM).reduce, None);
        assert_eq!(
            ToolProfile::for_tool(ToolKind::P4).reduce,
            Some(ReduceAlgo::Tree)
        );
        assert_eq!(
            ToolProfile::for_tool(ToolKind::EXPRESS).reduce,
            Some(ReduceAlgo::Tree)
        );
    }

    #[test]
    fn direct_route_only_changes_pvm() {
        let pvm = ToolProfile::direct_route(ToolKind::PVM);
        assert!(!pvm.daemon_routed);
        assert!(pvm.send_beta_us_per_byte < 1.0);
        assert_eq!(
            ToolProfile::direct_route(ToolKind::P4),
            ToolProfile::for_tool(ToolKind::P4)
        );
        assert_eq!(
            ToolProfile::direct_route(ToolKind::EXPRESS),
            ToolProfile::for_tool(ToolKind::EXPRESS)
        );
    }

    #[test]
    fn express_small_combine_is_cheapest() {
        let p4 = ToolProfile::for_tool(ToolKind::P4);
        let ex = ToolProfile::for_tool(ToolKind::EXPRESS);
        assert!(ex.small_combine_alpha_us < p4.small_combine_alpha_us);
    }
}
