//! Hand-rolled content hashing for spec data and cache keys.
//!
//! The build environment has no crates.io access, so there is no `sha2`
//! or `blake3`; content addressing uses 64-bit FNV-1a — a tiny,
//! well-known, dependency-free hash whose collision probability over
//! the few thousand distinct spec renderings and scenario keys a cache
//! ever sees is negligible. The hash is **stable by construction**
//! (fixed offset basis and prime, byte-serial), so digests written to
//! disk by one build remain addressable by every later build — unlike
//! `std::collections::hash_map::DefaultHasher`, whose output is
//! explicitly unspecified across releases.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher.
///
/// Field boundaries matter for content hashing: feed multi-part content
/// through [`Fnv64::write_delimited`] so `("ab", "c")` and `("a", "bc")`
/// never collide.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Mixes raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes a length-prefixed chunk, so concatenation ambiguity between
    /// adjacent fields cannot produce colliding streams.
    pub fn write_delimited(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// Mixes a string as a delimited field.
    pub fn write_str(&mut self, s: &str) {
        self.write_delimited(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// The canonical 16-hex-digit rendering of a 64-bit content hash, used
/// in cache file names and store fields.
pub fn hex16(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values from the FNV specification (Noll's tables).
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn delimited_fields_do_not_collide_on_concatenation() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex16_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xabc), "0000000000000abc");
        assert_eq!(hex16(u64::MAX).len(), 16);
    }
}
