//! Tool & platform specs as data, and the `.spec` file format.
//!
//! A [`ToolSpec`] is the complete description of one message-passing
//! tool: display name, per-primitive native names (the paper's Table 1
//! row), the calibrated cost [`ToolProfile`] (plus its tuned direct-route
//! variant), platform-port coverage, the ADL usability ratings (§3.3.1)
//! and the supported programming models. The paper's three tools ship as
//! built-in specs ([`crate::builtin`]); new tools are plain data.
//!
//! The `.spec` file format is a deliberately simple line-oriented
//! key-value syntax (the offline build environment has no serde):
//!
//! ```text
//! # comment
//! [tool mytool]
//! name = MyTool
//! primitive.send = my_send
//! ...
//! profile.send_alpha_us = 900
//! ...
//!
//! [platform mycluster]
//! name = My Cluster
//! max_nodes = 100
//! host.mflops = 500
//! link.bandwidth_mbps = 9000
//! ...
//! ```
//!
//! Heterogeneous platforms declare a **topology**: the platform section
//! names its host groups in placement order, each group is its own
//! `[group <platform> <name>]` section (a rank count plus `host.*` and
//! intra-group `link.*` models), and a `[link <platform>]` section
//! carries the inter-group link class:
//!
//! ```text
//! [platform mixed]
//! name = Mixed cluster
//! max_nodes = 32
//! topology = fast slow
//!
//! [group mixed fast]
//! count = 8
//! host.name = Fast node
//! ...
//! link.name = Rack fabric
//! ...
//!
//! [group mixed slow]
//! count = 24
//! ...
//!
//! [link mixed]
//! name = Site WAN
//! bandwidth_mbps = 30
//! ...
//! ```
//!
//! The homogeneous shorthand (`host.*`/`link.*` directly in the platform
//! section) stays valid — every pre-topology spec file parses unchanged
//! into a single-group topology.
//!
//! [`parse_spec`] reads any number of `[tool <slug>]` / `[platform
//! <slug>]` sections (plus their `[group]`/`[link]` stanzas);
//! [`render_spec`] writes them back, and the two round-trip exactly
//! ([`parse_spec`] ∘ [`render_spec`] is the identity on valid specs).
//! Diagnostics carry 1-based line numbers.

use crate::profile::{BcastAlgo, ReduceAlgo, ToolProfile};
use crate::tool::Primitive;
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::net::LinkParams;
use pdceval_simnet::perturb::PerturbSpec;
use pdceval_simnet::platform::{is_slug, PlatformSpec};
use pdceval_simnet::time::SimDuration;
use pdceval_simnet::topology::{HostGroup, Topology};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A usability rating (the paper's WS/PS/NS scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Support {
    /// NS — not supported.
    NotSupported,
    /// PS — partially supported.
    Partial,
    /// WS — well supported.
    Well,
}

impl Support {
    /// The paper's two-letter code.
    pub fn code(&self) -> &'static str {
        match self {
            Support::Well => "WS",
            Support::Partial => "PS",
            Support::NotSupported => "NS",
        }
    }

    /// Parses the paper's two-letter code.
    pub fn from_code(code: &str) -> Option<Support> {
        match code {
            "WS" => Some(Support::Well),
            "PS" => Some(Support::Partial),
            "NS" => Some(Support::NotSupported),
            _ => None,
        }
    }

    /// Numeric value for weighted scoring (WS=2, PS=1, NS=0).
    pub fn value(&self) -> f64 {
        match self {
            Support::Well => 2.0,
            Support::Partial => 1.0,
            Support::NotSupported => 0.0,
        }
    }
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Number of ADL criteria rated per tool (see `pdceval_core::adl`).
pub const ADL_CRITERIA: usize = 9;

/// Which platforms a tool has ports for.
///
/// The paper's only port gap is Express's missing NYNET WAN port, which
/// the legacy `wan_port` flag modelled; real tool/platform matrices are
/// finer, so ports can also be an explicit per-platform allow or deny
/// list of registry slugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortPolicy {
    /// Ports for every platform. With `wan = false`, WAN platforms are
    /// excluded — the legacy `wan_port = false` behaviour.
    All {
        /// Whether WAN-crossing platforms are included.
        wan: bool,
    },
    /// Ports only for the named platform slugs.
    Allow(Vec<String>),
    /// Ports for every platform except the named slugs.
    Deny(Vec<String>),
}

impl Default for PortPolicy {
    /// The old default: ported everywhere, WANs included.
    fn default() -> PortPolicy {
        PortPolicy::All { wan: true }
    }
}

impl PortPolicy {
    /// Whether a platform with this `slug` and `wan` flag is ported.
    pub fn supports(&self, slug: &str, wan: bool) -> bool {
        match self {
            PortPolicy::All { wan: with_wan } => *with_wan || !wan,
            PortPolicy::Allow(slugs) => slugs.iter().any(|s| s == slug),
            PortPolicy::Deny(slugs) => !slugs.iter().any(|s| s == slug),
        }
    }

    /// Checks the policy's slug lists; `tool` names the owner in
    /// diagnostics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self, tool: &str) -> Result<(), String> {
        let (key, slugs) = match self {
            PortPolicy::All { .. } => return Ok(()),
            PortPolicy::Allow(slugs) => ("ports.allow", slugs),
            PortPolicy::Deny(slugs) => ("ports.deny", slugs),
        };
        if slugs.is_empty() {
            return Err(format!(
                "tool '{tool}': {key} must name at least one platform (use wan_port for \
                 all-platform policies)"
            ));
        }
        for s in slugs {
            if !is_slug(s) {
                return Err(format!(
                    "tool '{tool}': {key} entry '{s}' must be lower-case [a-z0-9-]"
                ));
            }
        }
        Ok(())
    }
}

/// The complete data model of one message-passing tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolSpec {
    /// Display name as used in the paper, e.g. `"p4"`.
    pub name: String,
    /// Stable lower-case slug used in scenario/store keys, e.g. `"p4"`.
    pub slug: String,
    /// Native primitive names in [`Primitive::all`] order; `None` is the
    /// paper's "Not Available".
    pub primitives: [Option<String>; 5],
    /// The calibrated default-configuration cost model.
    pub profile: ToolProfile,
    /// The cost model after `advise_direct_route` (tuned task-to-task
    /// routing); equals `profile` for tools without such a mode.
    pub direct_profile: ToolProfile,
    /// Which platforms the tool has ports for (Express had no WAN port).
    pub ports: PortPolicy,
    /// ADL usability ratings in `Criterion` order (paper §3.3.1).
    pub adl: [Support; ADL_CRITERIA],
    /// Supported programming models (paper §2.3).
    pub programming_models: Vec<String>,
}

impl ToolSpec {
    /// Whether the tool implements a built-in global reduction.
    pub fn supports_global_ops(&self) -> bool {
        self.profile.reduce.is_some()
    }

    /// Checks the spec for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("tool name must not be empty".to_string());
        }
        if !is_slug(&self.slug) {
            return Err(format!(
                "tool slug '{}' must be non-empty lower-case [a-z0-9-]",
                self.slug
            ));
        }
        let gs = Primitive::GlobalSum.spec_index();
        if self.primitives[gs].is_some() != self.profile.reduce.is_some() {
            return Err(format!(
                "tool '{}': primitive.globalsum and profile.reduce must agree \
                 (both present or both 'none')",
                self.slug
            ));
        }
        if self.direct_profile.reduce.is_some() != self.profile.reduce.is_some() {
            return Err(format!(
                "tool '{}': direct profile cannot change reduction support",
                self.slug
            ));
        }
        self.ports.validate(&self.slug)?;
        self.check_profile("profile", &self.profile)?;
        self.check_profile("direct", &self.direct_profile)?;
        Ok(())
    }

    /// Rejects negative, NaN or (except for the small-combine fast-path
    /// threshold, where infinity means "disabled") non-finite costs —
    /// they would otherwise be silently clamped to zero deep inside the
    /// simulator and corrupt results without a diagnostic.
    fn check_profile(&self, prefix: &str, p: &ToolProfile) -> Result<(), String> {
        for (field, v) in [
            ("send_alpha_us", p.send_alpha_us),
            ("recv_alpha_us", p.recv_alpha_us),
            ("send_beta_us_per_byte", p.send_beta_us_per_byte),
            ("recv_beta_us_per_byte", p.recv_beta_us_per_byte),
            (
                "copy_before_send_us_per_byte",
                p.copy_before_send_us_per_byte,
            ),
            ("seg_us_per_extra_fragment", p.seg_us_per_extra_fragment),
            ("strided_pack_us_per_byte", p.strided_pack_us_per_byte),
            ("wildcard_recv_extra_us", p.wildcard_recv_extra_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "tool '{}': {prefix}.{field} must be finite and >= 0",
                    self.slug
                ));
            }
        }
        if p.small_combine_alpha_us.is_nan() || p.small_combine_alpha_us < 0.0 {
            return Err(format!(
                "tool '{}': {prefix}.small_combine_alpha_us must be >= 0 (inf = disabled)",
                self.slug
            ));
        }
        if p.max_fragment_bytes == Some(0) {
            return Err(format!(
                "tool '{}': {prefix}.max_fragment_bytes must be > 0 or 'none'",
                self.slug
            ));
        }
        Ok(())
    }
}

impl Primitive {
    /// This primitive's index in a [`ToolSpec::primitives`] array and its
    /// `primitive.<key>` spec-file key.
    pub fn spec_index(self) -> usize {
        match self {
            Primitive::Send => 0,
            Primitive::Receive => 1,
            Primitive::Broadcast => 2,
            Primitive::GlobalSum => 3,
            Primitive::Barrier => 4,
        }
    }

    fn spec_key(self) -> &'static str {
        match self {
            Primitive::Send => "primitive.send",
            Primitive::Receive => "primitive.receive",
            Primitive::Broadcast => "primitive.broadcast",
            Primitive::GlobalSum => "primitive.globalsum",
            Primitive::Barrier => "primitive.barrier",
        }
    }
}

/// One `[campaign <name>]` stanza: a named scenario grid declared as
/// data — kernels × tools × platforms × nprocs × sizes, with a
/// repetition count.
///
/// Kernel names use the scenario-key vocabulary: `sendrecv[-iN]`
/// (echo, N ping-pong iterations), `broadcast`, `ring[-xN]` (N
/// simultaneous shifts), `globalsum`, and the four applications `fft` /
/// `jpeg` / `montecarlo` / `sorting` (their workload scale comes from
/// the run, not the stanza). The `tools` / `platforms` selectors name
/// registry slugs and are optional: a campaign without them sweeps the
/// declaring spec's own models (falling back to the built-ins when the
/// spec declares none). Sizes are bytes for message kernels, vector
/// elements for `globalsum`, and ignored by applications.
///
/// The stanza is pure declaration — `crates/campaign` materializes it
/// into a `ScenarioGrid`, so the usual validity filtering (node limits,
/// port policies, capability gaps) applies unchanged.
///
/// Stanzas are stored and snapshotted *verbatim*: empty selectors stay
/// empty, and resolve against whatever file declares them. A registry
/// snapshot declares every registered model, so reloading it widens a
/// default-selector campaign to the full model set — pin explicit
/// `tools` / `platforms` lists when a shared stanza must reproduce the
/// exact original grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Stable campaign name (a registry-style slug), used with
    /// `pdceval run --campaign <slug>`.
    pub slug: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// Kernel names to sweep (see the type docs for the vocabulary).
    pub kernels: Vec<String>,
    /// Processor counts to sweep.
    pub nprocs: Vec<usize>,
    /// Size parameters to sweep.
    pub sizes: Vec<u64>,
    /// Repetitions per point (>= 1).
    pub reps: u32,
    /// Tool slugs to sweep; empty = the declaring spec's own tools.
    pub tools: Vec<String>,
    /// Platform slugs to sweep; empty = the declaring spec's own
    /// platforms.
    pub platforms: Vec<String>,
    /// Perturbation slugs to sweep; the reserved name `none` selects the
    /// clean (unperturbed) variant, so `perturb = none chaos` runs the
    /// grid once clean and once under `[perturb chaos]`. Empty = clean
    /// only (pre-perturbation behaviour, keys unchanged).
    pub perturbs: Vec<String>,
    /// Seeds per perturbed variant: each non-`none` perturbation runs the
    /// grid for seeds `1..=seeds`. Clean runs are seed-independent, so
    /// `seeds` > 1 requires at least one real perturbation.
    pub seeds: u32,
}

/// A campaign kernel name, parsed: the single definition of the
/// vocabulary `[campaign]` stanzas use. The campaign crate maps this
/// onto its executable kernel type; the validity check
/// ([`is_campaign_kernel`]) and duplicate canonicalization consume the
/// same parse, so the grammar cannot drift between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKernel {
    /// `sendrecv[-iN]`: point-to-point echo, N ping-pong iterations.
    SendRecv(u32),
    /// `broadcast`.
    Broadcast,
    /// `ring[-xN]`: N simultaneous ring shifts.
    Ring(u32),
    /// `globalsum`.
    GlobalSum,
    /// `fft`: the 2D-FFT application.
    Fft,
    /// `jpeg`: the JPEG application.
    Jpeg,
    /// `montecarlo`: the Monte Carlo application.
    MonteCarlo,
    /// `sorting`: the PSRS sorting application.
    Sorting,
}

/// Parses a campaign kernel name: `sendrecv[-iN]`, `broadcast`,
/// `ring[-xN]`, `globalsum`, `fft`, `jpeg`, `montecarlo` or `sorting`,
/// with `N` a positive integer (1 when omitted).
pub fn parse_campaign_kernel(name: &str) -> Option<CampaignKernel> {
    fn param(rest: &str, prefix: &str) -> Option<u32> {
        if rest.is_empty() {
            return Some(1);
        }
        let digits = rest.strip_prefix(prefix)?;
        if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
            return None;
        }
        digits.parse::<u32>().ok().filter(|&n| n >= 1)
    }
    if let Some(rest) = name.strip_prefix("sendrecv") {
        return param(rest, "-i").map(CampaignKernel::SendRecv);
    }
    if let Some(rest) = name.strip_prefix("ring") {
        return param(rest, "-x").map(CampaignKernel::Ring);
    }
    match name {
        "broadcast" => Some(CampaignKernel::Broadcast),
        "globalsum" => Some(CampaignKernel::GlobalSum),
        "fft" => Some(CampaignKernel::Fft),
        "jpeg" => Some(CampaignKernel::Jpeg),
        "montecarlo" => Some(CampaignKernel::MonteCarlo),
        "sorting" => Some(CampaignKernel::Sorting),
        _ => None,
    }
}

/// Whether `name` is a valid campaign kernel name (see
/// [`parse_campaign_kernel`]).
pub fn is_campaign_kernel(name: &str) -> bool {
    parse_campaign_kernel(name).is_some()
}

/// The kernel vocabulary, as quoted in unknown-kernel diagnostics —
/// one string so parse-time and validate-time messages cannot drift.
const KERNEL_VOCABULARY: &str =
    "sendrecv[-iN], broadcast, ring[-xN], globalsum, fft, jpeg, montecarlo or sorting";

/// Canonical form of a campaign kernel name for duplicate detection:
/// parameterized kernels normalize their parameter, so `ring` ==
/// `ring-x1` and `sendrecv-i01` == `sendrecv-i1`. Invalid names pass
/// through unchanged (they are rejected separately).
fn canonical_kernel(name: &str) -> String {
    match parse_campaign_kernel(name) {
        Some(CampaignKernel::SendRecv(n)) => format!("sendrecv-i{n}"),
        Some(CampaignKernel::Ring(n)) => format!("ring-x{n}"),
        _ => name.to_string(),
    }
}

impl CampaignSpec {
    /// Checks the stanza for internal consistency (the same rules the
    /// parser enforces with line numbers).
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let ctx = format!("campaign '{}'", self.slug);
        if !is_slug(&self.slug) {
            return Err(format!(
                "campaign slug '{}' must be non-empty lower-case [a-z0-9-]",
                self.slug
            ));
        }
        if self.kernels.is_empty() {
            return Err(format!("{ctx}: 'kernels' must name at least one kernel"));
        }
        for k in &self.kernels {
            if !is_campaign_kernel(k) {
                return Err(format!(
                    "{ctx}: unknown kernel '{k}' (expected {KERNEL_VOCABULARY})"
                ));
            }
        }
        if self.nprocs.is_empty() {
            return Err(format!("{ctx}: 'nprocs' must list at least one count"));
        }
        if self.nprocs.contains(&0) {
            return Err(format!("{ctx}: 'nprocs' entries must be >= 1"));
        }
        if self.sizes.is_empty() {
            return Err(format!("{ctx}: 'sizes' must list at least one size"));
        }
        if self.reps == 0 {
            return Err(format!("{ctx}: 'reps' must be >= 1"));
        }
        if self.seeds == 0 {
            return Err(format!("{ctx}: 'seeds' must be >= 1"));
        }
        if self.seeds > 1 && !self.perturbs.iter().any(|p| p != "none") {
            return Err(format!(
                "{ctx}: 'seeds' > 1 needs a perturbation in 'perturb' \
                 (clean runs are seed-independent)"
            ));
        }
        for (key, slugs) in [
            ("tools", &self.tools),
            ("platforms", &self.platforms),
            ("perturb", &self.perturbs),
        ] {
            for s in slugs {
                if !is_slug(s) {
                    return Err(format!(
                        "{ctx}: {key} entry '{s}' must be lower-case [a-z0-9-]"
                    ));
                }
            }
        }
        // Duplicate axis entries would enumerate one scenario key twice,
        // which the duplicate-aware store diff then rejects. Kernels
        // compare in canonical form, so aliases (`ring` vs `ring-x1`)
        // cannot smuggle a duplicate past the check either.
        let canon: Vec<String> = self.kernels.iter().map(|k| canonical_kernel(k)).collect();
        if let Some((i, j)) = canon
            .iter()
            .enumerate()
            .find_map(|(i, c)| canon[..i].iter().position(|o| o == c).map(|j| (i, j)))
        {
            return Err(if self.kernels[i] == self.kernels[j] {
                format!("{ctx}: 'kernels' lists '{}' twice", self.kernels[i])
            } else {
                format!(
                    "{ctx}: 'kernels' lists '{}' and '{}', which name the same kernel",
                    self.kernels[j], self.kernels[i]
                )
            });
        }
        fn dup<T: PartialEq + fmt::Display>(list: &[T]) -> Option<&T> {
            list.iter()
                .enumerate()
                .find(|(i, v)| list[..*i].contains(v))
                .map(|(_, v)| v)
        }
        for (key, d) in [
            ("tools", dup(&self.tools).map(ToString::to_string)),
            ("platforms", dup(&self.platforms).map(ToString::to_string)),
            ("perturb", dup(&self.perturbs).map(ToString::to_string)),
            ("nprocs", dup(&self.nprocs).map(ToString::to_string)),
            ("sizes", dup(&self.sizes).map(ToString::to_string)),
        ] {
            if let Some(d) = d {
                return Err(format!("{ctx}: '{key}' lists '{d}' twice"));
            }
        }
        Ok(())
    }
}

/// Everything one `.spec` file declares.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecFile {
    /// Declared tools, in file order.
    pub tools: Vec<ToolSpec>,
    /// Declared platforms, in file order.
    pub platforms: Vec<PlatformSpec>,
    /// Declared campaigns, in file order.
    pub campaigns: Vec<CampaignSpec>,
    /// Declared perturbation models, in file order.
    pub perturbs: Vec<PerturbSpec>,
}

/// A spec-file diagnostic: what went wrong, and on which 1-based line
/// (0 = end of file / section level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number, or 0 when the problem is not tied to a line.
    pub line: usize,
    /// The problem.
    pub message: String,
}

impl SpecError {
    fn at(line: usize, message: impl Into<String>) -> SpecError {
        SpecError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// One `key = value` entry with its source line.
type Entries = Vec<(usize, String, String)>;

struct Section {
    kind: SectionKind,
    slug: String,
    /// The group name of a `[group <platform> <name>]` section.
    sub: Option<String>,
    header_line: usize,
    entries: Entries,
}

#[derive(PartialEq, Clone, Copy)]
enum SectionKind {
    Tool,
    Platform,
    /// One host group of a platform's topology:
    /// `[group <platform> <name>]`.
    Group,
    /// A platform's inter-group link class: `[link <platform>]`.
    Link,
    /// A named scenario grid: `[campaign <name>]`.
    Campaign,
    /// A seeded perturbation model: `[perturb <name>]`.
    Perturb,
}

/// Parses a `.spec` file.
///
/// # Errors
///
/// Returns the first diagnostic encountered, with its line number.
pub fn parse_spec(text: &str) -> Result<SpecFile, SpecError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            let Some(inner) = inner.strip_suffix(']') else {
                return Err(SpecError::at(lineno, "unterminated section header"));
            };
            let mut parts = inner.split_whitespace();
            let kind = match parts.next() {
                Some("tool") => SectionKind::Tool,
                Some("platform") => SectionKind::Platform,
                Some("group") => SectionKind::Group,
                Some("link") => SectionKind::Link,
                Some("campaign") => SectionKind::Campaign,
                Some("perturb") => SectionKind::Perturb,
                other => {
                    return Err(SpecError::at(
                        lineno,
                        format!(
                            "unknown section '{}' (expected 'tool', 'platform', 'group', \
                             'link', 'campaign' or 'perturb')",
                            other.unwrap_or("")
                        ),
                    ))
                }
            };
            let Some(slug) = parts.next() else {
                return Err(SpecError::at(
                    lineno,
                    "section header needs a slug, e.g. [tool mytool]",
                ));
            };
            if !is_slug(slug) {
                return Err(SpecError::at(
                    lineno,
                    format!("slug '{slug}' must be lower-case [a-z0-9-]"),
                ));
            }
            let sub = if kind == SectionKind::Group {
                let Some(name) = parts.next() else {
                    return Err(SpecError::at(
                        lineno,
                        "group header needs a platform slug and a group name, e.g. \
                         [group mycluster fast]",
                    ));
                };
                if !is_slug(name) {
                    return Err(SpecError::at(
                        lineno,
                        format!("group name '{name}' must be lower-case [a-z0-9-]"),
                    ));
                }
                Some(name.to_string())
            } else {
                None
            };
            if parts.next().is_some() {
                return Err(SpecError::at(lineno, "trailing tokens in section header"));
            }
            sections.push(Section {
                kind,
                slug: slug.to_string(),
                sub,
                header_line: lineno,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SpecError::at(
                lineno,
                "expected 'key = value' (or a [tool]/[platform] header)",
            ));
        };
        let Some(section) = sections.last_mut() else {
            return Err(SpecError::at(
                lineno,
                "entry before any [tool]/[platform] section header",
            ));
        };
        let key = key.trim().to_string();
        if section.entries.iter().any(|(_, k, _)| *k == key) {
            return Err(SpecError::at(lineno, format!("duplicate key '{key}'")));
        }
        section
            .entries
            .push((lineno, key, value.trim().to_string()));
    }

    // Index group/link sections by the platform slug they attach to.
    let mut groups: BTreeMap<&str, Vec<&Section>> = BTreeMap::new();
    let mut inter_links: BTreeMap<&str, &Section> = BTreeMap::new();
    for s in &sections {
        match s.kind {
            SectionKind::Group => {
                let name = s.sub.as_deref().expect("group sections carry a name");
                let list = groups.entry(s.slug.as_str()).or_default();
                if list.iter().any(|g| g.sub.as_deref() == Some(name)) {
                    return Err(SpecError::at(
                        s.header_line,
                        format!("duplicate [group {} {name}] section", s.slug),
                    ));
                }
                list.push(s);
            }
            SectionKind::Link => {
                if inter_links.insert(s.slug.as_str(), s).is_some() {
                    return Err(SpecError::at(
                        s.header_line,
                        format!("duplicate [link {}] section", s.slug),
                    ));
                }
            }
            SectionKind::Tool
            | SectionKind::Platform
            | SectionKind::Campaign
            | SectionKind::Perturb => {}
        }
    }

    let mut file = SpecFile::default();
    for s in &sections {
        match s.kind {
            SectionKind::Tool => file.tools.push(build_tool(s)?),
            SectionKind::Platform => file
                .platforms
                .push(build_platform(s, &groups, &inter_links)?),
            SectionKind::Campaign => {
                if file.campaigns.iter().any(|c| c.slug == s.slug) {
                    return Err(SpecError::at(
                        s.header_line,
                        format!("duplicate [campaign {}] section", s.slug),
                    ));
                }
                file.campaigns.push(build_campaign(s)?);
            }
            SectionKind::Perturb => {
                if file.perturbs.iter().any(|p| p.slug == s.slug) {
                    return Err(SpecError::at(
                        s.header_line,
                        format!("duplicate [perturb {}] section", s.slug),
                    ));
                }
                file.perturbs.push(build_perturb(s)?);
            }
            SectionKind::Group | SectionKind::Link => {}
        }
    }

    // Group/link sections must attach to a platform declared in this
    // file (the platform builder consumed and cross-checked them above).
    for s in &sections {
        if matches!(s.kind, SectionKind::Group | SectionKind::Link)
            && !file.platforms.iter().any(|p| p.slug == s.slug)
        {
            return Err(SpecError::at(
                s.header_line,
                format!(
                    "section refers to platform '{}', which this file does not declare",
                    s.slug
                ),
            ));
        }
    }
    Ok(file)
}

/// Key-map view of a section with taken-key tracking, so leftovers can be
/// reported as unknown keys.
struct Fields<'a> {
    slug: &'a str,
    header_line: usize,
    map: BTreeMap<&'a str, (usize, &'a str)>,
}

impl<'a> Fields<'a> {
    fn new(s: &'a Section) -> Fields<'a> {
        Fields {
            slug: &s.slug,
            header_line: s.header_line,
            map: s
                .entries
                .iter()
                .map(|(line, k, v)| (k.as_str(), (*line, v.as_str())))
                .collect(),
        }
    }

    fn take(&mut self, key: &str) -> Option<(usize, &'a str)> {
        self.map.remove(key)
    }

    fn required(&mut self, key: &str) -> Result<(usize, &'a str), SpecError> {
        self.take(key).ok_or_else(|| {
            SpecError::at(
                self.header_line,
                format!("section '{}' is missing required key '{key}'", self.slug),
            )
        })
    }

    fn finish(self) -> Result<(), SpecError> {
        if let Some((key, (line, _))) = self.map.into_iter().next() {
            return Err(SpecError::at(line, format!("unknown key '{key}'")));
        }
        Ok(())
    }
}

fn parse_f64(line: usize, key: &str, v: &str) -> Result<f64, SpecError> {
    v.parse::<f64>()
        .map_err(|_| SpecError::at(line, format!("'{key}': expected a number, got '{v}'")))
}

fn parse_bool(line: usize, key: &str, v: &str) -> Result<bool, SpecError> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(SpecError::at(
            line,
            format!("'{key}': expected true/false, got '{v}'"),
        )),
    }
}

fn parse_usize(line: usize, key: &str, v: &str) -> Result<usize, SpecError> {
    v.parse::<usize>()
        .map_err(|_| SpecError::at(line, format!("'{key}': expected an integer, got '{v}'")))
}

fn opt_name(v: &str) -> Option<String> {
    (v != "none").then(|| v.to_string())
}

const BCAST_CODES: [(&str, BcastAlgo); 3] = [
    ("binomial-tree", BcastAlgo::BinomialTree),
    ("sequential-root", BcastAlgo::SequentialRoot),
    ("sequential-ack", BcastAlgo::SequentialAck),
];

const REDUCE_CODES: [(&str, ReduceAlgo); 2] =
    [("tree", ReduceAlgo::Tree), ("ring", ReduceAlgo::Ring)];

fn bcast_code(b: BcastAlgo) -> &'static str {
    BCAST_CODES
        .iter()
        .find(|(_, a)| *a == b)
        .map(|(c, _)| *c)
        .expect("every bcast algo has a code")
}

fn reduce_code(r: Option<ReduceAlgo>) -> &'static str {
    match r {
        None => "none",
        Some(r) => REDUCE_CODES
            .iter()
            .find(|(_, a)| *a == r)
            .map(|(c, _)| *c)
            .expect("every reduce algo has a code"),
    }
}

/// The `profile.`-prefixed fields, shared by the default and
/// direct-route profiles (`direct.` overrides individual fields).
fn apply_profile_field(
    p: &mut ToolProfile,
    line: usize,
    key: &str,
    field: &str,
    v: &str,
) -> Result<bool, SpecError> {
    match field {
        "send_alpha_us" => p.send_alpha_us = parse_f64(line, key, v)?,
        "recv_alpha_us" => p.recv_alpha_us = parse_f64(line, key, v)?,
        "send_beta_us_per_byte" => p.send_beta_us_per_byte = parse_f64(line, key, v)?,
        "recv_beta_us_per_byte" => p.recv_beta_us_per_byte = parse_f64(line, key, v)?,
        "copy_before_send_us_per_byte" => p.copy_before_send_us_per_byte = parse_f64(line, key, v)?,
        "header_bytes" => p.header_bytes = parse_usize(line, key, v)? as u64,
        "daemon_routed" => p.daemon_routed = parse_bool(line, key, v)?,
        "strided_native" => p.strided_native = parse_bool(line, key, v)?,
        "small_combine_alpha_us" => p.small_combine_alpha_us = parse_f64(line, key, v)?,
        "seg_us_per_extra_fragment" => p.seg_us_per_extra_fragment = parse_f64(line, key, v)?,
        "strided_pack_us_per_byte" => p.strided_pack_us_per_byte = parse_f64(line, key, v)?,
        "wildcard_recv_extra_us" => p.wildcard_recv_extra_us = parse_f64(line, key, v)?,
        "max_fragment_bytes" => {
            p.max_fragment_bytes = if v == "none" {
                None
            } else {
                Some(parse_usize(line, key, v)?)
            }
        }
        "bcast" => {
            p.bcast = BCAST_CODES
                .iter()
                .find(|(c, _)| *c == v)
                .map(|(_, a)| *a)
                .ok_or_else(|| {
                    SpecError::at(
                        line,
                        format!(
                            "'{key}': expected one of binomial-tree/sequential-root/\
                             sequential-ack, got '{v}'"
                        ),
                    )
                })?
        }
        "reduce" => {
            p.reduce = if v == "none" {
                None
            } else {
                Some(
                    REDUCE_CODES
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, a)| *a)
                        .ok_or_else(|| {
                            SpecError::at(
                                line,
                                format!("'{key}': expected tree/ring/none, got '{v}'"),
                            )
                        })?,
                )
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn build_tool(s: &Section) -> Result<ToolSpec, SpecError> {
    let mut f = Fields::new(s);
    let name = f.required("name")?.1.to_string();

    let mut primitives: [Option<String>; 5] = Default::default();
    for p in Primitive::all() {
        let (_, v) = f.required(p.spec_key())?;
        primitives[p.spec_index()] = opt_name(v);
    }

    let (adl_line, adl_raw) = f.required("adl")?;
    let codes: Vec<&str> = adl_raw.split_whitespace().collect();
    if codes.len() != ADL_CRITERIA {
        return Err(SpecError::at(
            adl_line,
            format!(
                "'adl': expected {ADL_CRITERIA} WS/PS/NS codes, got {}",
                codes.len()
            ),
        ));
    }
    let mut adl = [Support::NotSupported; ADL_CRITERIA];
    for (i, code) in codes.iter().enumerate() {
        adl[i] = Support::from_code(code).ok_or_else(|| {
            SpecError::at(adl_line, format!("'adl': bad code '{code}' (WS/PS/NS)"))
        })?;
    }

    // Platform ports: the legacy all-platform `wan_port` flag, or an
    // explicit allow/deny list of platform slugs. At most one of the
    // three may appear; none means the old default (ported everywhere).
    let wan_port = f.take("wan_port");
    let allow = f.take("ports.allow");
    let deny = f.take("ports.deny");
    let port_keys = usize::from(wan_port.is_some())
        + usize::from(allow.is_some())
        + usize::from(deny.is_some());
    if port_keys > 1 {
        let line = [
            wan_port.as_ref().map(|(l, _)| *l),
            allow.as_ref().map(|(l, _)| *l),
            deny.as_ref().map(|(l, _)| *l),
        ]
        .into_iter()
        .flatten()
        .max()
        .expect("at least two port keys present");
        return Err(SpecError::at(
            line,
            "wan_port, ports.allow and ports.deny are mutually exclusive",
        ));
    }
    let slugs = |v: &str| -> Vec<String> { v.split_whitespace().map(str::to_string).collect() };
    let ports = match (wan_port, allow, deny) {
        (Some((line, v)), _, _) => PortPolicy::All {
            wan: parse_bool(line, "wan_port", v)?,
        },
        (_, Some((_, v)), _) => PortPolicy::Allow(slugs(v)),
        (_, _, Some((_, v))) => PortPolicy::Deny(slugs(v)),
        _ => PortPolicy::default(),
    };
    let programming_models = match f.take("programming_models") {
        Some((_, v)) => v.split(',').map(|m| m.trim().to_string()).collect(),
        None => vec!["Host-Node".to_string(), "SPMD".to_string()],
    };

    // Profile: mandatory core fields, optional extras defaulting to the
    // "thin tool" behaviour (no copies, no daemon, no fast paths).
    let mut profile = ToolProfile {
        send_alpha_us: 0.0,
        recv_alpha_us: 0.0,
        send_beta_us_per_byte: 0.0,
        recv_beta_us_per_byte: 0.0,
        copy_before_send_us_per_byte: 0.0,
        header_bytes: 0,
        daemon_routed: false,
        strided_native: false,
        bcast: BcastAlgo::BinomialTree,
        reduce: None,
        small_combine_alpha_us: f64::INFINITY,
        seg_us_per_extra_fragment: 0.0,
        strided_pack_us_per_byte: 0.0,
        max_fragment_bytes: None,
        wildcard_recv_extra_us: 0.0,
    };
    for field in [
        "send_alpha_us",
        "recv_alpha_us",
        "send_beta_us_per_byte",
        "recv_beta_us_per_byte",
        "header_bytes",
        "bcast",
        "reduce",
    ] {
        let key = format!("profile.{field}");
        let (line, v) = f.required(&key)?;
        apply_profile_field(&mut profile, line, &key, field, v)?;
    }
    for field in [
        "copy_before_send_us_per_byte",
        "daemon_routed",
        "strided_native",
        "small_combine_alpha_us",
        "seg_us_per_extra_fragment",
        "strided_pack_us_per_byte",
        "wildcard_recv_extra_us",
        "max_fragment_bytes",
    ] {
        let key = format!("profile.{field}");
        if let Some((line, v)) = f.take(&key) {
            apply_profile_field(&mut profile, line, &key, field, v)?;
        }
    }

    // Direct-route profile: starts as a copy, individual `direct.` keys
    // override.
    let mut direct_profile = profile.clone();
    let direct_keys: Vec<String> = f
        .map
        .keys()
        .filter(|k| k.starts_with("direct."))
        .map(|k| k.to_string())
        .collect();
    for key in direct_keys {
        let (line, v) = f.take(&key).expect("key just listed");
        let field = key.strip_prefix("direct.").expect("filtered on prefix");
        if !apply_profile_field(&mut direct_profile, line, &key, field, v)? {
            return Err(SpecError::at(line, format!("unknown key '{key}'")));
        }
    }

    let header_line = f.header_line;
    f.finish()?;
    let spec = ToolSpec {
        name,
        slug: s.slug.clone(),
        primitives,
        profile,
        direct_profile,
        ports,
        adl,
        programming_models,
    };
    spec.validate()
        .map_err(|msg| SpecError::at(header_line, msg))?;
    Ok(spec)
}

/// The `host.*` fields of a platform or group section.
fn take_host(f: &mut Fields<'_>) -> Result<HostSpec, SpecError> {
    let host_name = f.required("host.name")?.1.to_string();
    let mut host_nums = [0.0f64; 4];
    for (i, field) in ["mflops", "mips", "mem_bw_mbs", "sw_scale"]
        .into_iter()
        .enumerate()
    {
        let key = format!("host.{field}");
        let (line, v) = f.required(&key)?;
        host_nums[i] = parse_f64(line, &key, v)?;
        if !host_nums[i].is_finite() || host_nums[i] <= 0.0 {
            return Err(SpecError::at(line, format!("'{key}' must be positive")));
        }
    }
    Ok(HostSpec {
        name: host_name,
        mflops: host_nums[0],
        mips: host_nums[1],
        mem_bw_mbs: host_nums[2],
        sw_scale: host_nums[3],
    })
}

/// The link fields of a platform/group section (`prefix` = `"link."`) or
/// of an inter-group `[link ...]` section (`prefix` = `""`).
fn take_link(f: &mut Fields<'_>, prefix: &str) -> Result<LinkParams, SpecError> {
    let key = |field: &str| format!("{prefix}{field}");
    let link_name = f.required(&key("name"))?.1.to_string();
    let k = key("bandwidth_mbps");
    let (line, v) = f.required(&k)?;
    let bandwidth_mbps = parse_f64(line, &k, v)?;
    let k = key("latency_us");
    let (line, v) = f.required(&k)?;
    let latency = SimDuration::from_micros_f64(parse_f64(line, &k, v)?);
    let k = key("mtu");
    let (line, v) = f.required(&k)?;
    let mtu = parse_usize(line, &k, v)?;
    let k = key("per_packet_us");
    let per_packet = match f.take(&k) {
        Some((line, v)) => SimDuration::from_micros_f64(parse_f64(line, &k, v)?),
        None => SimDuration::ZERO,
    };
    let k = key("shared_medium");
    let shared_medium = match f.take(&k) {
        Some((line, v)) => parse_bool(line, &k, v)?,
        None => false,
    };
    Ok(LinkParams {
        name: link_name,
        bandwidth_mbps,
        latency,
        mtu,
        per_packet,
        shared_medium,
    })
}

/// One `[group <platform> <name>]` section: a rank count plus host and
/// intra-group link models.
fn build_group(s: &Section) -> Result<HostGroup, SpecError> {
    let mut f = Fields::new(s);
    let (line, v) = f.required("count")?;
    let count = parse_usize(line, "count", v)?;
    let host = take_host(&mut f)?;
    let link = take_link(&mut f, "link.")?;
    f.finish()?;
    Ok(HostGroup {
        name: s.sub.clone().expect("group sections carry a name"),
        host,
        count,
        link,
    })
}

/// One `[link <platform>]` section: the inter-group link class, with
/// bare (unprefixed) link keys.
fn build_inter_link(s: &Section) -> Result<LinkParams, SpecError> {
    let mut f = Fields::new(s);
    let link = take_link(&mut f, "")?;
    f.finish()?;
    Ok(link)
}

/// One `[perturb <name>]` section: a seeded perturbation model. Every
/// knob is optional and defaults to "off", so rendering emits only the
/// knobs a stanza actually sets.
fn build_perturb(s: &Section) -> Result<PerturbSpec, SpecError> {
    let mut f = Fields::new(s);
    let mut spec = PerturbSpec::quiet(&s.slug);
    spec.title = f.take("title").map(|(_, v)| v.to_string());
    if let Some((line, v)) = f.take("jitter") {
        spec.jitter = parse_f64(line, "jitter", v)?;
    }
    if let Some((line, v)) = f.take("congestion") {
        spec.congestion = parse_f64(line, "congestion", v)?;
    }
    if let Some((line, v)) = f.take("straggler") {
        let mut stragglers = Vec::new();
        for tok in v.split_whitespace() {
            let Some((group, factor)) = tok.split_once('=') else {
                return Err(SpecError::at(
                    line,
                    format!("'straggler': expected 'group=factor' tokens, got '{tok}'"),
                ));
            };
            stragglers.push((group.to_string(), parse_f64(line, "straggler", factor)?));
        }
        spec.stragglers = stragglers;
    }
    if let Some((line, v)) = f.take("loss") {
        spec.loss = parse_f64(line, "loss", v)?;
    }
    if let Some((line, v)) = f.take("loss.timeout_us") {
        spec.loss_timeout_us = parse_f64(line, "loss.timeout_us", v)?;
    }
    if let Some((line, v)) = f.take("crash.rank") {
        spec.crash_rank = Some(parse_usize(line, "crash.rank", v)?);
    }
    if let Some((line, v)) = f.take("crash.at_us") {
        spec.crash_at_us = Some(parse_f64(line, "crash.at_us", v)?);
    }
    let header_line = f.header_line;
    f.finish()?;
    spec.validate()
        .map_err(|msg| SpecError::at(header_line, msg))?;
    Ok(spec)
}

/// One `[campaign <name>]` section: a declared scenario grid.
fn build_campaign(s: &Section) -> Result<CampaignSpec, SpecError> {
    let mut f = Fields::new(s);
    let title = f.take("title").map(|(_, v)| v.to_string());

    let (kernels_line, kernels_raw) = f.required("kernels")?;
    let kernels: Vec<String> = kernels_raw.split_whitespace().map(str::to_string).collect();
    for k in &kernels {
        if !is_campaign_kernel(k) {
            return Err(SpecError::at(
                kernels_line,
                format!("'kernels': unknown kernel '{k}' (expected {KERNEL_VOCABULARY})"),
            ));
        }
    }

    let slug_list = |f: &mut Fields<'_>, key: &str| -> Result<Vec<String>, SpecError> {
        match f.take(key) {
            None => Ok(Vec::new()),
            Some((line, v)) => {
                let slugs: Vec<String> = v.split_whitespace().map(str::to_string).collect();
                for s in &slugs {
                    if !is_slug(s) {
                        return Err(SpecError::at(
                            line,
                            format!("'{key}': entry '{s}' must be lower-case [a-z0-9-]"),
                        ));
                    }
                }
                Ok(slugs)
            }
        }
    };
    let tools = slug_list(&mut f, "tools")?;
    let platforms = slug_list(&mut f, "platforms")?;
    let perturbs = slug_list(&mut f, "perturb")?;

    let (nprocs_line, nprocs_raw) = f.required("nprocs")?;
    let nprocs: Vec<usize> = nprocs_raw
        .split_whitespace()
        .map(|v| parse_usize(nprocs_line, "nprocs", v))
        .collect::<Result<_, _>>()?;
    let (sizes_line, sizes_raw) = f.required("sizes")?;
    let sizes: Vec<u64> = sizes_raw
        .split_whitespace()
        .map(|v| parse_usize(sizes_line, "sizes", v).map(|n| n as u64))
        .collect::<Result<_, _>>()?;
    let reps = match f.take("reps") {
        None => 1,
        Some((line, v)) => {
            let reps = parse_usize(line, "reps", v)?;
            if reps == 0 {
                return Err(SpecError::at(line, "'reps' must be >= 1".to_string()));
            }
            u32::try_from(reps).map_err(|_| {
                SpecError::at(
                    line,
                    format!("'reps' value {reps} is too large (max {})", u32::MAX),
                )
            })?
        }
    };
    let seeds = match f.take("seeds") {
        None => 1,
        Some((line, v)) => {
            let seeds = parse_usize(line, "seeds", v)?;
            if seeds == 0 {
                return Err(SpecError::at(line, "'seeds' must be >= 1".to_string()));
            }
            u32::try_from(seeds).map_err(|_| {
                SpecError::at(
                    line,
                    format!("'seeds' value {seeds} is too large (max {})", u32::MAX),
                )
            })?
        }
    };

    let header_line = f.header_line;
    f.finish()?;
    let spec = CampaignSpec {
        slug: s.slug.clone(),
        title,
        kernels,
        nprocs,
        sizes,
        reps,
        tools,
        platforms,
        perturbs,
        seeds,
    };
    spec.validate()
        .map_err(|msg| SpecError::at(header_line, msg))?;
    Ok(spec)
}

fn build_platform(
    s: &Section,
    groups: &BTreeMap<&str, Vec<&Section>>,
    inter_links: &BTreeMap<&str, &Section>,
) -> Result<PlatformSpec, SpecError> {
    let mut f = Fields::new(s);
    let name = f.required("name")?.1.to_string();
    let (line, v) = f.required("max_nodes")?;
    let max_nodes = parse_usize(line, "max_nodes", v)?;
    let wan = match f.take("wan") {
        Some((line, v)) => parse_bool(line, "wan", v)?,
        None => false,
    };

    let own_groups: &[&Section] = groups.get(s.slug.as_str()).map_or(&[], Vec::as_slice);
    let own_inter = inter_links.get(s.slug.as_str()).copied();

    // Either an explicit topology (the `topology` key naming `[group]`
    // sections in placement order, plus a `[link]` section for the
    // inter-group class), or the homogeneous shorthand (`host.*` and
    // `link.*` keys directly in this section — every pre-topology spec
    // file parses unchanged).
    let topology = match f.take("topology") {
        Some((topo_line, v)) => {
            let names: Vec<&str> = v.split_whitespace().collect();
            if names.is_empty() {
                return Err(SpecError::at(
                    topo_line,
                    "'topology' must name at least one group",
                ));
            }
            for (i, n) in names.iter().enumerate() {
                if names[..i].contains(n) {
                    return Err(SpecError::at(
                        topo_line,
                        format!("'topology' names group '{n}' twice"),
                    ));
                }
            }
            let mut built = Vec::with_capacity(names.len());
            for gname in &names {
                let Some(gs) = own_groups.iter().find(|g| g.sub.as_deref() == Some(*gname)) else {
                    return Err(SpecError::at(
                        topo_line,
                        format!(
                            "topology names group '{gname}' but there is no \
                             [group {} {gname}] section",
                            s.slug
                        ),
                    ));
                };
                built.push(build_group(gs)?);
            }
            if let Some(stray) = own_groups
                .iter()
                .find(|g| !names.contains(&g.sub.as_deref().expect("group name")))
            {
                return Err(SpecError::at(
                    stray.header_line,
                    format!(
                        "group '{}' is not named in platform '{}'s topology",
                        stray.sub.as_deref().expect("group name"),
                        s.slug
                    ),
                ));
            }
            let inter = if names.len() > 1 {
                let Some(ls) = own_inter else {
                    return Err(SpecError::at(
                        topo_line,
                        format!(
                            "platform '{}' has {} groups but no [link {}] section for the \
                             inter-group link",
                            s.slug,
                            names.len(),
                            s.slug
                        ),
                    ));
                };
                Some(build_inter_link(ls)?)
            } else {
                if let Some(ls) = own_inter {
                    return Err(SpecError::at(
                        ls.header_line,
                        format!(
                            "platform '{}' has a single group and needs no inter-group \
                             [link] section",
                            s.slug
                        ),
                    ));
                }
                None
            };
            Topology {
                groups: built,
                inter,
            }
        }
        None => {
            if let Some(g) = own_groups.first() {
                return Err(SpecError::at(
                    g.header_line,
                    format!(
                        "platform '{}' has [group] sections but no 'topology' key",
                        s.slug
                    ),
                ));
            }
            if let Some(ls) = own_inter {
                return Err(SpecError::at(
                    ls.header_line,
                    format!(
                        "platform '{}' has a [link] section but no 'topology' key",
                        s.slug
                    ),
                ));
            }
            let host = take_host(&mut f)?;
            let link = take_link(&mut f, "link.")?;
            Topology::homogeneous(host, link, max_nodes)
        }
    };

    let header_line = f.header_line;
    f.finish()?;
    let spec = PlatformSpec {
        name,
        slug: s.slug.clone(),
        topology,
        max_nodes,
        wan,
    };
    spec.validate()
        .map_err(|msg| SpecError::at(header_line, msg))?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render_profile(out: &mut String, prefix: &str, p: &ToolProfile, base: Option<&ToolProfile>) {
    // With a base profile, emit only the differing fields (the `direct.`
    // override form); otherwise emit everything.
    let mut emit = |name: &str, value: String, same: bool| {
        if !same {
            let _ = writeln!(out, "{prefix}{name} = {value}");
        }
    };
    let b = base;
    emit(
        "send_alpha_us",
        p.send_alpha_us.to_string(),
        b.is_some_and(|b| b.send_alpha_us == p.send_alpha_us),
    );
    emit(
        "recv_alpha_us",
        p.recv_alpha_us.to_string(),
        b.is_some_and(|b| b.recv_alpha_us == p.recv_alpha_us),
    );
    emit(
        "send_beta_us_per_byte",
        p.send_beta_us_per_byte.to_string(),
        b.is_some_and(|b| b.send_beta_us_per_byte == p.send_beta_us_per_byte),
    );
    emit(
        "recv_beta_us_per_byte",
        p.recv_beta_us_per_byte.to_string(),
        b.is_some_and(|b| b.recv_beta_us_per_byte == p.recv_beta_us_per_byte),
    );
    emit(
        "copy_before_send_us_per_byte",
        p.copy_before_send_us_per_byte.to_string(),
        b.is_some_and(|b| b.copy_before_send_us_per_byte == p.copy_before_send_us_per_byte),
    );
    emit(
        "header_bytes",
        p.header_bytes.to_string(),
        b.is_some_and(|b| b.header_bytes == p.header_bytes),
    );
    emit(
        "daemon_routed",
        p.daemon_routed.to_string(),
        b.is_some_and(|b| b.daemon_routed == p.daemon_routed),
    );
    emit(
        "strided_native",
        p.strided_native.to_string(),
        b.is_some_and(|b| b.strided_native == p.strided_native),
    );
    emit(
        "bcast",
        bcast_code(p.bcast).to_string(),
        b.is_some_and(|b| b.bcast == p.bcast),
    );
    emit(
        "reduce",
        reduce_code(p.reduce).to_string(),
        b.is_some_and(|b| b.reduce == p.reduce),
    );
    emit(
        "small_combine_alpha_us",
        p.small_combine_alpha_us.to_string(),
        b.is_some_and(|b| b.small_combine_alpha_us == p.small_combine_alpha_us),
    );
    emit(
        "seg_us_per_extra_fragment",
        p.seg_us_per_extra_fragment.to_string(),
        b.is_some_and(|b| b.seg_us_per_extra_fragment == p.seg_us_per_extra_fragment),
    );
    emit(
        "strided_pack_us_per_byte",
        p.strided_pack_us_per_byte.to_string(),
        b.is_some_and(|b| b.strided_pack_us_per_byte == p.strided_pack_us_per_byte),
    );
    emit(
        "max_fragment_bytes",
        match p.max_fragment_bytes {
            None => "none".to_string(),
            Some(n) => n.to_string(),
        },
        b.is_some_and(|b| b.max_fragment_bytes == p.max_fragment_bytes),
    );
    emit(
        "wildcard_recv_extra_us",
        p.wildcard_recv_extra_us.to_string(),
        b.is_some_and(|b| b.wildcard_recv_extra_us == p.wildcard_recv_extra_us),
    );
}

/// Renders one tool spec as a `[tool ...]` section.
pub fn render_tool(spec: &ToolSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[tool {}]", spec.slug);
    let _ = writeln!(out, "name = {}", spec.name);
    match &spec.ports {
        PortPolicy::All { wan } => {
            let _ = writeln!(out, "wan_port = {wan}");
        }
        PortPolicy::Allow(slugs) => {
            let _ = writeln!(out, "ports.allow = {}", slugs.join(" "));
        }
        PortPolicy::Deny(slugs) => {
            let _ = writeln!(out, "ports.deny = {}", slugs.join(" "));
        }
    }
    let _ = writeln!(
        out,
        "programming_models = {}",
        spec.programming_models.join(", ")
    );
    for p in Primitive::all() {
        let _ = writeln!(
            out,
            "{} = {}",
            p.spec_key(),
            spec.primitives[p.spec_index()].as_deref().unwrap_or("none")
        );
    }
    let codes: Vec<&str> = spec.adl.iter().map(Support::code).collect();
    let _ = writeln!(out, "adl = {}", codes.join(" "));
    render_profile(&mut out, "profile.", &spec.profile, None);
    render_profile(
        &mut out,
        "direct.",
        &spec.direct_profile,
        Some(&spec.profile),
    );
    out
}

fn render_host(out: &mut String, host: &HostSpec) {
    let _ = writeln!(out, "host.name = {}", host.name);
    let _ = writeln!(out, "host.mflops = {}", host.mflops);
    let _ = writeln!(out, "host.mips = {}", host.mips);
    let _ = writeln!(out, "host.mem_bw_mbs = {}", host.mem_bw_mbs);
    let _ = writeln!(out, "host.sw_scale = {}", host.sw_scale);
}

fn render_link(out: &mut String, prefix: &str, link: &LinkParams) {
    let _ = writeln!(out, "{prefix}name = {}", link.name);
    let _ = writeln!(out, "{prefix}bandwidth_mbps = {}", link.bandwidth_mbps);
    let _ = writeln!(out, "{prefix}latency_us = {}", link.latency.as_micros_f64());
    let _ = writeln!(out, "{prefix}mtu = {}", link.mtu);
    let _ = writeln!(
        out,
        "{prefix}per_packet_us = {}",
        link.per_packet.as_micros_f64()
    );
    let _ = writeln!(out, "{prefix}shared_medium = {}", link.shared_medium);
}

/// Renders one platform spec: a `[platform ...]` section, plus `[group]`
/// and `[link]` sections for heterogeneous topologies. Homogeneous
/// platforms render in the legacy shorthand, byte-identical to the
/// pre-topology format.
pub fn render_platform(spec: &PlatformSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[platform {}]", spec.slug);
    let _ = writeln!(out, "name = {}", spec.name);
    let _ = writeln!(out, "max_nodes = {}", spec.max_nodes);
    let _ = writeln!(out, "wan = {}", spec.wan);
    if spec.topology.is_homogeneous_shorthand() {
        render_host(&mut out, &spec.topology.primary().host);
        render_link(&mut out, "link.", &spec.topology.primary().link);
        return out;
    }
    let names: Vec<&str> = spec
        .topology
        .groups
        .iter()
        .map(|g| g.name.as_str())
        .collect();
    let _ = writeln!(out, "topology = {}", names.join(" "));
    for g in &spec.topology.groups {
        let _ = writeln!(out);
        let _ = writeln!(out, "[group {} {}]", spec.slug, g.name);
        let _ = writeln!(out, "count = {}", g.count);
        render_host(&mut out, &g.host);
        render_link(&mut out, "link.", &g.link);
    }
    if let Some(inter) = &spec.topology.inter {
        let _ = writeln!(out);
        let _ = writeln!(out, "[link {}]", spec.slug);
        render_link(&mut out, "", inter);
    }
    out
}

/// Renders one campaign stanza. This is the canonical form: parsing a
/// stanza and rendering it back is the identity on its declaration
/// (`reps` defaults to 1 when omitted and always renders).
pub fn render_campaign(spec: &CampaignSpec) -> String {
    fn join<T: ToString>(list: &[T]) -> String {
        list.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    }
    let mut out = String::new();
    let _ = writeln!(out, "[campaign {}]", spec.slug);
    if let Some(title) = &spec.title {
        let _ = writeln!(out, "title = {title}");
    }
    let _ = writeln!(out, "kernels = {}", join(&spec.kernels));
    if !spec.tools.is_empty() {
        let _ = writeln!(out, "tools = {}", join(&spec.tools));
    }
    if !spec.platforms.is_empty() {
        let _ = writeln!(out, "platforms = {}", join(&spec.platforms));
    }
    if !spec.perturbs.is_empty() {
        let _ = writeln!(out, "perturb = {}", join(&spec.perturbs));
    }
    let _ = writeln!(out, "nprocs = {}", join(&spec.nprocs));
    let _ = writeln!(out, "sizes = {}", join(&spec.sizes));
    let _ = writeln!(out, "reps = {}", spec.reps);
    if spec.seeds != 1 {
        let _ = writeln!(out, "seeds = {}", spec.seeds);
    }
    out
}

/// Renders one perturbation stanza. Only the knobs a stanza sets render
/// (everything defaults to "off"), and parsing the result reproduces the
/// spec exactly.
pub fn render_perturb(spec: &PerturbSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[perturb {}]", spec.slug);
    if let Some(title) = &spec.title {
        let _ = writeln!(out, "title = {title}");
    }
    if spec.jitter != 0.0 {
        let _ = writeln!(out, "jitter = {}", spec.jitter);
    }
    if spec.congestion != 0.0 {
        let _ = writeln!(out, "congestion = {}", spec.congestion);
    }
    if !spec.stragglers.is_empty() {
        let toks: Vec<String> = spec
            .stragglers
            .iter()
            .map(|(g, x)| format!("{g}={x}"))
            .collect();
        let _ = writeln!(out, "straggler = {}", toks.join(" "));
    }
    if spec.loss != 0.0 {
        let _ = writeln!(out, "loss = {}", spec.loss);
    }
    if spec.loss_timeout_us != 0.0 {
        let _ = writeln!(out, "loss.timeout_us = {}", spec.loss_timeout_us);
    }
    if let Some(rank) = spec.crash_rank {
        let _ = writeln!(out, "crash.rank = {rank}");
    }
    if let Some(at) = spec.crash_at_us {
        let _ = writeln!(out, "crash.at_us = {at}");
    }
    out
}

/// Renders a whole spec file (tools first, then platforms, then
/// perturbations, then campaigns).
pub fn render_spec(file: &SpecFile) -> String {
    let mut out = String::new();
    for t in &file.tools {
        out.push_str(&render_tool(t));
        out.push('\n');
    }
    for p in &file.platforms {
        out.push_str(&render_platform(p));
        out.push('\n');
    }
    for p in &file.perturbs {
        out.push_str(&render_perturb(p));
        out.push('\n');
    }
    for c in &file.campaigns {
        out.push_str(&render_campaign(c));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_tool_text() -> String {
        "[tool toy]\n\
         name = Toy\n\
         primitive.send = toy_send\n\
         primitive.receive = toy_recv\n\
         primitive.broadcast = toy_bcast\n\
         primitive.globalsum = toy_sum\n\
         primitive.barrier = toy_sync\n\
         adl = WS WS PS PS PS PS PS PS WS\n\
         profile.send_alpha_us = 900\n\
         profile.recv_alpha_us = 1100\n\
         profile.send_beta_us_per_byte = 0.3\n\
         profile.recv_beta_us_per_byte = 0.3\n\
         profile.header_bytes = 48\n\
         profile.bcast = binomial-tree\n\
         profile.reduce = tree\n"
            .to_string()
    }

    #[test]
    fn minimal_tool_parses_with_defaults() {
        let file = parse_spec(&minimal_tool_text()).unwrap();
        assert_eq!(file.tools.len(), 1);
        let t = &file.tools[0];
        assert_eq!(t.slug, "toy");
        assert_eq!(t.ports, PortPolicy::All { wan: true });
        assert!(!t.profile.daemon_routed);
        assert_eq!(t.profile.max_fragment_bytes, None);
        assert_eq!(t.direct_profile, t.profile);
        assert!(t.supports_global_ops());
    }

    #[test]
    fn tool_round_trips_through_render() {
        let mut text = minimal_tool_text();
        text.push_str("direct.send_alpha_us = 500\n");
        let file = parse_spec(&text).unwrap();
        let rendered = render_spec(&file);
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(file, reparsed);
        assert_eq!(reparsed.tools[0].direct_profile.send_alpha_us, 500.0);
    }

    #[test]
    fn diagnostics_carry_line_numbers() {
        let mut text = minimal_tool_text();
        text.push_str("bogus_key = 1\n");
        let err = parse_spec(&text).unwrap_err();
        assert_eq!(err.line, text.lines().count());
        assert!(err.message.contains("bogus_key"), "{err}");

        let err = parse_spec("[gadget x]\n").unwrap_err();
        assert!(err.message.contains("unknown section"), "{err}");

        let err = parse_spec("name = orphan\n").unwrap_err();
        assert!(err.message.contains("before any"), "{err}");

        let err = parse_spec("[tool toy]\nname = A\nname = B\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn incomplete_tool_reports_missing_key() {
        let err = parse_spec("[tool toy]\nname = Toy\n").unwrap_err();
        assert!(err.message.contains("missing required key"), "{err}");
        assert!(err.message.contains("primitive.send"), "{err}");
    }

    #[test]
    fn inconsistent_reduce_is_rejected() {
        let text = minimal_tool_text().replace(
            "primitive.globalsum = toy_sum",
            "primitive.globalsum = none",
        );
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("profile.reduce"), "{err}");
    }

    #[test]
    fn bad_values_are_rejected_with_context() {
        for (needle, broken) in [
            ("expected a number", "profile.send_alpha_us = fast"),
            ("binomial-tree", "profile.bcast = megaphone"),
            ("tree/ring/none", "profile.reduce = telepathy"),
        ] {
            let text = minimal_tool_text()
                .lines()
                .map(|l| {
                    let key = broken.split('=').next().unwrap().trim();
                    if l.starts_with(key) {
                        broken.to_string()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let err = parse_spec(&text).unwrap_err();
            assert!(err.message.contains(needle), "{err}");
        }
    }

    #[test]
    fn corrupt_costs_are_rejected_in_both_profiles() {
        // Negative direct-route costs and NaN profile fields would be
        // silently clamped deep inside the simulator; validation must
        // refuse them up front.
        let mut text = minimal_tool_text();
        text.push_str("direct.send_alpha_us = -5000\n");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("direct.send_alpha_us"), "{err}");

        let text = minimal_tool_text().replace(
            "profile.send_beta_us_per_byte = 0.3",
            "profile.send_beta_us_per_byte = NaN",
        );
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("finite"), "{err}");
    }

    #[test]
    fn platform_section_parses_and_round_trips() {
        let text = "[platform lab]\n\
                    name = Lab Cluster\n\
                    max_nodes = 32\n\
                    host.name = Lab Node\n\
                    host.mflops = 100\n\
                    host.mips = 400\n\
                    host.mem_bw_mbs = 500\n\
                    host.sw_scale = 0.1\n\
                    link.name = LabNet\n\
                    link.bandwidth_mbps = 900\n\
                    link.latency_us = 12.5\n\
                    link.mtu = 9000\n";
        let file = parse_spec(text).unwrap();
        let p = &file.platforms[0];
        assert_eq!(p.max_nodes, 32);
        assert!(!p.wan);
        assert_eq!(p.link().latency.as_micros_f64(), 12.5);
        assert_eq!(p.link().per_packet, SimDuration::ZERO);
        assert!(p.topology.is_homogeneous_shorthand());
        assert_eq!(p.topology.primary().count, 32);
        let reparsed = parse_spec(&render_spec(&file)).unwrap();
        assert_eq!(file, reparsed);
    }

    fn mixed_platform_text() -> String {
        "[platform mixed]\n\
         name = Mixed Cluster\n\
         max_nodes = 12\n\
         wan = true\n\
         topology = fast slow\n\
         \n\
         [group mixed fast]\n\
         count = 4\n\
         host.name = Fast Node\n\
         host.mflops = 50\n\
         host.mips = 250\n\
         host.mem_bw_mbs = 200\n\
         host.sw_scale = 0.2\n\
         link.name = Rack\n\
         link.bandwidth_mbps = 80\n\
         link.latency_us = 50\n\
         link.mtu = 1460\n\
         \n\
         [group mixed slow]\n\
         count = 8\n\
         host.name = Slow Node\n\
         host.mflops = 5\n\
         host.mips = 30\n\
         host.mem_bw_mbs = 25\n\
         host.sw_scale = 1.1\n\
         link.name = Floor Ethernet\n\
         link.bandwidth_mbps = 3.2\n\
         link.latency_us = 150\n\
         link.mtu = 1460\n\
         link.shared_medium = true\n\
         \n\
         [link mixed]\n\
         name = Site WAN\n\
         bandwidth_mbps = 30\n\
         latency_us = 2000\n\
         mtu = 1460\n"
            .to_string()
    }

    #[test]
    fn heterogeneous_platform_parses_and_round_trips() {
        let file = parse_spec(&mixed_platform_text()).unwrap();
        assert_eq!(file.platforms.len(), 1);
        let p = &file.platforms[0];
        assert_eq!(p.slug, "mixed");
        assert!(p.topology.is_heterogeneous());
        assert_eq!(p.topology.hetero_slug().as_deref(), Some("4fast-8slow"));
        assert_eq!(p.topology.groups[0].name, "fast");
        assert_eq!(p.topology.groups[1].count, 8);
        assert!(p.topology.groups[1].link.shared_medium);
        assert_eq!(p.topology.inter.as_ref().unwrap().name, "Site WAN");
        assert_eq!(p.topology.host_for_rank(3).name, "Fast Node");
        assert_eq!(p.topology.host_for_rank(4).name, "Slow Node");
        assert_eq!(p.topology.link_class(0, 5).name, "Site WAN");

        let rendered = render_spec(&file);
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(file, reparsed);
    }

    #[test]
    fn group_sections_can_precede_their_platform() {
        // Section order is free: group/link stanzas attach by slug.
        let text = mixed_platform_text();
        let platform_end = text.find("\n\n").unwrap() + 2;
        let reordered = format!("{}{}", &text[platform_end..], &text[..platform_end]);
        assert_eq!(parse_spec(&reordered).unwrap(), parse_spec(&text).unwrap());
    }

    #[test]
    fn topology_diagnostics_cover_the_failure_modes() {
        // A topology naming a group with no section.
        let text = mixed_platform_text().replace("topology = fast slow", "topology = fast turbo");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("turbo"), "{err}");
        // The stray 'slow' group section is then also unreferenced, but
        // the missing group is reported first.
        assert!(err.message.contains("no [group"), "{err}");

        // A group section the topology does not name.
        let text = mixed_platform_text().replace("topology = fast slow", "topology = fast");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("not named"), "{err}");

        // A multi-group topology without an inter-group [link] section.
        let text = mixed_platform_text().replace("[link mixed]", "[link other]");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("inter-group"), "{err}");

        // Group sections without a topology key.
        let text = mixed_platform_text().replace("topology = fast slow\n", "");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("no 'topology' key"), "{err}");

        // Duplicate group sections.
        let text = mixed_platform_text().replace("[group mixed slow]", "[group mixed fast]");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");

        // Counts must sum to max_nodes.
        let text = mixed_platform_text().replace("max_nodes = 12", "max_nodes = 16");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("sum to"), "{err}");

        // Orphan group section (platform not in this file).
        let err = parse_spec(
            "[group ghost fast]\ncount = 2\nhost.name = X\nhost.mflops = 1\nhost.mips = 1\n\
             host.mem_bw_mbs = 1\nhost.sw_scale = 1\nlink.name = L\nlink.bandwidth_mbps = 1\n\
             link.latency_us = 1\nlink.mtu = 100\n",
        )
        .unwrap_err();
        assert!(err.message.contains("does not declare"), "{err}");

        // Group headers need both a platform slug and a group name.
        let err = parse_spec("[group solo]\n").unwrap_err();
        assert!(err.message.contains("group name"), "{err}");
    }

    #[test]
    fn port_lists_parse_and_round_trip() {
        let allow = minimal_tool_text()
            .replace("name = Toy", "name = Toy\nports.allow = sun-eth alpha-fddi");
        let file = parse_spec(&allow).unwrap();
        let t = &file.tools[0];
        assert_eq!(
            t.ports,
            PortPolicy::Allow(vec!["sun-eth".to_string(), "alpha-fddi".to_string()])
        );
        assert!(t.ports.supports("sun-eth", false));
        assert!(!t.ports.supports("sp1-switch", false));
        let reparsed = parse_spec(&render_spec(&file)).unwrap();
        assert_eq!(file, reparsed);

        let deny =
            minimal_tool_text().replace("name = Toy", "name = Toy\nports.deny = sun-atm-wan");
        let file = parse_spec(&deny).unwrap();
        let t = &file.tools[0];
        assert_eq!(t.ports, PortPolicy::Deny(vec!["sun-atm-wan".to_string()]));
        assert!(t.ports.supports("sun-eth", false));
        assert!(!t.ports.supports("sun-atm-wan", true));
        let reparsed = parse_spec(&render_spec(&file)).unwrap();
        assert_eq!(file, reparsed);
    }

    #[test]
    fn port_keys_are_mutually_exclusive_and_validated() {
        let both = minimal_tool_text().replace(
            "name = Toy",
            "name = Toy\nwan_port = true\nports.allow = sun-eth",
        );
        let err = parse_spec(&both).unwrap_err();
        assert!(err.message.contains("mutually exclusive"), "{err}");

        let bad = minimal_tool_text().replace("name = Toy", "name = Toy\nports.allow = Sun!");
        let err = parse_spec(&bad).unwrap_err();
        assert!(err.message.contains("lower-case"), "{err}");
    }

    fn campaign_text() -> String {
        "[campaign sweep]\n\
         title = My sweep\n\
         kernels = sendrecv-i2 broadcast ring globalsum montecarlo\n\
         tools = p4 pvm\n\
         platforms = sun-eth\n\
         nprocs = 2 4 8\n\
         sizes = 1024 16384\n\
         reps = 3\n"
            .to_string()
    }

    #[test]
    fn campaign_stanzas_parse_and_round_trip() {
        let file = parse_spec(&campaign_text()).unwrap();
        assert_eq!(file.campaigns.len(), 1);
        let c = &file.campaigns[0];
        assert_eq!(c.slug, "sweep");
        assert_eq!(c.title.as_deref(), Some("My sweep"));
        assert_eq!(c.kernels.len(), 5);
        assert_eq!(c.tools, vec!["p4".to_string(), "pvm".to_string()]);
        assert_eq!(c.platforms, vec!["sun-eth".to_string()]);
        assert_eq!(c.nprocs, vec![2, 4, 8]);
        assert_eq!(c.sizes, vec![1024, 16384]);
        assert_eq!(c.reps, 3);

        let rendered = render_spec(&file);
        assert_eq!(rendered, format!("{}\n", campaign_text()));
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(file, reparsed);
    }

    #[test]
    fn campaign_defaults_and_omissions() {
        // title/tools/platforms/reps are optional; reps defaults to 1.
        let text = "[campaign bare]\n\
                    kernels = broadcast\n\
                    nprocs = 4\n\
                    sizes = 0\n";
        let file = parse_spec(text).unwrap();
        let c = &file.campaigns[0];
        assert_eq!(c.title, None);
        assert!(c.tools.is_empty() && c.platforms.is_empty());
        assert_eq!(c.reps, 1);
        // The canonical rendering always carries reps, and re-parses to
        // the same declaration.
        let rendered = render_campaign(c);
        assert!(rendered.contains("reps = 1"), "{rendered}");
        assert_eq!(parse_spec(&rendered).unwrap(), file);
    }

    #[test]
    fn campaign_diagnostics_cover_the_failure_modes() {
        for (broken, needle) in [
            (
                "[campaign x]\nkernels = warp\nnprocs = 2\nsizes = 0\n",
                "unknown kernel 'warp'",
            ),
            (
                "[campaign x]\nkernels = ring-x0\nnprocs = 2\nsizes = 0\n",
                "unknown kernel 'ring-x0'",
            ),
            (
                "[campaign x]\nkernels = broadcast\nsizes = 0\n",
                "missing required key 'nprocs'",
            ),
            (
                "[campaign x]\nkernels = broadcast\nnprocs = 2\n",
                "missing required key 'sizes'",
            ),
            (
                "[campaign x]\nkernels = broadcast\nnprocs = 0\nsizes = 0\n",
                "'nprocs' entries must be >= 1",
            ),
            (
                "[campaign x]\nkernels = broadcast\nnprocs = 2\nsizes = 0\nreps = 0\n",
                "'reps' must be >= 1",
            ),
            (
                "[campaign x]\nkernels = broadcast\nnprocs = 2\nsizes = 0\n\
                 reps = 4294967296\n",
                "too large",
            ),
            (
                "[campaign x]\nkernels = broadcast broadcast\nnprocs = 2\nsizes = 0\n",
                "lists 'broadcast' twice",
            ),
            (
                "[campaign x]\nkernels = ring ring-x1\nnprocs = 2\nsizes = 0\n",
                "name the same kernel",
            ),
            (
                "[campaign x]\nkernels = sendrecv-i01 sendrecv-i1\nnprocs = 2\nsizes = 0\n",
                "name the same kernel",
            ),
            (
                "[campaign x]\nkernels = broadcast\ntools = P4!\nnprocs = 2\nsizes = 0\n",
                "lower-case",
            ),
            (
                "[campaign x]\nkernels = broadcast\nnprocs = 2\nsizes = 0\nbogus = 1\n",
                "unknown key 'bogus'",
            ),
            (
                "[campaign x]\nkernels = broadcast\nnprocs = 2\nsizes = 0\n\
                 [campaign x]\nkernels = broadcast\nnprocs = 2\nsizes = 0\n",
                "duplicate [campaign x]",
            ),
        ] {
            let err = parse_spec(broken).unwrap_err();
            assert!(err.message.contains(needle), "{broken:?}: {err}");
        }
    }

    fn perturb_text() -> String {
        "[perturb chaos]\n\
         title = Network chaos\n\
         jitter = 0.3\n\
         congestion = 0.5\n\
         straggler = slow=2 fast=1.5\n\
         loss = 0.02\n\
         loss.timeout_us = 5000\n\
         crash.rank = 1\n\
         crash.at_us = 2000\n"
            .to_string()
    }

    #[test]
    fn perturb_stanzas_parse_and_round_trip() {
        let file = parse_spec(&perturb_text()).unwrap();
        assert_eq!(file.perturbs.len(), 1);
        let p = &file.perturbs[0];
        assert_eq!(p.slug, "chaos");
        assert_eq!(p.title.as_deref(), Some("Network chaos"));
        assert_eq!(p.jitter, 0.3);
        assert_eq!(p.congestion, 0.5);
        assert_eq!(
            p.stragglers,
            vec![("slow".to_string(), 2.0), ("fast".to_string(), 1.5)]
        );
        assert_eq!(p.loss, 0.02);
        assert_eq!(p.loss_timeout_us, 5000.0);
        assert_eq!(p.crash_rank, Some(1));
        assert_eq!(p.crash_at_us, Some(2000.0));

        let rendered = render_spec(&file);
        assert_eq!(rendered, format!("{}\n", perturb_text()));
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(file, reparsed);
    }

    #[test]
    fn perturb_knobs_are_optional_and_render_sparsely() {
        let text = "[perturb just-jitter]\njitter = 0.1\n";
        let file = parse_spec(text).unwrap();
        let p = &file.perturbs[0];
        assert_eq!(p.jitter, 0.1);
        assert_eq!(p.loss, 0.0);
        assert!(p.stragglers.is_empty() && p.crash_rank.is_none());
        let rendered = render_perturb(p);
        assert_eq!(rendered, text);
    }

    #[test]
    fn perturb_diagnostics_cover_the_failure_modes() {
        for (broken, needle) in [
            ("[perturb none]\njitter = 0.1\n", "reserved"),
            ("[perturb x]\njitter = -0.1\n", "jitter"),
            ("[perturb x]\nloss = 1.5\n", "probability"),
            ("[perturb x]\nloss = 0.1\n", "timeout"),
            ("[perturb x]\nstraggler = slow\n", "group=factor"),
            ("[perturb x]\nstraggler = slow=0.5\n", "straggler factor"),
            ("[perturb x]\nstraggler = a=2 a=3\n", "twice"),
            ("[perturb x]\ncrash.rank = 1\n", "together"),
            ("[perturb x]\ncrash.at_us = 5\n", "together"),
            ("[perturb x]\nbogus = 1\n", "unknown key"),
            (
                "[perturb x]\njitter = 0.1\n[perturb x]\njitter = 0.2\n",
                "duplicate [perturb x]",
            ),
        ] {
            let err = parse_spec(broken).unwrap_err();
            assert!(err.message.contains(needle), "{broken:?}: {err}");
        }
    }

    #[test]
    fn campaign_perturb_and_seeds_parse_and_round_trip() {
        let text = "[campaign chaos-sweep]\n\
                    kernels = ring\n\
                    perturb = none chaos\n\
                    nprocs = 4\n\
                    sizes = 1024\n\
                    reps = 2\n\
                    seeds = 8\n";
        let file = parse_spec(text).unwrap();
        let c = &file.campaigns[0];
        assert_eq!(c.perturbs, vec!["none".to_string(), "chaos".to_string()]);
        assert_eq!(c.seeds, 8);
        let rendered = render_campaign(c);
        assert_eq!(rendered, text);
        assert_eq!(parse_spec(&rendered).unwrap(), file);

        // Campaigns without the new keys render without them — the clean
        // path is byte-identical to the pre-perturbation format.
        let plain = parse_spec(&campaign_text()).unwrap();
        assert!(plain.campaigns[0].perturbs.is_empty());
        assert_eq!(plain.campaigns[0].seeds, 1);
        let rendered = render_campaign(&plain.campaigns[0]);
        assert!(!rendered.contains("perturb") && !rendered.contains("seeds"));
    }

    #[test]
    fn campaign_seed_diagnostics() {
        let err = parse_spec("[campaign x]\nkernels = ring\nnprocs = 2\nsizes = 0\nseeds = 0\n")
            .unwrap_err();
        assert!(err.message.contains("'seeds' must be >= 1"), "{err}");

        // seeds > 1 without a perturbation is pointless and rejected.
        let err = parse_spec("[campaign x]\nkernels = ring\nnprocs = 2\nsizes = 0\nseeds = 4\n")
            .unwrap_err();
        assert!(err.message.contains("seed-independent"), "{err}");

        // perturb = none alone does not unlock the seed axis either.
        let err = parse_spec(
            "[campaign x]\nkernels = ring\nperturb = none\nnprocs = 2\nsizes = 0\nseeds = 4\n",
        )
        .unwrap_err();
        assert!(err.message.contains("seed-independent"), "{err}");

        let err = parse_spec(
            "[campaign x]\nkernels = ring\nperturb = chaos chaos\nnprocs = 2\nsizes = 0\n",
        )
        .unwrap_err();
        assert!(
            err.message.contains("'perturb' lists 'chaos' twice"),
            "{err}"
        );
    }

    #[test]
    fn campaign_kernel_vocabulary() {
        for ok in [
            "sendrecv",
            "sendrecv-i1",
            "sendrecv-i12",
            "broadcast",
            "ring",
            "ring-x4",
            "globalsum",
            "fft",
            "jpeg",
            "montecarlo",
            "sorting",
        ] {
            assert!(is_campaign_kernel(ok), "{ok}");
        }
        for bad in [
            "",
            "warp",
            "sendrecv-i",
            "sendrecv-i0",
            "sendrecv-x2",
            "ring-i2",
            "ring-x",
            "ringx2",
            "broadcast-i2",
            "montecarlo-quick",
        ] {
            assert!(!is_campaign_kernel(bad), "{bad}");
        }
    }

    #[test]
    fn support_codes_round_trip() {
        for s in [Support::Well, Support::Partial, Support::NotSupported] {
            assert_eq!(Support::from_code(s.code()), Some(s));
        }
        assert_eq!(Support::from_code("XX"), None);
        assert!(Support::Well.value() > Support::Partial.value());
        assert!(Support::Partial.value() > Support::NotSupported.value());
    }
}
