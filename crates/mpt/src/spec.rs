//! Tool & platform specs as data, and the `.spec` file format.
//!
//! A [`ToolSpec`] is the complete description of one message-passing
//! tool: display name, per-primitive native names (the paper's Table 1
//! row), the calibrated cost [`ToolProfile`] (plus its tuned direct-route
//! variant), platform-port coverage, the ADL usability ratings (§3.3.1)
//! and the supported programming models. The paper's three tools ship as
//! built-in specs ([`crate::builtin`]); new tools are plain data.
//!
//! The `.spec` file format is a deliberately simple line-oriented
//! key-value syntax (the offline build environment has no serde):
//!
//! ```text
//! # comment
//! [tool mytool]
//! name = MyTool
//! primitive.send = my_send
//! ...
//! profile.send_alpha_us = 900
//! ...
//!
//! [platform mycluster]
//! name = My Cluster
//! max_nodes = 100
//! host.mflops = 500
//! link.bandwidth_mbps = 9000
//! ...
//! ```
//!
//! [`parse_spec`] reads any number of `[tool <slug>]` / `[platform
//! <slug>]` sections; [`render_spec`] writes them back, and the two
//! round-trip exactly ([`parse_spec`] ∘ [`render_spec`] is the
//! identity on valid specs). Diagnostics carry 1-based line numbers.

use crate::profile::{BcastAlgo, ReduceAlgo, ToolProfile};
use crate::tool::Primitive;
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::net::LinkParams;
use pdceval_simnet::platform::{is_slug, PlatformSpec};
use pdceval_simnet::time::SimDuration;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A usability rating (the paper's WS/PS/NS scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Support {
    /// NS — not supported.
    NotSupported,
    /// PS — partially supported.
    Partial,
    /// WS — well supported.
    Well,
}

impl Support {
    /// The paper's two-letter code.
    pub fn code(&self) -> &'static str {
        match self {
            Support::Well => "WS",
            Support::Partial => "PS",
            Support::NotSupported => "NS",
        }
    }

    /// Parses the paper's two-letter code.
    pub fn from_code(code: &str) -> Option<Support> {
        match code {
            "WS" => Some(Support::Well),
            "PS" => Some(Support::Partial),
            "NS" => Some(Support::NotSupported),
            _ => None,
        }
    }

    /// Numeric value for weighted scoring (WS=2, PS=1, NS=0).
    pub fn value(&self) -> f64 {
        match self {
            Support::Well => 2.0,
            Support::Partial => 1.0,
            Support::NotSupported => 0.0,
        }
    }
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Number of ADL criteria rated per tool (see `pdceval_core::adl`).
pub const ADL_CRITERIA: usize = 9;

/// The complete data model of one message-passing tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolSpec {
    /// Display name as used in the paper, e.g. `"p4"`.
    pub name: String,
    /// Stable lower-case slug used in scenario/store keys, e.g. `"p4"`.
    pub slug: String,
    /// Native primitive names in [`Primitive::all`] order; `None` is the
    /// paper's "Not Available".
    pub primitives: [Option<String>; 5],
    /// The calibrated default-configuration cost model.
    pub profile: ToolProfile,
    /// The cost model after `advise_direct_route` (tuned task-to-task
    /// routing); equals `profile` for tools without such a mode.
    pub direct_profile: ToolProfile,
    /// Whether the tool had ports for WAN platforms (Express did not).
    pub wan_port: bool,
    /// ADL usability ratings in `Criterion` order (paper §3.3.1).
    pub adl: [Support; ADL_CRITERIA],
    /// Supported programming models (paper §2.3).
    pub programming_models: Vec<String>,
}

impl ToolSpec {
    /// Whether the tool implements a built-in global reduction.
    pub fn supports_global_ops(&self) -> bool {
        self.profile.reduce.is_some()
    }

    /// Checks the spec for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("tool name must not be empty".to_string());
        }
        if !is_slug(&self.slug) {
            return Err(format!(
                "tool slug '{}' must be non-empty lower-case [a-z0-9-]",
                self.slug
            ));
        }
        let gs = Primitive::GlobalSum.spec_index();
        if self.primitives[gs].is_some() != self.profile.reduce.is_some() {
            return Err(format!(
                "tool '{}': primitive.globalsum and profile.reduce must agree \
                 (both present or both 'none')",
                self.slug
            ));
        }
        if self.direct_profile.reduce.is_some() != self.profile.reduce.is_some() {
            return Err(format!(
                "tool '{}': direct profile cannot change reduction support",
                self.slug
            ));
        }
        self.check_profile("profile", &self.profile)?;
        self.check_profile("direct", &self.direct_profile)?;
        Ok(())
    }

    /// Rejects negative, NaN or (except for the small-combine fast-path
    /// threshold, where infinity means "disabled") non-finite costs —
    /// they would otherwise be silently clamped to zero deep inside the
    /// simulator and corrupt results without a diagnostic.
    fn check_profile(&self, prefix: &str, p: &ToolProfile) -> Result<(), String> {
        for (field, v) in [
            ("send_alpha_us", p.send_alpha_us),
            ("recv_alpha_us", p.recv_alpha_us),
            ("send_beta_us_per_byte", p.send_beta_us_per_byte),
            ("recv_beta_us_per_byte", p.recv_beta_us_per_byte),
            (
                "copy_before_send_us_per_byte",
                p.copy_before_send_us_per_byte,
            ),
            ("seg_us_per_extra_fragment", p.seg_us_per_extra_fragment),
            ("strided_pack_us_per_byte", p.strided_pack_us_per_byte),
            ("wildcard_recv_extra_us", p.wildcard_recv_extra_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "tool '{}': {prefix}.{field} must be finite and >= 0",
                    self.slug
                ));
            }
        }
        if p.small_combine_alpha_us.is_nan() || p.small_combine_alpha_us < 0.0 {
            return Err(format!(
                "tool '{}': {prefix}.small_combine_alpha_us must be >= 0 (inf = disabled)",
                self.slug
            ));
        }
        if p.max_fragment_bytes == Some(0) {
            return Err(format!(
                "tool '{}': {prefix}.max_fragment_bytes must be > 0 or 'none'",
                self.slug
            ));
        }
        Ok(())
    }
}

impl Primitive {
    /// This primitive's index in a [`ToolSpec::primitives`] array and its
    /// `primitive.<key>` spec-file key.
    pub fn spec_index(self) -> usize {
        match self {
            Primitive::Send => 0,
            Primitive::Receive => 1,
            Primitive::Broadcast => 2,
            Primitive::GlobalSum => 3,
            Primitive::Barrier => 4,
        }
    }

    fn spec_key(self) -> &'static str {
        match self {
            Primitive::Send => "primitive.send",
            Primitive::Receive => "primitive.receive",
            Primitive::Broadcast => "primitive.broadcast",
            Primitive::GlobalSum => "primitive.globalsum",
            Primitive::Barrier => "primitive.barrier",
        }
    }
}

/// Everything one `.spec` file declares.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecFile {
    /// Declared tools, in file order.
    pub tools: Vec<ToolSpec>,
    /// Declared platforms, in file order.
    pub platforms: Vec<PlatformSpec>,
}

/// A spec-file diagnostic: what went wrong, and on which 1-based line
/// (0 = end of file / section level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number, or 0 when the problem is not tied to a line.
    pub line: usize,
    /// The problem.
    pub message: String,
}

impl SpecError {
    fn at(line: usize, message: impl Into<String>) -> SpecError {
        SpecError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// One `key = value` entry with its source line.
type Entries = Vec<(usize, String, String)>;

struct Section {
    kind: SectionKind,
    slug: String,
    header_line: usize,
    entries: Entries,
}

#[derive(PartialEq, Clone, Copy)]
enum SectionKind {
    Tool,
    Platform,
}

/// Parses a `.spec` file.
///
/// # Errors
///
/// Returns the first diagnostic encountered, with its line number.
pub fn parse_spec(text: &str) -> Result<SpecFile, SpecError> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            let Some(inner) = inner.strip_suffix(']') else {
                return Err(SpecError::at(lineno, "unterminated section header"));
            };
            let mut parts = inner.split_whitespace();
            let kind = match parts.next() {
                Some("tool") => SectionKind::Tool,
                Some("platform") => SectionKind::Platform,
                other => {
                    return Err(SpecError::at(
                        lineno,
                        format!(
                            "unknown section '{}' (expected 'tool' or 'platform')",
                            other.unwrap_or("")
                        ),
                    ))
                }
            };
            let Some(slug) = parts.next() else {
                return Err(SpecError::at(
                    lineno,
                    "section header needs a slug, e.g. [tool mytool]",
                ));
            };
            if parts.next().is_some() {
                return Err(SpecError::at(lineno, "trailing tokens in section header"));
            }
            if !is_slug(slug) {
                return Err(SpecError::at(
                    lineno,
                    format!("slug '{slug}' must be lower-case [a-z0-9-]"),
                ));
            }
            sections.push(Section {
                kind,
                slug: slug.to_string(),
                header_line: lineno,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SpecError::at(
                lineno,
                "expected 'key = value' (or a [tool]/[platform] header)",
            ));
        };
        let Some(section) = sections.last_mut() else {
            return Err(SpecError::at(
                lineno,
                "entry before any [tool]/[platform] section header",
            ));
        };
        let key = key.trim().to_string();
        if section.entries.iter().any(|(_, k, _)| *k == key) {
            return Err(SpecError::at(lineno, format!("duplicate key '{key}'")));
        }
        section
            .entries
            .push((lineno, key, value.trim().to_string()));
    }

    let mut file = SpecFile::default();
    for s in sections {
        match s.kind {
            SectionKind::Tool => file.tools.push(build_tool(&s)?),
            SectionKind::Platform => file.platforms.push(build_platform(&s)?),
        }
    }
    Ok(file)
}

/// Key-map view of a section with taken-key tracking, so leftovers can be
/// reported as unknown keys.
struct Fields<'a> {
    slug: &'a str,
    header_line: usize,
    map: BTreeMap<&'a str, (usize, &'a str)>,
}

impl<'a> Fields<'a> {
    fn new(s: &'a Section) -> Fields<'a> {
        Fields {
            slug: &s.slug,
            header_line: s.header_line,
            map: s
                .entries
                .iter()
                .map(|(line, k, v)| (k.as_str(), (*line, v.as_str())))
                .collect(),
        }
    }

    fn take(&mut self, key: &str) -> Option<(usize, &'a str)> {
        self.map.remove(key)
    }

    fn required(&mut self, key: &str) -> Result<(usize, &'a str), SpecError> {
        self.take(key).ok_or_else(|| {
            SpecError::at(
                self.header_line,
                format!("section '{}' is missing required key '{key}'", self.slug),
            )
        })
    }

    fn finish(self) -> Result<(), SpecError> {
        if let Some((key, (line, _))) = self.map.into_iter().next() {
            return Err(SpecError::at(line, format!("unknown key '{key}'")));
        }
        Ok(())
    }
}

fn parse_f64(line: usize, key: &str, v: &str) -> Result<f64, SpecError> {
    v.parse::<f64>()
        .map_err(|_| SpecError::at(line, format!("'{key}': expected a number, got '{v}'")))
}

fn parse_bool(line: usize, key: &str, v: &str) -> Result<bool, SpecError> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(SpecError::at(
            line,
            format!("'{key}': expected true/false, got '{v}'"),
        )),
    }
}

fn parse_usize(line: usize, key: &str, v: &str) -> Result<usize, SpecError> {
    v.parse::<usize>()
        .map_err(|_| SpecError::at(line, format!("'{key}': expected an integer, got '{v}'")))
}

fn opt_name(v: &str) -> Option<String> {
    (v != "none").then(|| v.to_string())
}

const BCAST_CODES: [(&str, BcastAlgo); 3] = [
    ("binomial-tree", BcastAlgo::BinomialTree),
    ("sequential-root", BcastAlgo::SequentialRoot),
    ("sequential-ack", BcastAlgo::SequentialAck),
];

const REDUCE_CODES: [(&str, ReduceAlgo); 2] =
    [("tree", ReduceAlgo::Tree), ("ring", ReduceAlgo::Ring)];

fn bcast_code(b: BcastAlgo) -> &'static str {
    BCAST_CODES
        .iter()
        .find(|(_, a)| *a == b)
        .map(|(c, _)| *c)
        .expect("every bcast algo has a code")
}

fn reduce_code(r: Option<ReduceAlgo>) -> &'static str {
    match r {
        None => "none",
        Some(r) => REDUCE_CODES
            .iter()
            .find(|(_, a)| *a == r)
            .map(|(c, _)| *c)
            .expect("every reduce algo has a code"),
    }
}

/// The `profile.`-prefixed fields, shared by the default and
/// direct-route profiles (`direct.` overrides individual fields).
fn apply_profile_field(
    p: &mut ToolProfile,
    line: usize,
    key: &str,
    field: &str,
    v: &str,
) -> Result<bool, SpecError> {
    match field {
        "send_alpha_us" => p.send_alpha_us = parse_f64(line, key, v)?,
        "recv_alpha_us" => p.recv_alpha_us = parse_f64(line, key, v)?,
        "send_beta_us_per_byte" => p.send_beta_us_per_byte = parse_f64(line, key, v)?,
        "recv_beta_us_per_byte" => p.recv_beta_us_per_byte = parse_f64(line, key, v)?,
        "copy_before_send_us_per_byte" => p.copy_before_send_us_per_byte = parse_f64(line, key, v)?,
        "header_bytes" => p.header_bytes = parse_usize(line, key, v)? as u64,
        "daemon_routed" => p.daemon_routed = parse_bool(line, key, v)?,
        "strided_native" => p.strided_native = parse_bool(line, key, v)?,
        "small_combine_alpha_us" => p.small_combine_alpha_us = parse_f64(line, key, v)?,
        "seg_us_per_extra_fragment" => p.seg_us_per_extra_fragment = parse_f64(line, key, v)?,
        "strided_pack_us_per_byte" => p.strided_pack_us_per_byte = parse_f64(line, key, v)?,
        "wildcard_recv_extra_us" => p.wildcard_recv_extra_us = parse_f64(line, key, v)?,
        "max_fragment_bytes" => {
            p.max_fragment_bytes = if v == "none" {
                None
            } else {
                Some(parse_usize(line, key, v)?)
            }
        }
        "bcast" => {
            p.bcast = BCAST_CODES
                .iter()
                .find(|(c, _)| *c == v)
                .map(|(_, a)| *a)
                .ok_or_else(|| {
                    SpecError::at(
                        line,
                        format!(
                            "'{key}': expected one of binomial-tree/sequential-root/\
                             sequential-ack, got '{v}'"
                        ),
                    )
                })?
        }
        "reduce" => {
            p.reduce = if v == "none" {
                None
            } else {
                Some(
                    REDUCE_CODES
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, a)| *a)
                        .ok_or_else(|| {
                            SpecError::at(
                                line,
                                format!("'{key}': expected tree/ring/none, got '{v}'"),
                            )
                        })?,
                )
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn build_tool(s: &Section) -> Result<ToolSpec, SpecError> {
    let mut f = Fields::new(s);
    let name = f.required("name")?.1.to_string();

    let mut primitives: [Option<String>; 5] = Default::default();
    for p in Primitive::all() {
        let (_, v) = f.required(p.spec_key())?;
        primitives[p.spec_index()] = opt_name(v);
    }

    let (adl_line, adl_raw) = f.required("adl")?;
    let codes: Vec<&str> = adl_raw.split_whitespace().collect();
    if codes.len() != ADL_CRITERIA {
        return Err(SpecError::at(
            adl_line,
            format!(
                "'adl': expected {ADL_CRITERIA} WS/PS/NS codes, got {}",
                codes.len()
            ),
        ));
    }
    let mut adl = [Support::NotSupported; ADL_CRITERIA];
    for (i, code) in codes.iter().enumerate() {
        adl[i] = Support::from_code(code).ok_or_else(|| {
            SpecError::at(adl_line, format!("'adl': bad code '{code}' (WS/PS/NS)"))
        })?;
    }

    let wan_port = match f.take("wan_port") {
        Some((line, v)) => parse_bool(line, "wan_port", v)?,
        None => true,
    };
    let programming_models = match f.take("programming_models") {
        Some((_, v)) => v.split(',').map(|m| m.trim().to_string()).collect(),
        None => vec!["Host-Node".to_string(), "SPMD".to_string()],
    };

    // Profile: mandatory core fields, optional extras defaulting to the
    // "thin tool" behaviour (no copies, no daemon, no fast paths).
    let mut profile = ToolProfile {
        send_alpha_us: 0.0,
        recv_alpha_us: 0.0,
        send_beta_us_per_byte: 0.0,
        recv_beta_us_per_byte: 0.0,
        copy_before_send_us_per_byte: 0.0,
        header_bytes: 0,
        daemon_routed: false,
        strided_native: false,
        bcast: BcastAlgo::BinomialTree,
        reduce: None,
        small_combine_alpha_us: f64::INFINITY,
        seg_us_per_extra_fragment: 0.0,
        strided_pack_us_per_byte: 0.0,
        max_fragment_bytes: None,
        wildcard_recv_extra_us: 0.0,
    };
    for field in [
        "send_alpha_us",
        "recv_alpha_us",
        "send_beta_us_per_byte",
        "recv_beta_us_per_byte",
        "header_bytes",
        "bcast",
        "reduce",
    ] {
        let key = format!("profile.{field}");
        let (line, v) = f.required(&key)?;
        apply_profile_field(&mut profile, line, &key, field, v)?;
    }
    for field in [
        "copy_before_send_us_per_byte",
        "daemon_routed",
        "strided_native",
        "small_combine_alpha_us",
        "seg_us_per_extra_fragment",
        "strided_pack_us_per_byte",
        "wildcard_recv_extra_us",
        "max_fragment_bytes",
    ] {
        let key = format!("profile.{field}");
        if let Some((line, v)) = f.take(&key) {
            apply_profile_field(&mut profile, line, &key, field, v)?;
        }
    }

    // Direct-route profile: starts as a copy, individual `direct.` keys
    // override.
    let mut direct_profile = profile.clone();
    let direct_keys: Vec<String> = f
        .map
        .keys()
        .filter(|k| k.starts_with("direct."))
        .map(|k| k.to_string())
        .collect();
    for key in direct_keys {
        let (line, v) = f.take(&key).expect("key just listed");
        let field = key.strip_prefix("direct.").expect("filtered on prefix");
        if !apply_profile_field(&mut direct_profile, line, &key, field, v)? {
            return Err(SpecError::at(line, format!("unknown key '{key}'")));
        }
    }

    let header_line = f.header_line;
    f.finish()?;
    let spec = ToolSpec {
        name,
        slug: s.slug.clone(),
        primitives,
        profile,
        direct_profile,
        wan_port,
        adl,
        programming_models,
    };
    spec.validate()
        .map_err(|msg| SpecError::at(header_line, msg))?;
    Ok(spec)
}

fn build_platform(s: &Section) -> Result<PlatformSpec, SpecError> {
    let mut f = Fields::new(s);
    let name = f.required("name")?.1.to_string();
    let (line, v) = f.required("max_nodes")?;
    let max_nodes = parse_usize(line, "max_nodes", v)?;
    let wan = match f.take("wan") {
        Some((line, v)) => parse_bool(line, "wan", v)?,
        None => false,
    };

    let host_name = f.required("host.name")?.1.to_string();
    let mut host_nums = [0.0f64; 4];
    for (i, field) in ["mflops", "mips", "mem_bw_mbs", "sw_scale"]
        .into_iter()
        .enumerate()
    {
        let key = format!("host.{field}");
        let (line, v) = f.required(&key)?;
        host_nums[i] = parse_f64(line, &key, v)?;
        if !host_nums[i].is_finite() || host_nums[i] <= 0.0 {
            return Err(SpecError::at(line, format!("'{key}' must be positive")));
        }
    }
    let host = HostSpec {
        name: host_name,
        mflops: host_nums[0],
        mips: host_nums[1],
        mem_bw_mbs: host_nums[2],
        sw_scale: host_nums[3],
    };

    let link_name = f.required("link.name")?.1.to_string();
    let (line, v) = f.required("link.bandwidth_mbps")?;
    let bandwidth_mbps = parse_f64(line, "link.bandwidth_mbps", v)?;
    let (line, v) = f.required("link.latency_us")?;
    let latency = SimDuration::from_micros_f64(parse_f64(line, "link.latency_us", v)?);
    let (line, v) = f.required("link.mtu")?;
    let mtu = parse_usize(line, "link.mtu", v)?;
    let per_packet = match f.take("link.per_packet_us") {
        Some((line, v)) => SimDuration::from_micros_f64(parse_f64(line, "link.per_packet_us", v)?),
        None => SimDuration::ZERO,
    };
    let shared_medium = match f.take("link.shared_medium") {
        Some((line, v)) => parse_bool(line, "link.shared_medium", v)?,
        None => false,
    };

    let header_line = f.header_line;
    f.finish()?;
    let spec = PlatformSpec {
        name,
        slug: s.slug.clone(),
        host,
        link: LinkParams {
            name: link_name,
            bandwidth_mbps,
            latency,
            mtu,
            per_packet,
            shared_medium,
        },
        max_nodes,
        wan,
    };
    spec.validate()
        .map_err(|msg| SpecError::at(header_line, msg))?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render_profile(out: &mut String, prefix: &str, p: &ToolProfile, base: Option<&ToolProfile>) {
    // With a base profile, emit only the differing fields (the `direct.`
    // override form); otherwise emit everything.
    let mut emit = |name: &str, value: String, same: bool| {
        if !same {
            let _ = writeln!(out, "{prefix}{name} = {value}");
        }
    };
    let b = base;
    emit(
        "send_alpha_us",
        p.send_alpha_us.to_string(),
        b.is_some_and(|b| b.send_alpha_us == p.send_alpha_us),
    );
    emit(
        "recv_alpha_us",
        p.recv_alpha_us.to_string(),
        b.is_some_and(|b| b.recv_alpha_us == p.recv_alpha_us),
    );
    emit(
        "send_beta_us_per_byte",
        p.send_beta_us_per_byte.to_string(),
        b.is_some_and(|b| b.send_beta_us_per_byte == p.send_beta_us_per_byte),
    );
    emit(
        "recv_beta_us_per_byte",
        p.recv_beta_us_per_byte.to_string(),
        b.is_some_and(|b| b.recv_beta_us_per_byte == p.recv_beta_us_per_byte),
    );
    emit(
        "copy_before_send_us_per_byte",
        p.copy_before_send_us_per_byte.to_string(),
        b.is_some_and(|b| b.copy_before_send_us_per_byte == p.copy_before_send_us_per_byte),
    );
    emit(
        "header_bytes",
        p.header_bytes.to_string(),
        b.is_some_and(|b| b.header_bytes == p.header_bytes),
    );
    emit(
        "daemon_routed",
        p.daemon_routed.to_string(),
        b.is_some_and(|b| b.daemon_routed == p.daemon_routed),
    );
    emit(
        "strided_native",
        p.strided_native.to_string(),
        b.is_some_and(|b| b.strided_native == p.strided_native),
    );
    emit(
        "bcast",
        bcast_code(p.bcast).to_string(),
        b.is_some_and(|b| b.bcast == p.bcast),
    );
    emit(
        "reduce",
        reduce_code(p.reduce).to_string(),
        b.is_some_and(|b| b.reduce == p.reduce),
    );
    emit(
        "small_combine_alpha_us",
        p.small_combine_alpha_us.to_string(),
        b.is_some_and(|b| b.small_combine_alpha_us == p.small_combine_alpha_us),
    );
    emit(
        "seg_us_per_extra_fragment",
        p.seg_us_per_extra_fragment.to_string(),
        b.is_some_and(|b| b.seg_us_per_extra_fragment == p.seg_us_per_extra_fragment),
    );
    emit(
        "strided_pack_us_per_byte",
        p.strided_pack_us_per_byte.to_string(),
        b.is_some_and(|b| b.strided_pack_us_per_byte == p.strided_pack_us_per_byte),
    );
    emit(
        "max_fragment_bytes",
        match p.max_fragment_bytes {
            None => "none".to_string(),
            Some(n) => n.to_string(),
        },
        b.is_some_and(|b| b.max_fragment_bytes == p.max_fragment_bytes),
    );
    emit(
        "wildcard_recv_extra_us",
        p.wildcard_recv_extra_us.to_string(),
        b.is_some_and(|b| b.wildcard_recv_extra_us == p.wildcard_recv_extra_us),
    );
}

/// Renders one tool spec as a `[tool ...]` section.
pub fn render_tool(spec: &ToolSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[tool {}]", spec.slug);
    let _ = writeln!(out, "name = {}", spec.name);
    let _ = writeln!(out, "wan_port = {}", spec.wan_port);
    let _ = writeln!(
        out,
        "programming_models = {}",
        spec.programming_models.join(", ")
    );
    for p in Primitive::all() {
        let _ = writeln!(
            out,
            "{} = {}",
            p.spec_key(),
            spec.primitives[p.spec_index()].as_deref().unwrap_or("none")
        );
    }
    let codes: Vec<&str> = spec.adl.iter().map(Support::code).collect();
    let _ = writeln!(out, "adl = {}", codes.join(" "));
    render_profile(&mut out, "profile.", &spec.profile, None);
    render_profile(
        &mut out,
        "direct.",
        &spec.direct_profile,
        Some(&spec.profile),
    );
    out
}

/// Renders one platform spec as a `[platform ...]` section.
pub fn render_platform(spec: &PlatformSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "[platform {}]", spec.slug);
    let _ = writeln!(out, "name = {}", spec.name);
    let _ = writeln!(out, "max_nodes = {}", spec.max_nodes);
    let _ = writeln!(out, "wan = {}", spec.wan);
    let _ = writeln!(out, "host.name = {}", spec.host.name);
    let _ = writeln!(out, "host.mflops = {}", spec.host.mflops);
    let _ = writeln!(out, "host.mips = {}", spec.host.mips);
    let _ = writeln!(out, "host.mem_bw_mbs = {}", spec.host.mem_bw_mbs);
    let _ = writeln!(out, "host.sw_scale = {}", spec.host.sw_scale);
    let _ = writeln!(out, "link.name = {}", spec.link.name);
    let _ = writeln!(out, "link.bandwidth_mbps = {}", spec.link.bandwidth_mbps);
    let _ = writeln!(
        out,
        "link.latency_us = {}",
        spec.link.latency.as_micros_f64()
    );
    let _ = writeln!(out, "link.mtu = {}", spec.link.mtu);
    let _ = writeln!(
        out,
        "link.per_packet_us = {}",
        spec.link.per_packet.as_micros_f64()
    );
    let _ = writeln!(out, "link.shared_medium = {}", spec.link.shared_medium);
    out
}

/// Renders a whole spec file (tools first, then platforms).
pub fn render_spec(file: &SpecFile) -> String {
    let mut out = String::new();
    for t in &file.tools {
        out.push_str(&render_tool(t));
        out.push('\n');
    }
    for p in &file.platforms {
        out.push_str(&render_platform(p));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_tool_text() -> String {
        "[tool toy]\n\
         name = Toy\n\
         primitive.send = toy_send\n\
         primitive.receive = toy_recv\n\
         primitive.broadcast = toy_bcast\n\
         primitive.globalsum = toy_sum\n\
         primitive.barrier = toy_sync\n\
         adl = WS WS PS PS PS PS PS PS WS\n\
         profile.send_alpha_us = 900\n\
         profile.recv_alpha_us = 1100\n\
         profile.send_beta_us_per_byte = 0.3\n\
         profile.recv_beta_us_per_byte = 0.3\n\
         profile.header_bytes = 48\n\
         profile.bcast = binomial-tree\n\
         profile.reduce = tree\n"
            .to_string()
    }

    #[test]
    fn minimal_tool_parses_with_defaults() {
        let file = parse_spec(&minimal_tool_text()).unwrap();
        assert_eq!(file.tools.len(), 1);
        let t = &file.tools[0];
        assert_eq!(t.slug, "toy");
        assert!(t.wan_port);
        assert!(!t.profile.daemon_routed);
        assert_eq!(t.profile.max_fragment_bytes, None);
        assert_eq!(t.direct_profile, t.profile);
        assert!(t.supports_global_ops());
    }

    #[test]
    fn tool_round_trips_through_render() {
        let mut text = minimal_tool_text();
        text.push_str("direct.send_alpha_us = 500\n");
        let file = parse_spec(&text).unwrap();
        let rendered = render_spec(&file);
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(file, reparsed);
        assert_eq!(reparsed.tools[0].direct_profile.send_alpha_us, 500.0);
    }

    #[test]
    fn diagnostics_carry_line_numbers() {
        let mut text = minimal_tool_text();
        text.push_str("bogus_key = 1\n");
        let err = parse_spec(&text).unwrap_err();
        assert_eq!(err.line, text.lines().count());
        assert!(err.message.contains("bogus_key"), "{err}");

        let err = parse_spec("[gadget x]\n").unwrap_err();
        assert!(err.message.contains("unknown section"), "{err}");

        let err = parse_spec("name = orphan\n").unwrap_err();
        assert!(err.message.contains("before any"), "{err}");

        let err = parse_spec("[tool toy]\nname = A\nname = B\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn incomplete_tool_reports_missing_key() {
        let err = parse_spec("[tool toy]\nname = Toy\n").unwrap_err();
        assert!(err.message.contains("missing required key"), "{err}");
        assert!(err.message.contains("primitive.send"), "{err}");
    }

    #[test]
    fn inconsistent_reduce_is_rejected() {
        let text = minimal_tool_text().replace(
            "primitive.globalsum = toy_sum",
            "primitive.globalsum = none",
        );
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("profile.reduce"), "{err}");
    }

    #[test]
    fn bad_values_are_rejected_with_context() {
        for (needle, broken) in [
            ("expected a number", "profile.send_alpha_us = fast"),
            ("binomial-tree", "profile.bcast = megaphone"),
            ("tree/ring/none", "profile.reduce = telepathy"),
        ] {
            let text = minimal_tool_text()
                .lines()
                .map(|l| {
                    let key = broken.split('=').next().unwrap().trim();
                    if l.starts_with(key) {
                        broken.to_string()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let err = parse_spec(&text).unwrap_err();
            assert!(err.message.contains(needle), "{err}");
        }
    }

    #[test]
    fn corrupt_costs_are_rejected_in_both_profiles() {
        // Negative direct-route costs and NaN profile fields would be
        // silently clamped deep inside the simulator; validation must
        // refuse them up front.
        let mut text = minimal_tool_text();
        text.push_str("direct.send_alpha_us = -5000\n");
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("direct.send_alpha_us"), "{err}");

        let text = minimal_tool_text().replace(
            "profile.send_beta_us_per_byte = 0.3",
            "profile.send_beta_us_per_byte = NaN",
        );
        let err = parse_spec(&text).unwrap_err();
        assert!(err.message.contains("finite"), "{err}");
    }

    #[test]
    fn platform_section_parses_and_round_trips() {
        let text = "[platform lab]\n\
                    name = Lab Cluster\n\
                    max_nodes = 32\n\
                    host.name = Lab Node\n\
                    host.mflops = 100\n\
                    host.mips = 400\n\
                    host.mem_bw_mbs = 500\n\
                    host.sw_scale = 0.1\n\
                    link.name = LabNet\n\
                    link.bandwidth_mbps = 900\n\
                    link.latency_us = 12.5\n\
                    link.mtu = 9000\n";
        let file = parse_spec(text).unwrap();
        let p = &file.platforms[0];
        assert_eq!(p.max_nodes, 32);
        assert!(!p.wan);
        assert_eq!(p.link.latency.as_micros_f64(), 12.5);
        assert_eq!(p.link.per_packet, SimDuration::ZERO);
        let reparsed = parse_spec(&render_spec(&file)).unwrap();
        assert_eq!(file, reparsed);
    }

    #[test]
    fn support_codes_round_trip() {
        for s in [Support::Well, Support::Partial, Support::NotSupported] {
            assert_eq!(Support::from_code(s.code()), Some(s));
        }
        assert_eq!(Support::from_code("XX"), None);
        assert!(Support::Well.value() > Support::Partial.value());
        assert!(Support::Partial.value() > Support::NotSupported.value());
    }
}
