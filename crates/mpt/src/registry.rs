//! The process-global tool registry and the combined [`ModelRegistry`].
//!
//! Tools are *data* ([`ToolSpec`]), addressed by cheap copyable
//! [`ToolId`] handles, exactly mirroring the platform side in
//! [`pdceval_simnet::registry`]. The [`ModelRegistry`] facade exposes
//! both tables through one handle — register a tool and a platform from
//! a spec file, get back ids, and every layer (simnet fabric, mpt
//! runtime, core sweeps, campaign grids, the `pdceval` CLI) runs them
//! with zero code changes.

use crate::builtin::builtin_tools;
use crate::spec::{parse_spec, CampaignSpec, SpecFile, ToolSpec};
use crate::tool::ToolId;
use pdceval_simnet::perturb as perturb_registry;
use pdceval_simnet::perturb::{PerturbId, PerturbSpec};
use pdceval_simnet::platform::{PlatformId, PlatformSpec};
use pdceval_simnet::registry as platform_registry;
use std::sync::{Arc, OnceLock, RwLock};

static TOOLS: OnceLock<RwLock<Vec<Arc<ToolSpec>>>> = OnceLock::new();

fn table() -> &'static RwLock<Vec<Arc<ToolSpec>>> {
    TOOLS.get_or_init(|| RwLock::new(builtin_tools().into_iter().map(Arc::new).collect()))
}

/// Campaign stanzas loaded from spec files. There are no built-in
/// entries: the paper's campaigns are code (`pdceval_campaign`), this
/// table only carries user declarations so `snapshot` can serialize
/// them back verbatim.
static CAMPAIGNS: OnceLock<RwLock<Vec<Arc<CampaignSpec>>>> = OnceLock::new();

fn campaign_table() -> &'static RwLock<Vec<Arc<CampaignSpec>>> {
    CAMPAIGNS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Registers a campaign spec.
///
/// Registering a spec whose slug is already taken returns `Ok` if the
/// specs are identical (idempotent re-registration) and an error if
/// they differ.
///
/// # Errors
///
/// Returns a description of the conflict or validation failure.
pub fn register_campaign(spec: CampaignSpec) -> Result<Arc<CampaignSpec>, String> {
    spec.validate()?;
    let mut t = campaign_table()
        .write()
        .expect("campaign registry poisoned");
    if let Some(existing) = t.iter().find(|c| c.slug == spec.slug) {
        return if **existing == spec {
            Ok(existing.clone())
        } else {
            Err(format!(
                "campaign slug '{}' is already registered with a different spec",
                spec.slug
            ))
        };
    }
    let spec = Arc::new(spec);
    t.push(spec.clone());
    Ok(spec)
}

/// All registered campaign stanzas, in registration order.
pub fn all_campaigns() -> Vec<Arc<CampaignSpec>> {
    campaign_table()
        .read()
        .expect("campaign registry poisoned")
        .clone()
}

/// Looks a campaign stanza up by its slug.
pub fn find_campaign(slug: &str) -> Option<Arc<CampaignSpec>> {
    campaign_table()
        .read()
        .expect("campaign registry poisoned")
        .iter()
        .find(|c| c.slug == slug)
        .cloned()
}

/// Resolves a handle to its spec.
///
/// # Panics
///
/// Panics if the handle was not issued by this registry (impossible for
/// handles obtained through [`register_tool`] or the built-in constants).
pub fn tool_spec(id: ToolId) -> Arc<ToolSpec> {
    table()
        .read()
        .expect("tool registry poisoned")
        .get(id.index())
        .cloned()
        .unwrap_or_else(|| panic!("ToolId({}) is not registered", id.index()))
}

/// Registers a tool spec and returns its handle.
///
/// Registering a spec whose slug is already taken returns the existing
/// handle if the specs are identical (idempotent re-registration) and an
/// error if they differ.
///
/// # Errors
///
/// Returns a description of the conflict or validation failure.
pub fn register_tool(spec: ToolSpec) -> Result<ToolId, String> {
    spec.validate()?;
    let mut t = table().write().expect("tool registry poisoned");
    if let Some((i, existing)) = t.iter().enumerate().find(|(_, s)| s.slug == spec.slug) {
        return if **existing == spec {
            Ok(ToolId::from_index(i))
        } else {
            Err(format!(
                "tool slug '{}' is already registered with a different spec",
                spec.slug
            ))
        };
    }
    t.push(Arc::new(spec));
    Ok(ToolId::from_index(t.len() - 1))
}

/// All registered tools, in registration order (built-ins first).
pub fn all_tools() -> Vec<ToolId> {
    let n = table().read().expect("tool registry poisoned").len();
    (0..n).map(ToolId::from_index).collect()
}

/// Looks a tool up by its stable slug.
pub fn find_tool(slug: &str) -> Option<ToolId> {
    table()
        .read()
        .expect("tool registry poisoned")
        .iter()
        .position(|t| t.slug == slug)
        .map(ToolId::from_index)
}

/// Handles returned by loading one spec file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadedSpecs {
    /// Tools the file declared, in file order.
    pub tools: Vec<ToolId>,
    /// Platforms the file declared, in file order.
    pub platforms: Vec<PlatformId>,
    /// Campaign stanzas the file declared, in file order.
    pub campaigns: Vec<Arc<CampaignSpec>>,
    /// Perturbation models the file declared, in file order.
    pub perturbs: Vec<PerturbId>,
}

impl LoadedSpecs {
    /// Combined content hash of every spec this load registered (tool,
    /// platform and perturbation stanzas in file order; campaign
    /// stanzas are sweep declarations, not outcome models, and are
    /// excluded). Two loads of byte-different files that canonicalize
    /// to the same specs hash equal.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        for t in &self.tools {
            h.write_str(&crate::spec::render_tool(&t.spec()));
        }
        for p in &self.platforms {
            h.write_str(&crate::spec::render_platform(&p.spec()));
        }
        for p in &self.perturbs {
            h.write_str(&crate::spec::render_perturb(&p.spec()));
        }
        h.finish()
    }
}

/// The combined model registry: every tool and platform the process
/// knows, built-in or loaded from spec files.
///
/// The registry is process-global and append-only; `ModelRegistry` is a
/// zero-sized facade so call sites read naturally
/// (`ModelRegistry::global().register_tool(...)`).
#[derive(Debug)]
pub struct ModelRegistry {
    _private: (),
}

static GLOBAL: ModelRegistry = ModelRegistry { _private: () };

impl ModelRegistry {
    /// The process-global registry.
    pub fn global() -> &'static ModelRegistry {
        &GLOBAL
    }

    /// Registers a tool spec. See [`register_tool`].
    ///
    /// # Errors
    ///
    /// Returns a description of the conflict or validation failure.
    pub fn register_tool(&self, spec: ToolSpec) -> Result<ToolId, String> {
        register_tool(spec)
    }

    /// Registers a platform spec. See
    /// [`pdceval_simnet::registry::register_platform`].
    ///
    /// # Errors
    ///
    /// Returns a description of the conflict or validation failure.
    pub fn register_platform(&self, spec: PlatformSpec) -> Result<PlatformId, String> {
        platform_registry::register_platform(spec)
    }

    /// Resolves a tool handle.
    pub fn tool(&self, id: ToolId) -> Arc<ToolSpec> {
        tool_spec(id)
    }

    /// Resolves a platform handle.
    pub fn platform(&self, id: PlatformId) -> Arc<PlatformSpec> {
        platform_registry::platform_spec(id)
    }

    /// All registered tools, built-ins first.
    pub fn tools(&self) -> Vec<ToolId> {
        all_tools()
    }

    /// All registered platforms, built-ins first.
    pub fn platforms(&self) -> Vec<PlatformId> {
        platform_registry::all_platforms()
    }

    /// Looks a tool up by slug.
    pub fn tool_by_slug(&self, slug: &str) -> Option<ToolId> {
        find_tool(slug)
    }

    /// Looks a platform up by slug.
    pub fn platform_by_slug(&self, slug: &str) -> Option<PlatformId> {
        platform_registry::find_platform(slug)
    }

    /// Serializes the whole registry — every tool and platform, built-in
    /// or spec-loaded — into one [`SpecFile`]. Rendering it with
    /// `spec::render_spec` and reloading via [`Self::load_spec_text`] is
    /// idempotent; this is the `pdceval snapshot` payload.
    pub fn snapshot(&self) -> SpecFile {
        SpecFile {
            tools: self
                .tools()
                .into_iter()
                .map(|t| (*t.spec()).clone())
                .collect(),
            platforms: self
                .platforms()
                .into_iter()
                .map(|p| (*p.spec()).clone())
                .collect(),
            campaigns: self.campaigns().iter().map(|c| (**c).clone()).collect(),
            perturbs: self
                .perturbs()
                .into_iter()
                .map(|p| (*p.spec()).clone())
                .collect(),
        }
    }

    /// Content hash of the entire registry: FNV-1a over the canonical
    /// rendering of [`Self::snapshot`]. Because rendering is an exact
    /// round-trip (`parse ∘ render` is the identity on canonical form),
    /// the hash is a fixpoint of re-rendering — loading a snapshot into
    /// a fresh process and hashing again yields the same value — and
    /// any observable edit to any registered spec changes it.
    pub fn spec_hash(&self) -> u64 {
        crate::hash::fnv1a_64(crate::spec::render_spec(&self.snapshot()).as_bytes())
    }

    /// Content hash of one registered tool's canonical stanza rendering.
    pub fn tool_hash(&self, id: ToolId) -> u64 {
        crate::hash::fnv1a_64(crate::spec::render_tool(&id.spec()).as_bytes())
    }

    /// Content hash of one registered platform's canonical stanza
    /// rendering (topology, hosts and link classes included).
    pub fn platform_hash(&self, id: PlatformId) -> u64 {
        crate::hash::fnv1a_64(crate::spec::render_platform(&id.spec()).as_bytes())
    }

    /// Content hash of one registered perturbation model's canonical
    /// stanza rendering.
    pub fn perturb_hash(&self, id: PerturbId) -> u64 {
        crate::hash::fnv1a_64(crate::spec::render_perturb(&id.spec()).as_bytes())
    }

    /// Registers a perturbation model. See
    /// [`pdceval_simnet::perturb::register_perturb`].
    ///
    /// # Errors
    ///
    /// Returns a description of the conflict or validation failure.
    pub fn register_perturb(&self, spec: PerturbSpec) -> Result<PerturbId, String> {
        perturb_registry::register_perturb(spec)
    }

    /// Resolves a perturbation handle.
    pub fn perturb(&self, id: PerturbId) -> Arc<PerturbSpec> {
        perturb_registry::perturb_spec(id)
    }

    /// All registered perturbation models, in registration order.
    pub fn perturbs(&self) -> Vec<PerturbId> {
        perturb_registry::all_perturbs()
    }

    /// Looks a perturbation model up by slug.
    pub fn perturb_by_slug(&self, slug: &str) -> Option<PerturbId> {
        perturb_registry::find_perturb(slug)
    }

    /// Registers a campaign stanza. See [`register_campaign`].
    ///
    /// # Errors
    ///
    /// Returns a description of the conflict or validation failure.
    pub fn register_campaign(&self, spec: CampaignSpec) -> Result<Arc<CampaignSpec>, String> {
        register_campaign(spec)
    }

    /// All registered campaign stanzas, in registration order.
    pub fn campaigns(&self) -> Vec<Arc<CampaignSpec>> {
        all_campaigns()
    }

    /// Looks a campaign stanza up by slug.
    pub fn campaign_by_slug(&self, slug: &str) -> Option<Arc<CampaignSpec>> {
        find_campaign(slug)
    }

    /// Parses spec-file text and registers everything it declares.
    /// Idempotent: loading the same file twice returns the same handles.
    ///
    /// # Errors
    ///
    /// Returns a parse diagnostic (with line number) or a registration
    /// conflict, as a displayable string.
    pub fn load_spec_text(&self, text: &str) -> Result<LoadedSpecs, String> {
        let SpecFile {
            tools,
            platforms,
            campaigns,
            perturbs,
        } = parse_spec(text).map_err(|e| e.to_string())?;
        let mut loaded = LoadedSpecs::default();
        // Register platforms first so a file's tools can be validated
        // against its own platforms in the future without ordering traps;
        // perturbations before campaigns so `perturb =` selectors resolve.
        for p in platforms {
            loaded.platforms.push(self.register_platform(p)?);
        }
        for t in tools {
            loaded.tools.push(self.register_tool(t)?);
        }
        for p in perturbs {
            loaded.perturbs.push(self.register_perturb(p)?);
        }
        for c in campaigns {
            loaded.campaigns.push(self.register_campaign(c)?);
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_by_slug_and_index() {
        assert_eq!(find_tool("express"), Some(ToolId::EXPRESS));
        assert_eq!(find_tool("p4"), Some(ToolId::P4));
        assert_eq!(find_tool("pvm"), Some(ToolId::PVM));
        assert_eq!(find_tool("mpi"), None);
        assert_eq!(tool_spec(ToolId::P4).name, "p4");
    }

    #[test]
    fn facade_reaches_both_tables() {
        let r = ModelRegistry::global();
        assert!(r.tools().len() >= 3);
        assert!(r.platforms().len() >= 6);
        assert_eq!(r.platform_by_slug("sun-eth").map(|p| p.index()), Some(0));
    }

    #[test]
    fn registration_is_idempotent_and_conflict_checked() {
        let mut spec = crate::builtin::builtin_tools().remove(1);
        spec.slug = "p4-test-variant".to_string();
        let id = register_tool(spec.clone()).unwrap();
        assert_eq!(register_tool(spec.clone()).unwrap(), id);
        spec.profile.send_alpha_us += 1.0;
        let err = register_tool(spec).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
    }

    #[test]
    fn campaign_registration_is_idempotent_and_conflict_checked() {
        let mut spec = CampaignSpec {
            slug: "registry-test-sweep".to_string(),
            title: None,
            kernels: vec!["broadcast".to_string()],
            nprocs: vec![4],
            sizes: vec![1024],
            reps: 1,
            tools: vec![],
            platforms: vec![],
            perturbs: vec![],
            seeds: 1,
        };
        let a = register_campaign(spec.clone()).unwrap();
        let b = register_campaign(spec.clone()).unwrap();
        assert_eq!(a, b);
        assert_eq!(find_campaign("registry-test-sweep").as_deref(), Some(&*a));
        spec.reps = 2;
        let err = register_campaign(spec.clone()).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        spec.slug = "Bad Slug".to_string();
        assert!(register_campaign(spec).is_err());
        // Loading a spec file registers its campaigns and the snapshot
        // carries them.
        let loaded = ModelRegistry::global()
            .load_spec_text(
                "[campaign registry-test-loaded]\nkernels = ring\nnprocs = 4\nsizes = 1024\n",
            )
            .unwrap();
        assert_eq!(loaded.campaigns.len(), 1);
        assert!(ModelRegistry::global()
            .snapshot()
            .campaigns
            .iter()
            .any(|c| c.slug == "registry-test-loaded"));
    }

    #[test]
    fn perturb_models_load_and_snapshot() {
        let loaded = ModelRegistry::global()
            .load_spec_text("[perturb registry-test-chaos]\njitter = 0.25\n")
            .unwrap();
        assert_eq!(loaded.perturbs.len(), 1);
        let id = loaded.perturbs[0];
        assert_eq!(id.spec().jitter, 0.25);
        assert_eq!(
            ModelRegistry::global().perturb_by_slug("registry-test-chaos"),
            Some(id)
        );
        assert!(ModelRegistry::global()
            .snapshot()
            .perturbs
            .iter()
            .any(|p| p.slug == "registry-test-chaos"));
    }
}
