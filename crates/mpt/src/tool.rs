//! Tools as data: [`ToolId`] handles over registered [`ToolSpec`]s.
//!
//! The paper's three tools (Express, p4, PVM) ship as built-in specs
//! ([`crate::builtin`]); arbitrary further tools can be registered at run
//! time from spec files ([`crate::spec`]) without touching any code.
//!
//! [`ToolId`] is a cheap `Copy` handle into the process-global registry
//! ([`crate::registry`]); the legacy name [`ToolKind`] is kept as an
//! alias so existing call sites keep reading naturally.

use crate::registry;
use crate::spec::ToolSpec;
use pdceval_simnet::platform::PlatformId;
use std::fmt;
use std::sync::Arc;

/// A registered message-passing tool. See the module docs.
///
/// The legacy enum-era name is kept as an alias: a `ToolKind` *is* a
/// `ToolId`.
pub type ToolKind = ToolId;

/// Cheap copyable handle to a registered [`ToolSpec`].
///
/// Ordering and hashing follow registration order, which for the
/// built-ins is the paper's presentation order (Express, p4, PVM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ToolId(u16);

impl ToolId {
    /// Express 3.0 (ParaSoft Inc.): a commercial toolkit with its own
    /// buffered transport (`exsend` / `exreceive` / `exbroadcast` /
    /// `excombine` / `exsync`).
    pub const EXPRESS: ToolId = ToolId(0);
    /// p4 (Argonne National Laboratory): a thin, efficient layer over the
    /// transport (`p4_send` / `p4_recv` / `p4_broadcast` / `p4_global_op`).
    pub const P4: ToolId = ToolId(1);
    /// PVM 3 (Oak Ridge National Laboratory): daemon-routed messaging with
    /// typed packing (`pvm_send` / `pvm_recv` / `pvm_mcast` /
    /// `pvm_barrier`); no built-in global reduction.
    pub const PVM: ToolId = ToolId(2);

    /// The paper's three tools in presentation order (Express, p4, PVM).
    /// Unlike [`ToolId::all`], this never includes spec-registered tools —
    /// the default campaigns pin exactly these.
    pub fn builtin() -> [ToolId; 3] {
        [ToolId::EXPRESS, ToolId::P4, ToolId::PVM]
    }

    /// Every registered tool (built-ins plus spec-registered), in
    /// registration order.
    pub fn all() -> Vec<ToolId> {
        registry::all_tools()
    }

    /// Looks a tool up by its stable slug.
    pub fn by_slug(slug: &str) -> Option<ToolId> {
        registry::find_tool(slug)
    }

    /// The handle's dense registry index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The handle for registry index `i` (crate-internal; issued by the
    /// registry only).
    pub(crate) fn from_index(i: usize) -> ToolId {
        ToolId(u16::try_from(i).expect("tool registry overflow"))
    }

    /// The full spec this handle resolves to.
    pub fn spec(self) -> Arc<ToolSpec> {
        registry::tool_spec(self)
    }

    /// Display name as used in the paper.
    pub fn name(self) -> String {
        self.spec().name.clone()
    }

    /// Stable lower-case slug used in scenario/store keys.
    pub fn slug(self) -> String {
        self.spec().slug.clone()
    }

    /// The tool's native name for a communication primitive, as listed in
    /// the paper's Table 1. Returns `None` where the paper lists
    /// "Not Available".
    pub fn primitive_name(self, p: Primitive) -> Option<String> {
        self.spec().primitives[p.spec_index()].clone()
    }

    /// Whether the tool implements a built-in global reduction.
    /// PVM does not (paper Table 1: "Not Available").
    pub fn supports_global_ops(self) -> bool {
        self.spec().supports_global_ops()
    }

    /// Whether the tool has a port for the given platform, per its
    /// [`crate::spec::PortPolicy`]. Express was not available across
    /// WANs (Table 3 has no Express/WAN column; Figure 7 plots only p4
    /// and PVM); spec-defined tools can additionally carry explicit
    /// per-platform allow/deny lists.
    pub fn supports_platform(self, platform: PlatformId) -> bool {
        let p = platform.spec();
        self.spec().ports.supports(&p.slug, p.wan)
    }
}

impl fmt::Display for ToolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec().name)
    }
}

/// The communication-primitive classes benchmarked at the paper's Tool
/// Performance Level (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Receive,
    /// One-to-many broadcast / multicast.
    Broadcast,
    /// Global summation (reduction).
    GlobalSum,
    /// Global synchronization.
    Barrier,
}

impl Primitive {
    /// All primitives, in the paper's Table 1 order.
    pub fn all() -> [Primitive; 5] {
        [
            Primitive::Send,
            Primitive::Receive,
            Primitive::Broadcast,
            Primitive::GlobalSum,
            Primitive::Barrier,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Primitive::Send => "Send",
            Primitive::Receive => "Receive",
            Primitive::Broadcast => "Broadcast/Multicast",
            Primitive::GlobalSum => "Global Sum",
            Primitive::Barrier => "Barrier",
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdceval_simnet::platform::Platform;

    #[test]
    fn table1_primitive_names() {
        assert_eq!(
            ToolKind::EXPRESS.primitive_name(Primitive::Send).as_deref(),
            Some("exsend")
        );
        assert_eq!(
            ToolKind::P4.primitive_name(Primitive::GlobalSum).as_deref(),
            Some("p4_global_op")
        );
        // Paper Table 1: PVM global sum is "Not Available".
        assert_eq!(ToolKind::PVM.primitive_name(Primitive::GlobalSum), None);
    }

    #[test]
    fn pvm_lacks_global_ops() {
        assert!(!ToolKind::PVM.supports_global_ops());
        assert!(ToolKind::P4.supports_global_ops());
        assert!(ToolKind::EXPRESS.supports_global_ops());
    }

    #[test]
    fn express_has_no_wan_port() {
        assert!(!ToolKind::EXPRESS.supports_platform(Platform::SUN_ATM_WAN));
        assert!(ToolKind::EXPRESS.supports_platform(Platform::SUN_ETHERNET));
        assert!(ToolKind::P4.supports_platform(Platform::SUN_ATM_WAN));
        assert!(ToolKind::PVM.supports_platform(Platform::SUN_ATM_WAN));
    }

    #[test]
    fn display_names() {
        assert_eq!(ToolKind::P4.to_string(), "p4");
        assert_eq!(Primitive::Broadcast.to_string(), "Broadcast/Multicast");
    }

    #[test]
    fn all_contains_the_builtins_in_order() {
        let all = ToolKind::all();
        assert_eq!(&all[..3], &ToolKind::builtin()[..]);
        assert!(ToolKind::EXPRESS < ToolKind::P4 && ToolKind::P4 < ToolKind::PVM);
    }
}
