//! The three message-passing tools the paper evaluates.

use pdceval_simnet::platform::Platform;
use std::fmt;

/// One of the parallel/distributed computing tools under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ToolKind {
    /// Express 3.0 (ParaSoft Inc.): a commercial toolkit with its own
    /// buffered transport (`exsend` / `exreceive` / `exbroadcast` /
    /// `excombine` / `exsync`).
    Express,
    /// p4 (Argonne National Laboratory): a thin, efficient layer over the
    /// transport (`p4_send` / `p4_recv` / `p4_broadcast` / `p4_global_op`).
    P4,
    /// PVM 3 (Oak Ridge National Laboratory): daemon-routed messaging with
    /// typed packing (`pvm_send` / `pvm_recv` / `pvm_mcast` /
    /// `pvm_barrier`); no built-in global reduction.
    Pvm,
}

impl ToolKind {
    /// All tools in the paper's presentation order (Express, p4, PVM).
    pub fn all() -> [ToolKind; 3] {
        [ToolKind::Express, ToolKind::P4, ToolKind::Pvm]
    }

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ToolKind::Express => "Express",
            ToolKind::P4 => "p4",
            ToolKind::Pvm => "PVM",
        }
    }

    /// The tool's native name for a communication primitive, as listed in
    /// the paper's Table 1. Returns `None` where the paper lists
    /// "Not Available".
    pub fn primitive_name(&self, p: Primitive) -> Option<&'static str> {
        match (self, p) {
            (ToolKind::Express, Primitive::Send) => Some("exsend"),
            (ToolKind::Express, Primitive::Receive) => Some("exreceive"),
            (ToolKind::Express, Primitive::Broadcast) => Some("exbroadcast"),
            (ToolKind::Express, Primitive::GlobalSum) => Some("excombine"),
            (ToolKind::Express, Primitive::Barrier) => Some("exsync"),
            (ToolKind::P4, Primitive::Send) => Some("p4_send"),
            (ToolKind::P4, Primitive::Receive) => Some("p4_recv"),
            (ToolKind::P4, Primitive::Broadcast) => Some("p4_broadcast"),
            (ToolKind::P4, Primitive::GlobalSum) => Some("p4_global_op"),
            (ToolKind::P4, Primitive::Barrier) => Some("p4_barrier"),
            (ToolKind::Pvm, Primitive::Send) => Some("pvm_send"),
            (ToolKind::Pvm, Primitive::Receive) => Some("pvm_recv"),
            (ToolKind::Pvm, Primitive::Broadcast) => Some("pvm_mcast"),
            (ToolKind::Pvm, Primitive::GlobalSum) => None,
            (ToolKind::Pvm, Primitive::Barrier) => Some("pvm_barrier"),
        }
    }

    /// Whether the tool implements a built-in global reduction.
    /// PVM does not (paper Table 1: "Not Available").
    pub fn supports_global_ops(&self) -> bool {
        !matches!(self, ToolKind::Pvm)
    }

    /// Whether the tool had a port for the given platform in the paper's
    /// experiments. Express was not available across the NYNET ATM WAN
    /// (Table 3 has no Express/WAN column; Figure 7 plots only p4 and PVM).
    pub fn supports_platform(&self, platform: Platform) -> bool {
        !(matches!(self, ToolKind::Express) && platform.is_wan())
    }
}

impl fmt::Display for ToolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The communication-primitive classes benchmarked at the paper's Tool
/// Performance Level (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Point-to-point send.
    Send,
    /// Point-to-point receive.
    Receive,
    /// One-to-many broadcast / multicast.
    Broadcast,
    /// Global summation (reduction).
    GlobalSum,
    /// Global synchronization.
    Barrier,
}

impl Primitive {
    /// All primitives, in the paper's Table 1 order.
    pub fn all() -> [Primitive; 5] {
        [
            Primitive::Send,
            Primitive::Receive,
            Primitive::Broadcast,
            Primitive::GlobalSum,
            Primitive::Barrier,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Primitive::Send => "Send",
            Primitive::Receive => "Receive",
            Primitive::Broadcast => "Broadcast/Multicast",
            Primitive::GlobalSum => "Global Sum",
            Primitive::Barrier => "Barrier",
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_primitive_names() {
        assert_eq!(
            ToolKind::Express.primitive_name(Primitive::Send),
            Some("exsend")
        );
        assert_eq!(
            ToolKind::P4.primitive_name(Primitive::GlobalSum),
            Some("p4_global_op")
        );
        // Paper Table 1: PVM global sum is "Not Available".
        assert_eq!(ToolKind::Pvm.primitive_name(Primitive::GlobalSum), None);
    }

    #[test]
    fn pvm_lacks_global_ops() {
        assert!(!ToolKind::Pvm.supports_global_ops());
        assert!(ToolKind::P4.supports_global_ops());
        assert!(ToolKind::Express.supports_global_ops());
    }

    #[test]
    fn express_has_no_wan_port() {
        assert!(!ToolKind::Express.supports_platform(Platform::SunAtmWan));
        assert!(ToolKind::Express.supports_platform(Platform::SunEthernet));
        assert!(ToolKind::P4.supports_platform(Platform::SunAtmWan));
        assert!(ToolKind::Pvm.supports_platform(Platform::SunAtmWan));
    }

    #[test]
    fn display_names() {
        assert_eq!(ToolKind::P4.to_string(), "p4");
        assert_eq!(Primitive::Broadcast.to_string(), "Broadcast/Multicast");
    }
}
