//! Built-in spec data: the paper's three tools, expressed as plain values.
//!
//! This module is the **only** place in the workspace that enumerates
//! Express, p4 and PVM in code. Everything else — primitive naming,
//! cost profiles, collective algorithm selection, platform ports, ADL
//! ratings — consumes them through the registry as [`ToolSpec`] data,
//! exactly the way spec files supply user-defined tools.
//!
//! # Calibration notes (moved verbatim from the enum-era `profile.rs`)
//!
//! Every ranking the paper reports is traced to a *protocol mechanism*,
//! not a fudge factor:
//!
//! * **p4** is a thin layer over the transport: small fixed costs, small
//!   per-byte costs, zero-copy contiguous sends, tree-structured
//!   collectives. The paper attributes p4's wins to exactly this
//!   ("very small amount of overhead to the underlying transport layer").
//! * **PVM** routes messages through per-host daemons by default
//!   (`task → pvmd → pvmd → task`): large fixed cost, and both directions
//!   of a node's traffic serialize through the single-threaded daemon,
//!   which is why PVM loses the full-duplex ring test to Express even
//!   though it wins the half-duplex echo test. Applications could request
//!   direct task-to-task routing (`pvm_advise(PvmRouteDirect)`), which the
//!   tuned application suite does. PVM's typed packing handles strided
//!   data natively. PVM has **no** global reduction (Table 1).
//! * **Express** copies the whole message through an internal buffer
//!   before transmission (no pipelining of that copy), giving it the worst
//!   large-message throughput; but its transmit and receive paths overlap
//!   (good for continuous flow, as the paper notes for the ring test), its
//!   broadcast is sequential-with-acks (worst of the three), and its
//!   tiny-message `excombine` is the cheapest.
//!
//! All cost constants are microseconds at SUN SPARCstation IPX speed and
//! scale by the host model's `sw_scale`. They were fitted against the
//! paper's Table 3 (see `EXPERIMENTS.md` for fitted-vs-paper values).

use crate::profile::{BcastAlgo, ReduceAlgo, ToolProfile};
use crate::spec::Support::{NotSupported, Partial, Well};
use crate::spec::{PortPolicy, ToolSpec};

fn names(xs: [&str; 5]) -> [Option<String>; 5] {
    xs.map(|n| (n != "none").then(|| n.to_string()))
}

fn models(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|m| m.to_string()).collect()
}

/// Express 3.0 (ParaSoft Inc.): a commercial toolkit with its own
/// buffered transport. Its `excombine` is tree-structured like p4's
/// global op; its Figure 4 disadvantage comes from per-byte buffer
/// costs, while its small-payload fast path is the cheapest of the three
/// (which is why Express wins Monte Carlo in Figure 5). Express had no
/// port for the NYNET ATM WAN (Table 3 has no Express/WAN column).
fn express() -> ToolSpec {
    let profile = ToolProfile {
        send_alpha_us: 1450.0,
        recv_alpha_us: 2250.0,
        send_beta_us_per_byte: 0.0,
        recv_beta_us_per_byte: 1.05,
        copy_before_send_us_per_byte: 1.10,
        header_bytes: 80,
        daemon_routed: false,
        strided_native: false,
        bcast: BcastAlgo::SequentialAck,
        reduce: Some(ReduceAlgo::Tree),
        small_combine_alpha_us: 900.0,
        seg_us_per_extra_fragment: 1000.0,
        strided_pack_us_per_byte: 0.0,
        max_fragment_bytes: None,
        wildcard_recv_extra_us: 100.0,
    };
    ToolSpec {
        name: "Express".to_string(),
        slug: "express".to_string(),
        primitives: names(["exsend", "exreceive", "exbroadcast", "excombine", "exsync"]),
        direct_profile: profile.clone(),
        profile,
        ports: PortPolicy::All { wan: false },
        adl: [
            Well,
            Well,
            Partial,
            Well,
            Partial,
            Partial,
            Well,
            NotSupported,
            Well,
        ],
        programming_models: models(&["Host-Node", "SPMD (Cubix)"]),
    }
}

/// p4 (Argonne National Laboratory): a thin, efficient layer over the
/// transport.
fn p4() -> ToolSpec {
    let profile = ToolProfile {
        send_alpha_us: 1000.0,
        recv_alpha_us: 1350.0,
        send_beta_us_per_byte: 0.42,
        recv_beta_us_per_byte: 0.42,
        copy_before_send_us_per_byte: 0.0,
        header_bytes: 64,
        daemon_routed: false,
        strided_native: false,
        bcast: BcastAlgo::BinomialTree,
        reduce: Some(ReduceAlgo::Tree),
        small_combine_alpha_us: 1600.0,
        seg_us_per_extra_fragment: 0.0,
        strided_pack_us_per_byte: 0.0,
        max_fragment_bytes: None,
        // p4 keeps one socket per peer and must poll them all for a
        // wildcard receive.
        wildcard_recv_extra_us: 150.0,
    };
    ToolSpec {
        name: "p4".to_string(),
        slug: "p4".to_string(),
        primitives: names([
            "p4_send",
            "p4_recv",
            "p4_broadcast",
            "p4_global_op",
            "p4_barrier",
        ]),
        direct_profile: profile.clone(),
        profile,
        ports: PortPolicy::All { wan: true },
        adl: [
            Well, Well, Partial, Partial, Partial, Partial, Partial, Partial, Well,
        ],
        programming_models: models(&["Host-Node", "SPMD"]),
    }
}

/// PVM 3 (Oak Ridge National Laboratory): daemon-routed messaging with
/// typed packing; no built-in global reduction (paper Table 1,
/// "Not Available").
fn pvm() -> ToolSpec {
    let profile = ToolProfile {
        send_alpha_us: 3100.0,
        recv_alpha_us: 4600.0,
        send_beta_us_per_byte: 1.09,
        recv_beta_us_per_byte: 1.09,
        copy_before_send_us_per_byte: 0.06,
        header_bytes: 96,
        daemon_routed: true,
        strided_native: true,
        bcast: BcastAlgo::SequentialRoot,
        reduce: None,
        small_combine_alpha_us: f64::INFINITY,
        // The daemon-route pack copy (copy_before) already covers strided
        // data, so no separate strided charge here.
        seg_us_per_extra_fragment: 0.0,
        strided_pack_us_per_byte: 0.0,
        max_fragment_bytes: Some(4096),
        // `pvm_recv(-1, tag)` reads a unified message queue, so wildcard
        // receives are free.
        wildcard_recv_extra_us: 0.0,
    };
    // The tuned direct-route configuration (`pvm_advise(PvmRouteDirect)`):
    // task-to-task TCP — the same transport p4 sends on — with a small
    // residual fixed cost for PVM's routing/fragment bookkeeping. Tuned
    // codes send contiguous data with pvm_psend (no pack buffer); strided
    // data still flows through typed packing in one memory pass, which is
    // the advantage `strided_native` models.
    let mut direct_profile = profile.clone();
    direct_profile.send_alpha_us = 1050.0;
    direct_profile.recv_alpha_us = 1400.0;
    direct_profile.send_beta_us_per_byte = 0.42;
    direct_profile.recv_beta_us_per_byte = 0.42;
    direct_profile.copy_before_send_us_per_byte = 0.0;
    direct_profile.strided_pack_us_per_byte = 0.04;
    direct_profile.daemon_routed = false;
    ToolSpec {
        name: "PVM".to_string(),
        slug: "pvm".to_string(),
        primitives: names(["pvm_send", "pvm_recv", "pvm_mcast", "none", "pvm_barrier"]),
        profile,
        direct_profile,
        ports: PortPolicy::All { wan: true },
        adl: [
            Well,
            Well,
            Well,
            Partial,
            NotSupported,
            Partial,
            Well,
            Well,
            Well,
        ],
        programming_models: models(&["Host-Node", "SPMD"]),
    }
}

/// The paper's three tools in presentation order (Express, p4, PVM).
/// The registry seeds itself with exactly this list, so the handle for
/// `builtin_tools()[i]` is `ToolId(i)`.
pub fn builtin_tools() -> Vec<ToolSpec> {
    vec![express(), p4(), pvm()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_tool_slugs_are_stable() {
        let slugs: Vec<String> = builtin_tools().into_iter().map(|t| t.slug).collect();
        assert_eq!(slugs, vec!["express", "p4", "pvm"]);
    }

    #[test]
    fn builtin_specs_validate() {
        for t in builtin_tools() {
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", t.slug));
        }
    }

    #[test]
    fn builtin_specs_round_trip_through_the_spec_format() {
        use crate::spec::{parse_spec, render_spec, SpecFile};
        let file = SpecFile {
            tools: builtin_tools(),
            platforms: pdceval_simnet::builtin::builtin_platforms(),
            campaigns: vec![],
            perturbs: vec![],
        };
        let rendered = render_spec(&file);
        let reparsed = parse_spec(&rendered).expect("builtin specs must re-parse");
        assert_eq!(file, reparsed);
    }

    #[test]
    fn only_pvm_lacks_reduce_and_only_express_lacks_wan() {
        let tools = builtin_tools();
        assert!(tools[0].profile.reduce.is_some()); // Express
        assert!(tools[1].profile.reduce.is_some()); // p4
        assert!(tools[2].profile.reduce.is_none()); // PVM
        assert!(!tools[0].ports.supports("sun-atm-wan", true));
        assert!(tools[0].ports.supports("sun-eth", false));
        assert!(tools[1].ports.supports("sun-atm-wan", true));
        assert!(tools[2].ports.supports("sun-atm-wan", true));
    }
}
