//! Calibration regression test: the simulated Table 3 must stay within
//! shape-preserving bounds of the paper's published values.
//!
//! Run with `--nocapture` to see the full simulated/paper table.

use pdceval_core::experiments::paper_data;
use pdceval_core::tpl::{send_recv_sweep, SendRecvConfig};
use pdceval_simnet::platform::Platform;

#[test]
fn calibration_table3() {
    let blocks = [
        (Platform::SUN_ETHERNET, paper_data::table3_ethernet()),
        (Platform::SUN_ATM_LAN, paper_data::table3_atm_lan()),
        (Platform::SUN_ATM_WAN, paper_data::table3_atm_wan()),
    ];
    for (platform, paper) in blocks {
        println!("== {platform} ==");
        for (tool, expected) in paper {
            let cfg = SendRecvConfig::table3(platform, tool);
            let pts = send_recv_sweep(&cfg).unwrap();
            print!("{tool:>8}: ");
            for (p, e) in pts.iter().zip(&expected) {
                print!("{:7.2}/{:<7.2} ", p.millis, e);
            }
            println!();
            // Endpoints (0 KB and 64 KB) must be within 25% of the paper.
            for idx in [0usize, 7] {
                let ratio = pts[idx].millis / expected[idx];
                assert!(
                    (0.75..=1.3).contains(&ratio),
                    "{platform} {tool} size index {idx}: sim {} vs paper {} (ratio {ratio:.2})",
                    pts[idx].millis,
                    expected[idx]
                );
            }
            // Mid-range points must stay within a factor of 2.5.
            for idx in 1..7 {
                let ratio = pts[idx].millis / expected[idx];
                assert!(
                    (0.4..=2.5).contains(&ratio),
                    "{platform} {tool} size index {idx}: ratio {ratio:.2}"
                );
            }
        }
    }
}
