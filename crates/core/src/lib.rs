//! # pdceval-core
//!
//! The paper's contribution: a **multi-level evaluation methodology** for
//! parallel/distributed computing tools (*"Software Tool Evaluation
//! Methodology"*, Hariri et al., NPAC/Syracuse University, 1995),
//! reproduced in full:
//!
//! * [`tpl`] — Tool Performance Level: communication-primitive
//!   microbenchmarks (send/receive, broadcast, ring, global sum);
//! * [`apl`] — Application Performance Level: end-to-end application
//!   benchmarks over processor counts and platforms;
//! * [`adl`] — Application Development Level: the usability criteria
//!   taxonomy and the paper's WS/PS/NS assessments;
//! * [`score`] — the weighted multi-level scoring the paper proposes for
//!   tailoring an overall evaluation to a user's priorities;
//! * [`report`] — table/series rendering, ASCII plots and CSV;
//! * [`experiments`] — every table and figure of the paper's evaluation
//!   section as a regenerable experiment with the published values
//!   embedded for comparison.
//!
//! # Example: a tailored tool selection
//!
//! ```
//! use pdceval_core::score::{Evaluator, LevelWeights, Measurement};
//! use pdceval_mpt::ToolKind;
//!
//! let mut eval = Evaluator::new();
//! eval.level_weights(LevelWeights::performance_user());
//! eval.tpl_measurement(Measurement::new(
//!     "snd/rcv 64KB @ Ethernet (s)",
//!     vec![
//!         (ToolKind::EXPRESS, Some(0.311)),
//!         (ToolKind::P4, Some(0.173)),
//!         (ToolKind::PVM, Some(0.189)),
//!     ],
//! ));
//! let ranked = eval.evaluate();
//! assert_eq!(ranked[0].tool, ToolKind::P4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adl;
pub mod apl;
pub mod experiments;
pub mod report;
pub mod score;
pub mod tpl;
