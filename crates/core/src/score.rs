//! Weighted multi-level scoring — the paper's mechanism for tailoring an
//! overall evaluation to a particular user ("by using weight factors, an
//! overall tool evaluation can be tailored to take into account the most
//! relevant factors associated with certain types of users", §2).
//!
//! Performance levels (TPL, APL) are scored by *relative speed*: a tool's
//! score on one measurement is `best_time / its_time`, so the fastest
//! tool gets 1.0 and a tool twice as slow gets 0.5. Missing capabilities
//! (PVM's global sum, Express's WAN port) score 0 on that measurement —
//! absence is the worst possible performance. ADL criteria use the
//! WS/PS/NS values normalized to `[0, 1]`.

use crate::adl::{assessment, Criterion, Support};
use pdceval_mpt::ToolKind;
use std::collections::BTreeMap;
use std::fmt;

/// Relative weights of the three evaluation levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelWeights {
    /// Weight of the Tool Performance Level.
    pub tpl: f64,
    /// Weight of the Application Performance Level.
    pub apl: f64,
    /// Weight of the Application Development Level.
    pub adl: f64,
}

impl Default for LevelWeights {
    fn default() -> Self {
        LevelWeights {
            tpl: 1.0,
            apl: 1.0,
            adl: 1.0,
        }
    }
}

impl LevelWeights {
    /// Weights for a performance-obsessed user (the paper's "user"
    /// perspective: response time above all).
    pub fn performance_user() -> LevelWeights {
        LevelWeights {
            tpl: 1.0,
            apl: 2.0,
            adl: 0.5,
        }
    }

    /// Weights for a developer prioritizing usability.
    pub fn developer() -> LevelWeights {
        LevelWeights {
            tpl: 0.5,
            apl: 1.0,
            adl: 2.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.tpl >= 0.0 && self.apl >= 0.0 && self.adl >= 0.0,
            "weights must be non-negative"
        );
        assert!(
            self.tpl + self.apl + self.adl > 0.0,
            "at least one level must carry weight"
        );
    }
}

/// One timed measurement entering a performance level's score: a label
/// and each tool's time (`None` = the tool cannot perform it).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Human-readable label, e.g. `"snd/rcv 64KB @ SUN/Ethernet"`.
    pub label: String,
    /// `(tool, seconds)` pairs; `None` marks a missing capability.
    pub times: Vec<(ToolKind, Option<f64>)>,
}

impl Measurement {
    /// Creates a measurement.
    pub fn new(label: impl Into<String>, times: Vec<(ToolKind, Option<f64>)>) -> Measurement {
        Measurement {
            label: label.into(),
            times,
        }
    }

    /// Relative score of `tool` on this measurement: `best / own`, 0 for
    /// missing capability or missing entry.
    pub fn relative_score(&self, tool: ToolKind) -> f64 {
        let best = self
            .times
            .iter()
            .filter_map(|(_, t)| *t)
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            return 0.0;
        }
        match self.times.iter().find(|(k, _)| *k == tool) {
            Some((_, Some(t))) if *t > 0.0 => best / t,
            _ => 0.0,
        }
    }
}

/// Per-criterion ADL weights (defaults to 1.0 each).
pub type CriterionWeights = BTreeMap<Criterion, f64>;

/// The complete scorecard of one tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolScore {
    /// The tool.
    pub tool: ToolKind,
    /// Mean relative TPL score in `[0, 1]`.
    pub tpl: f64,
    /// Mean relative APL score in `[0, 1]`.
    pub apl: f64,
    /// Weighted, normalized ADL score in `[0, 1]`.
    pub adl: f64,
    /// The weighted overall score in `[0, 1]`.
    pub overall: f64,
}

impl fmt::Display for ToolScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: overall {:.3} (TPL {:.3}, APL {:.3}, ADL {:.3})",
            self.tool, self.overall, self.tpl, self.apl, self.adl
        )
    }
}

/// The multi-level evaluator.
#[derive(Debug, Clone)]
pub struct Evaluator {
    weights: LevelWeights,
    criterion_weights: CriterionWeights,
    tpl: Vec<Measurement>,
    apl: Vec<Measurement>,
}

impl Default for Evaluator {
    fn default() -> Self {
        Self::new()
    }
}

impl Evaluator {
    /// Creates an evaluator with uniform weights.
    pub fn new() -> Evaluator {
        Evaluator {
            weights: LevelWeights::default(),
            criterion_weights: CriterionWeights::new(),
            tpl: Vec::new(),
            apl: Vec::new(),
        }
    }

    /// Sets the level weights.
    pub fn level_weights(&mut self, w: LevelWeights) -> &mut Evaluator {
        w.validate();
        self.weights = w;
        self
    }

    /// Overrides the weight of one ADL criterion (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative.
    pub fn criterion_weight(&mut self, c: Criterion, weight: f64) -> &mut Evaluator {
        assert!(weight >= 0.0, "criterion weight must be non-negative");
        self.criterion_weights.insert(c, weight);
        self
    }

    /// Adds a TPL measurement.
    pub fn tpl_measurement(&mut self, m: Measurement) -> &mut Evaluator {
        self.tpl.push(m);
        self
    }

    /// Adds an APL measurement.
    pub fn apl_measurement(&mut self, m: Measurement) -> &mut Evaluator {
        self.apl.push(m);
        self
    }

    fn level_score(ms: &[Measurement], tool: ToolKind) -> f64 {
        if ms.is_empty() {
            return 0.0;
        }
        ms.iter().map(|m| m.relative_score(tool)).sum::<f64>() / ms.len() as f64
    }

    fn adl_score(&self, tool: ToolKind) -> f64 {
        let a = assessment(tool);
        let mut num = 0.0;
        let mut den = 0.0;
        for (c, s) in a {
            let w = self.criterion_weights.get(&c).copied().unwrap_or(1.0);
            num += w * s.value();
            den += w * Support::Well.value();
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// The tools this evaluator scores: every tool appearing in its
    /// measurements (in first-appearance order), or the paper's built-in
    /// trio when no measurements were added (pure-ADL evaluations).
    /// Deliberately *not* the whole registry — a spec-registered tool
    /// nobody measured must not enter a ranking on its ADL column alone.
    fn tools(&self) -> Vec<ToolKind> {
        let mut tools: Vec<ToolKind> = Vec::new();
        for m in self.tpl.iter().chain(&self.apl) {
            for (tool, _) in &m.times {
                if !tools.contains(tool) {
                    tools.push(*tool);
                }
            }
        }
        if tools.is_empty() {
            tools = ToolKind::builtin().to_vec();
        }
        tools
    }

    /// Produces the ranked scorecards, best overall first (ties broken by
    /// tool order for determinism).
    pub fn evaluate(&self) -> Vec<ToolScore> {
        let lw = self.weights;
        let total = lw.tpl + lw.apl + lw.adl;
        let mut scores: Vec<ToolScore> = self
            .tools()
            .into_iter()
            .map(|tool| {
                let tpl = Self::level_score(&self.tpl, tool);
                let apl = Self::level_score(&self.apl, tool);
                let adl = self.adl_score(tool);
                let overall = (lw.tpl * tpl + lw.apl * apl + lw.adl * adl) / total;
                ToolScore {
                    tool,
                    tpl,
                    apl,
                    adl,
                    overall,
                }
            })
            .collect();
        scores.sort_by(|a, b| {
            b.overall
                .partial_cmp(&a.overall)
                .expect("scores are finite")
                .then(a.tool.cmp(&b.tool))
        });
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(label: &str, ex: Option<f64>, p4: Option<f64>, pvm: Option<f64>) -> Measurement {
        Measurement::new(
            label,
            vec![
                (ToolKind::EXPRESS, ex),
                (ToolKind::P4, p4),
                (ToolKind::PVM, pvm),
            ],
        )
    }

    #[test]
    fn fastest_tool_scores_one() {
        let meas = m("x", Some(2.0), Some(1.0), Some(4.0));
        assert_eq!(meas.relative_score(ToolKind::P4), 1.0);
        assert_eq!(meas.relative_score(ToolKind::EXPRESS), 0.5);
        assert_eq!(meas.relative_score(ToolKind::PVM), 0.25);
    }

    #[test]
    fn missing_capability_scores_zero() {
        let meas = m("global sum", Some(2.0), Some(1.0), None);
        assert_eq!(meas.relative_score(ToolKind::PVM), 0.0);
    }

    #[test]
    fn dominant_tool_ranks_first() {
        let mut e = Evaluator::new();
        e.tpl_measurement(m("a", Some(2.0), Some(1.0), Some(3.0)));
        e.apl_measurement(m("b", Some(2.0), Some(1.0), Some(3.0)));
        let ranked = e.evaluate();
        assert_eq!(ranked[0].tool, ToolKind::P4);
        assert!(ranked[0].overall > ranked[1].overall);
    }

    #[test]
    fn weight_scaling_does_not_change_ranking() {
        let build = |scale: f64| {
            let mut e = Evaluator::new();
            e.level_weights(LevelWeights {
                tpl: 1.0 * scale,
                apl: 2.0 * scale,
                adl: 0.5 * scale,
            });
            e.tpl_measurement(m("a", Some(2.0), Some(1.0), Some(1.5)));
            e.apl_measurement(m("b", Some(1.0), Some(1.2), Some(1.1)));
            e.evaluate()
        };
        let a = build(1.0);
        let b = build(100.0);
        let order_a: Vec<_> = a.iter().map(|s| s.tool).collect();
        let order_b: Vec<_> = b.iter().map(|s| s.tool).collect();
        assert_eq!(order_a, order_b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.overall - y.overall).abs() < 1e-12);
        }
    }

    #[test]
    fn adl_only_evaluation_prefers_pvm() {
        // PVM has the strongest usability column in the paper's table
        // (one NS but four WS in the development rows).
        let mut e = Evaluator::new();
        e.level_weights(LevelWeights {
            tpl: 0.0,
            apl: 0.0,
            adl: 1.0,
        });
        let ranked = e.evaluate();
        assert_eq!(ranked[0].tool, ToolKind::PVM, "{ranked:?}");
    }

    #[test]
    fn criterion_weight_shifts_adl() {
        // Weighting debugging heavily favours Express (its only WS among
        // the development-interface rows).
        let mut e = Evaluator::new();
        e.level_weights(LevelWeights {
            tpl: 0.0,
            apl: 0.0,
            adl: 1.0,
        });
        e.criterion_weight(Criterion::DebuggingSupport, 50.0);
        let ranked = e.evaluate();
        assert_eq!(ranked[0].tool, ToolKind::EXPRESS, "{ranked:?}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        Evaluator::new().criterion_weight(Criterion::Portability, -1.0);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_weights_rejected() {
        Evaluator::new().level_weights(LevelWeights {
            tpl: 0.0,
            apl: 0.0,
            adl: 0.0,
        });
    }

    #[test]
    fn evaluation_scores_measured_tools_not_the_whole_registry() {
        // A tool that appears in no measurement must not enter the
        // ranking, even if it is registered (spec-loaded) in this
        // process; with no measurements at all, the built-in trio is
        // scored (pure-ADL evaluations).
        let mut e = Evaluator::new();
        e.tpl_measurement(m("a", Some(2.0), Some(1.0), Some(3.0)));
        let ranked = e.evaluate();
        let tools: Vec<ToolKind> = ranked.iter().map(|s| s.tool).collect();
        let mut expected = ToolKind::builtin().to_vec();
        expected.sort_by_key(|t| tools.iter().position(|x| x == t));
        assert_eq!(tools.len(), 3);
        assert_eq!(tools, expected);
        assert_eq!(Evaluator::new().evaluate().len(), 3);
    }

    #[test]
    fn scores_are_bounded() {
        let mut e = Evaluator::new();
        e.tpl_measurement(m("a", Some(5.0), Some(1.0), None));
        for s in e.evaluate() {
            for v in [s.tpl, s.apl, s.adl, s.overall] {
                assert!((0.0..=1.0).contains(&v), "{s}");
            }
        }
    }
}
