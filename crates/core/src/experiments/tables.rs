//! The paper's tables as regenerable artifacts.

use super::paper_data;
use super::Artifact;
use crate::adl::{assessment, Criterion};
use crate::report::TextTable;
use crate::tpl::{
    broadcast_sweep, global_sum_sweep, ring_sweep, send_recv_sweep, BroadcastConfig,
    GlobalSumConfig, GlobalSumResult, RingConfig, SendRecvConfig,
};
use pdceval_apps::registry;
use pdceval_mpt::error::RunError;
use pdceval_mpt::{Primitive, ToolKind};
use pdceval_simnet::platform::Platform;
use std::fmt::Write as _;

/// Table 1: the communication primitives used to evaluate tools at the
/// TPL, with each tool's native names (PVM's global sum is
/// "Not Available").
pub fn table1() -> Artifact {
    let mut t = TextTable::new(vec!["Primitive", "Express", "p4", "PVM"]);
    for p in [
        Primitive::Send,
        Primitive::Receive,
        Primitive::Broadcast,
        Primitive::GlobalSum,
    ] {
        let cell = |tool: ToolKind| {
            tool.primitive_name(p)
                .unwrap_or_else(|| "Not Available".to_string())
        };
        t.row(vec![
            p.name().to_string(),
            cell(ToolKind::EXPRESS),
            cell(ToolKind::P4),
            cell(ToolKind::PVM),
        ]);
    }
    Artifact::new(
        "table1",
        "Table 1: Communication primitives for evaluating tools at TPL",
        t.render(),
    )
}

/// Table 2: the SU PDABS application suite catalog.
pub fn table2() -> Artifact {
    let mut t = TextTable::new(vec!["Class", "Application", "Benchmarked", "Module"]);
    for e in registry::catalog() {
        t.row(vec![
            e.class.name().to_string(),
            e.name.to_string(),
            if e.benchmarked { "yes" } else { "" }.to_string(),
            e.module.unwrap_or("(not implemented)").to_string(),
        ]);
    }
    Artifact::new("table2", "Table 2: SU PDABS", t.render())
}

/// Table 3: snd/rcv timings on SUN workstations over Ethernet, ATM LAN
/// and ATM WAN, printed as `simulated/paper` milliseconds.
///
/// # Errors
///
/// Returns [`RunError`] if any sweep fails.
pub fn table3() -> Result<Artifact, RunError> {
    type Block = (&'static str, Platform, Vec<(ToolKind, [f64; 8])>);
    let blocks: [Block; 3] = [
        (
            "SUN/Ethernet",
            Platform::SUN_ETHERNET,
            paper_data::table3_ethernet(),
        ),
        (
            "SUN/ATM LAN",
            Platform::SUN_ATM_LAN,
            paper_data::table3_atm_lan(),
        ),
        (
            "SUN/ATM WAN (NYNET)",
            Platform::SUN_ATM_WAN,
            paper_data::table3_atm_wan(),
        ),
    ];
    let mut body = String::new();
    for (name, platform, paper) in blocks {
        let _ = writeln!(body, "== {name} (ms, simulated/paper) ==");
        let mut headers = vec!["Mesg (KB)".to_string()];
        headers.extend(paper.iter().map(|(tool, _)| tool.to_string()));
        let mut t = TextTable::new(headers);
        let mut columns = Vec::new();
        for (tool, expected) in &paper {
            let cfg = SendRecvConfig::table3(platform, *tool);
            let pts = send_recv_sweep(&cfg)?;
            columns.push((pts, expected));
        }
        for (i, kb) in paper_data::TABLE3_SIZES_KB.iter().enumerate() {
            let mut row = vec![kb.to_string()];
            for (pts, expected) in &columns {
                row.push(format!("{:.2}/{:.2}", pts[i].millis, expected[i]));
            }
            t.row(row);
        }
        body.push_str(&t.render());
        body.push('\n');
    }
    Ok(Artifact::new(
        "table3",
        "Table 3: snd/recv timing for SUN SPARCstations (in milliseconds)",
        body,
    ))
}

/// Computes the measured tool ordering (best first) for one primitive on
/// one platform at a 64 KB payload.
fn ordering(
    platform: Platform,
    primitive: Primitive,
    tools: &[ToolKind],
) -> Result<Vec<(ToolKind, Option<f64>)>, RunError> {
    let mut times: Vec<(ToolKind, Option<f64>)> = Vec::new();
    for &tool in tools {
        let millis = match primitive {
            Primitive::Send | Primitive::Receive => Some(
                send_recv_sweep(&SendRecvConfig {
                    platform,
                    tool,
                    sizes_kb: vec![64],
                    iters: 1,
                })?[0]
                    .millis,
            ),
            Primitive::Broadcast => Some(
                broadcast_sweep(&BroadcastConfig {
                    platform,
                    tool,
                    nprocs: 4,
                    sizes_kb: vec![64],
                })?[0]
                    .millis,
            ),
            Primitive::Barrier => None,
            Primitive::GlobalSum => {
                match global_sum_sweep(&GlobalSumConfig {
                    platform,
                    tool,
                    nprocs: 4,
                    vector_sizes: vec![50_000],
                })? {
                    GlobalSumResult::Timed(pts) => Some(pts[0].millis),
                    GlobalSumResult::Unsupported(_) => None,
                }
            }
        };
        times.push((tool, millis));
    }
    let mut sorted = times;
    sorted.sort_by(|a, b| match (a.1, b.1) {
        (Some(x), Some(y)) => x.partial_cmp(&y).expect("finite times"),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });
    Ok(sorted)
}

fn ring_ordering(
    platform: Platform,
    tools: &[ToolKind],
) -> Result<Vec<(ToolKind, Option<f64>)>, RunError> {
    let mut times: Vec<(ToolKind, Option<f64>)> = Vec::new();
    for &tool in tools {
        let pts = ring_sweep(&RingConfig {
            platform,
            tool,
            nprocs: 4,
            sizes_kb: vec![64],
            shifts: 1,
        })?;
        times.push((tool, Some(pts[0].millis)));
    }
    times.sort_by(|a, b| {
        a.1.expect("timed")
            .partial_cmp(&b.1.expect("timed"))
            .expect("finite")
    });
    Ok(times)
}

/// Table 4: the per-primitive, per-platform tool ranking summary, derived
/// from fresh TPL runs, with the paper's orderings alongside.
///
/// # Errors
///
/// Returns [`RunError`] if any sweep fails.
pub fn table4() -> Result<Artifact, RunError> {
    let all = ToolKind::builtin();
    let wan_tools = [ToolKind::P4, ToolKind::PVM];

    let fmt_order = |xs: &[(ToolKind, Option<f64>)]| {
        xs.iter()
            .map(|(t, time)| match time {
                Some(_) => t.to_string(),
                None => format!("{t} (n/a)"),
            })
            .collect::<Vec<_>>()
            .join(" > ")
    };
    let fmt_paper = |xs: &[ToolKind]| {
        xs.iter()
            .map(ToolKind::to_string)
            .collect::<Vec<_>>()
            .join(" > ")
    };

    let mut t = TextTable::new(vec![
        "Platform",
        "Primitive",
        "Simulated (best first)",
        "Paper",
    ]);
    let eth = Platform::SUN_ETHERNET;
    let paper_eth = paper_data::table4_ethernet();
    t.row(vec![
        "SUN/Ethernet".to_string(),
        "snd/rcv".to_string(),
        fmt_order(&ordering(eth, Primitive::Send, &all)?),
        fmt_paper(&paper_eth[0].order),
    ]);
    t.row(vec![
        "SUN/Ethernet".to_string(),
        "broadcast".to_string(),
        fmt_order(&ordering(eth, Primitive::Broadcast, &all)?),
        fmt_paper(&paper_eth[1].order),
    ]);
    t.row(vec![
        "SUN/Ethernet".to_string(),
        "ring".to_string(),
        fmt_order(&ring_ordering(eth, &all)?),
        fmt_paper(&paper_eth[2].order),
    ]);
    t.row(vec![
        "SUN/Ethernet".to_string(),
        "global sum".to_string(),
        fmt_order(&ordering(eth, Primitive::GlobalSum, &all)?),
        fmt_paper(&paper_eth[3].order),
    ]);

    let paper_atm = paper_data::table4_atm();
    t.row(vec![
        "SUN/ATM".to_string(),
        "snd/rcv".to_string(),
        fmt_order(&ordering(Platform::SUN_ATM_LAN, Primitive::Send, &all)?),
        fmt_paper(&paper_atm[0].order),
    ]);
    t.row(vec![
        "SUN/ATM".to_string(),
        "broadcast".to_string(),
        fmt_order(&ordering(
            Platform::SUN_ATM_WAN,
            Primitive::Broadcast,
            &wan_tools,
        )?),
        fmt_paper(&paper_atm[1].order),
    ]);
    t.row(vec![
        "SUN/ATM".to_string(),
        "ring".to_string(),
        fmt_order(&ring_ordering(Platform::SUN_ATM_WAN, &wan_tools)?),
        fmt_paper(&paper_atm[2].order),
    ]);

    let mut body = t.render();
    body.push_str(
        "\nNote: the single known deviation is the Ethernet ring, where the\n\
         shared wire is the bottleneck in our model and masks PVM's daemon\n\
         serialization (the paper reports p4 > Express > PVM there; the\n\
         inversion is reproduced on switched fabrics). See EXPERIMENTS.md.\n",
    );
    Ok(Artifact::new(
        "table4",
        "Table 4: Summary of Tool Performance on different Platforms",
        body,
    ))
}

/// The §3.3.1 usability table (WS/PS/NS per criterion per tool).
pub fn table5() -> Artifact {
    let mut t = TextTable::new(vec!["Criterion", "P4", "PVM", "Express"]);
    let p4 = assessment(ToolKind::P4);
    let pvm = assessment(ToolKind::PVM);
    let ex = assessment(ToolKind::EXPRESS);
    for (i, c) in Criterion::all().into_iter().enumerate() {
        t.row(vec![
            c.name().to_string(),
            p4[i].1.code().to_string(),
            pvm[i].1.code().to_string(),
            ex[i].1.code().to_string(),
        ]);
    }
    Artifact::new(
        "table5",
        "Usability assessment (paper §3.3.1): WS = well / PS = partially / NS = not supported",
        t.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_marks_pvm_global_sum_unavailable() {
        let a = table1();
        assert!(a.body.contains("Not Available"));
        assert!(a.body.contains("excombine"));
        assert!(a.body.contains("p4_global_op"));
    }

    #[test]
    fn table2_lists_all_four_classes() {
        let a = table2();
        for class in ["Numerical", "Signal/Image", "Simulation", "Utilities"] {
            assert!(a.body.contains(class), "missing {class}");
        }
    }

    #[test]
    fn table5_matches_paper_cells() {
        let a = table5();
        assert!(a.body.contains("Customization"));
        // PVM's NS cell for customization and Express's NS for integration.
        let lines: Vec<&str> = a.body.lines().collect();
        let custom = lines.iter().find(|l| l.contains("Customization")).unwrap();
        assert!(custom.contains("NS"));
    }

    #[test]
    fn table3_runs_and_embeds_paper_values() {
        let a = table3().unwrap();
        assert!(a.body.contains("SUN/Ethernet"));
        assert!(a.body.contains("/189.12")); // paper PVM Ethernet 64KB
        assert!(a.body.contains("/35.90")); // paper p4 ATM LAN 64KB
    }

    #[test]
    fn table4_orderings_match_paper_except_ethernet_ring() {
        let all = ToolKind::builtin();
        // snd/rcv on both platforms: p4 > PVM > Express.
        for platform in [Platform::SUN_ETHERNET, Platform::SUN_ATM_LAN] {
            let o = ordering(platform, Primitive::Send, &all).unwrap();
            let tools: Vec<ToolKind> = o.iter().map(|(t, _)| *t).collect();
            assert_eq!(
                tools,
                vec![ToolKind::P4, ToolKind::PVM, ToolKind::EXPRESS],
                "{platform}"
            );
        }
        // Broadcast Ethernet: p4 > PVM > Express.
        let o = ordering(Platform::SUN_ETHERNET, Primitive::Broadcast, &all).unwrap();
        let tools: Vec<ToolKind> = o.iter().map(|(t, _)| *t).collect();
        assert_eq!(tools, vec![ToolKind::P4, ToolKind::PVM, ToolKind::EXPRESS]);
        // Global sum: p4 best, PVM not available (sorted last).
        let o = ordering(Platform::SUN_ETHERNET, Primitive::GlobalSum, &all).unwrap();
        assert_eq!(o[0].0, ToolKind::P4);
        assert_eq!(o[2], (ToolKind::PVM, None));
        // WAN ring: p4 > PVM (paper's ATM column).
        let o = ring_ordering(Platform::SUN_ATM_WAN, &[ToolKind::P4, ToolKind::PVM]).unwrap();
        assert_eq!(o[0].0, ToolKind::P4);
    }
}
