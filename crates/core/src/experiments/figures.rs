//! The paper's figures as regenerable artifacts (ASCII plots + CSV).

use super::Artifact;
use crate::apl::{app_sweep, figure_procs, AplApp, AplConfig, Scale};
use crate::report::{ascii_plot, to_csv, Series};
use crate::tpl::{
    broadcast_sweep, global_sum_sweep, ring_sweep, BroadcastConfig, GlobalSumConfig,
    GlobalSumResult, RingConfig,
};
use pdceval_mpt::error::RunError;
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;
use std::fmt::Write as _;

fn kb(points: &[crate::tpl::TimingPoint]) -> Vec<(f64, f64)> {
    points
        .iter()
        .map(|p| (p.size as f64 / 1024.0, p.millis))
        .collect()
}

/// Figure 2: broadcast timing among 4 SUNs, Ethernet and ATM WAN panes.
///
/// # Errors
///
/// Returns [`RunError`] if any sweep fails.
pub fn figure2() -> Result<Artifact, RunError> {
    let mut body = String::new();
    let mut all_series = Vec::new();
    for (pane, platform, tools) in [
        (
            "Broadcast Timing on Ethernet using 4 SUNs",
            Platform::SUN_ETHERNET,
            vec![ToolKind::PVM, ToolKind::P4, ToolKind::EXPRESS],
        ),
        (
            "Broadcast Timing on ATM WAN using 4 SUNs",
            Platform::SUN_ATM_WAN,
            vec![ToolKind::PVM, ToolKind::P4],
        ),
    ] {
        let mut series = Vec::new();
        for tool in tools {
            let pts = broadcast_sweep(&BroadcastConfig::figure2(platform, tool))?;
            series.push(Series::new(
                format!("{tool} ({})", platform.name()),
                kb(&pts),
            ));
        }
        body.push_str(&ascii_plot(pane, &series, 64, 16));
        body.push('\n');
        all_series.extend(series);
    }
    Ok(Artifact::new(
        "fig2",
        "Figure 2: Broadcast on SUN SPARCstations over Ethernet and ATM WAN (ms vs KB)",
        body,
    )
    .with_csv(to_csv(&all_series)))
}

/// Figure 3: ring ("all nodes send and receive") timing among 4 SUNs.
///
/// # Errors
///
/// Returns [`RunError`] if any sweep fails.
pub fn figure3() -> Result<Artifact, RunError> {
    let mut body = String::new();
    let mut all_series = Vec::new();
    for (pane, platform, tools) in [
        (
            "Ring(Loop) Timing on Ethernet using 4 SUNs",
            Platform::SUN_ETHERNET,
            vec![ToolKind::PVM, ToolKind::P4, ToolKind::EXPRESS],
        ),
        (
            "Ring(Loop) Timing on ATM WAN using 4 SUNs",
            Platform::SUN_ATM_WAN,
            vec![ToolKind::PVM, ToolKind::P4],
        ),
    ] {
        let mut series = Vec::new();
        for tool in tools {
            let pts = ring_sweep(&RingConfig::figure3(platform, tool))?;
            series.push(Series::new(
                format!("{tool} ({})", platform.name()),
                kb(&pts),
            ));
        }
        body.push_str(&ascii_plot(pane, &series, 64, 16));
        body.push('\n');
        all_series.extend(series);
    }
    Ok(Artifact::new(
        "fig3",
        "Figure 3: Ring communication on SUN SPARCstations over Ethernet and ATM WAN (ms vs KB)",
        body,
    )
    .with_csv(to_csv(&all_series)))
}

/// Figure 4: global vector summation among 4 SUNs — p4 and Express on
/// Ethernet plus p4 across NYNET; PVM is absent (no global operation).
///
/// # Errors
///
/// Returns [`RunError`] if any sweep fails.
pub fn figure4() -> Result<Artifact, RunError> {
    let mut series = Vec::new();
    for (label, platform, tool) in [
        ("p4", Platform::SUN_ETHERNET, ToolKind::P4),
        ("express", Platform::SUN_ETHERNET, ToolKind::EXPRESS),
        ("p4-NYNET", Platform::SUN_ATM_WAN, ToolKind::P4),
    ] {
        match global_sum_sweep(&GlobalSumConfig::figure4(platform, tool))? {
            GlobalSumResult::Timed(pts) => {
                series.push(Series::new(
                    label,
                    pts.iter().map(|p| (p.size as f64, p.millis)).collect(),
                ));
            }
            GlobalSumResult::Unsupported(e) => {
                panic!("unexpectedly unsupported: {e}");
            }
        }
    }
    let mut body = ascii_plot(
        "Vector Sum Timing 4 SUNs (ms vs #integers)",
        &series,
        64,
        16,
    );
    let _ = writeln!(
        body,
        "\nPVM: Not Available (no global operation; paper Table 1)."
    );
    Ok(Artifact::new(
        "fig4",
        "Figure 4: Global summation on SUN SPARCstations",
        body,
    )
    .with_csv(to_csv(&series)))
}

fn app_figure(
    id: &'static str,
    title: &str,
    platform: Platform,
    tools: &[ToolKind],
    scale: Scale,
) -> Result<Artifact, RunError> {
    let procs = figure_procs(platform);
    let mut body = String::new();
    let mut all_series = Vec::new();
    for app in AplApp::all() {
        let mut series = Vec::new();
        for &tool in tools {
            let pts = app_sweep(&AplConfig {
                app,
                platform,
                tool,
                procs: procs.clone(),
                scale,
            })?;
            series.push(Series::new(
                format!("{tool}/{}", app.title()),
                pts.iter().map(|p| (p.procs as f64, p.seconds)).collect(),
            ));
        }
        body.push_str(&ascii_plot(
            &format!(
                "{} on {} (seconds vs processors)",
                app.title(),
                platform.name()
            ),
            &series,
            56,
            12,
        ));
        body.push('\n');
        all_series.extend(series);
    }
    Ok(Artifact::new(id, title.to_string(), body).with_csv(to_csv(&all_series)))
}

/// Figure 5: application performance on ALPHA/FDDI (all three tools,
/// P = 1..8).
///
/// # Errors
///
/// Returns [`RunError`] if any run fails.
pub fn figure5(scale: Scale) -> Result<Artifact, RunError> {
    app_figure(
        "fig5",
        "Figure 5: Application Performances on ALPHA/FDDI",
        Platform::ALPHA_FDDI,
        &ToolKind::builtin(),
        scale,
    )
}

/// Figure 6: application performance on the IBM-SP1 crossbar switch.
///
/// # Errors
///
/// Returns [`RunError`] if any run fails.
pub fn figure6(scale: Scale) -> Result<Artifact, RunError> {
    app_figure(
        "fig6",
        "Figure 6: Application Performances on IBM-SP1 with crossbar switch",
        Platform::SP1_SWITCH,
        &ToolKind::builtin(),
        scale,
    )
}

/// Figure 7: application performance across the NYNET ATM WAN (p4 and
/// PVM only — Express had no NYNET port — and P = 1..4).
///
/// # Errors
///
/// Returns [`RunError`] if any run fails.
pub fn figure7(scale: Scale) -> Result<Artifact, RunError> {
    app_figure(
        "fig7",
        "Figure 7: Application Performances on SUN/ATM-WAN (NYNET)",
        Platform::SUN_ATM_WAN,
        &[ToolKind::P4, ToolKind::PVM],
        scale,
    )
}

/// Figure 8: application performance on SUN/Ethernet.
///
/// # Errors
///
/// Returns [`RunError`] if any run fails.
pub fn figure8(scale: Scale) -> Result<Artifact, RunError> {
    app_figure(
        "fig8",
        "Figure 8: Application Performances on SUN/Ethernet",
        Platform::SUN_ETHERNET,
        &ToolKind::builtin(),
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_plots_three_series_without_pvm() {
        let a = figure4().unwrap();
        assert!(a.body.contains("p4-NYNET"));
        assert!(a.body.contains("Not Available"));
        let csv = a.csv.expect("figure csv");
        assert!(csv.starts_with("x,p4,express,p4-NYNET"));
    }

    #[test]
    fn figure7_runs_quick_without_express() {
        let a = figure7(Scale::Quick).unwrap();
        assert!(
            !a.body.contains("Express"),
            "Express must be absent on NYNET"
        );
        assert!(a.body.contains("p4"));
        assert!(a.csv.is_some());
    }

    #[test]
    fn figure5_quick_has_all_four_panes() {
        let a = figure5(Scale::Quick).unwrap();
        for pane in [
            "2D-FFT",
            "JPEG Simulation",
            "Monte Carlo Integration",
            "Sorting by Sampling",
        ] {
            assert!(a.body.contains(pane), "missing {pane}");
        }
    }
}
