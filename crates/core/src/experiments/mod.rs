//! The paper's evaluation section as regenerable experiments.
//!
//! Every table and figure of the paper (Tables 1-4, the §3.3.1 usability
//! table, Figures 2-8) has a function here that runs the corresponding
//! workloads on the simulated testbed and renders the artifact, with the
//! paper's published values embedded for side-by-side comparison.
//!
//! | Id | Artifact |
//! |----|----------|
//! | `table1` | Communication primitives per tool |
//! | `table2` | SU PDABS application catalog |
//! | `table3` | snd/rcv timings, SUN workstations |
//! | `fig2` | Broadcast timing, 4 SUNs |
//! | `fig3` | Ring timing, 4 SUNs |
//! | `fig4` | Global vector sum, 4 SUNs |
//! | `table4` | Tool-performance ranking summary |
//! | `fig5`..`fig8` | Application performance on the four platforms |
//! | `table5` | Usability (ADL) assessment |

pub mod paper_data;

mod figures;
mod tables;

pub use figures::{figure2, figure3, figure4, figure5, figure6, figure7, figure8};
pub use tables::{table1, table2, table3, table4, table5};

use crate::apl::Scale;
use pdceval_mpt::error::RunError;

/// A rendered experiment artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Stable identifier (`"table3"`, `"fig5"`, ...).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Rendered text body (tables, plots, paper-vs-measured notes).
    pub body: String,
    /// Machine-readable data series, if the artifact is a figure.
    pub csv: Option<String>,
}

impl Artifact {
    pub(crate) fn new(id: &'static str, title: impl Into<String>, body: String) -> Artifact {
        Artifact {
            id,
            title: title.into(),
            body,
            csv: None,
        }
    }

    pub(crate) fn with_csv(mut self, csv: String) -> Artifact {
        self.csv = Some(csv);
        self
    }
}

/// Runs every experiment, in the paper's presentation order.
///
/// # Errors
///
/// Returns the first [`RunError`] encountered.
pub fn run_all(scale: Scale) -> Result<Vec<Artifact>, RunError> {
    Ok(vec![
        table1(),
        table2(),
        table3()?,
        figure2()?,
        figure3()?,
        figure4()?,
        table4()?,
        figure5(scale)?,
        figure6(scale)?,
        figure7(scale)?,
        figure8(scale)?,
        table5(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_ids_are_unique() {
        // Static artifacts only (performance ones are covered in their
        // own modules and the integration suite).
        let ids = [table1().id, table2().id, table5().id];
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
