//! The paper's published numbers, embedded for side-by-side comparison.
//!
//! Table 3 values are transcribed exactly. Figure values are approximate
//! endpoint readings off the published charts (the paper prints no
//! numeric tables for its figures) and are used only for order-of-
//! magnitude and shape comparisons in `EXPERIMENTS.md`.

use pdceval_mpt::ToolKind;

/// Message sizes of Table 3, in kilobytes.
pub const TABLE3_SIZES_KB: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// Table 3, SUN/Ethernet (milliseconds): `(tool, timings)`.
pub fn table3_ethernet() -> Vec<(ToolKind, [f64; 8])> {
    vec![
        (
            ToolKind::PVM,
            [
                9.655, 11.693, 14.306, 25.537, 44.392, 61.096, 109.844, 189.120,
            ],
        ),
        (
            ToolKind::P4,
            [3.199, 3.599, 4.399, 9.332, 24.165, 44.164, 98.996, 173.158],
        ),
        (
            ToolKind::EXPRESS,
            [
                4.807, 10.375, 18.362, 32.669, 59.166, 111.411, 189.760, 311.700,
            ],
        ),
    ]
}

/// Table 3, SUN/ATM LAN (milliseconds).
pub fn table3_atm_lan() -> Vec<(ToolKind, [f64; 8])> {
    vec![
        (
            ToolKind::PVM,
            [7.991, 8.678, 9.896, 13.673, 18.574, 27.365, 48.028, 88.176],
        ),
        (
            ToolKind::P4,
            [2.966, 3.393, 3.748, 4.404, 6.482, 11.191, 19.104, 35.899],
        ),
        (
            ToolKind::EXPRESS,
            [
                4.152, 7.240, 11.061, 16.990, 27.047, 46.003, 82.566, 153.970,
            ],
        ),
    ]
}

/// Table 3, SUN/ATM WAN (milliseconds); Express had no NYNET port.
pub fn table3_atm_wan() -> Vec<(ToolKind, [f64; 8])> {
    vec![
        (
            ToolKind::PVM,
            [7.764, 8.878, 10.105, 14.665, 19.526, 28.679, 53.320, 91.353],
        ),
        (
            ToolKind::P4,
            [3.636, 4.168, 4.822, 5.069, 7.459, 13.573, 22.254, 41.725],
        ),
    ]
}

/// Table 4: the paper's per-primitive tool orderings (best first).
pub struct Table4Paper {
    /// Column label.
    pub column: &'static str,
    /// Ordering, best first.
    pub order: Vec<ToolKind>,
}

/// The paper's Table 4, SUN/Ethernet block.
pub fn table4_ethernet() -> Vec<Table4Paper> {
    vec![
        Table4Paper {
            column: "snd/rcv",
            order: vec![ToolKind::P4, ToolKind::PVM, ToolKind::EXPRESS],
        },
        Table4Paper {
            column: "broadcast",
            order: vec![ToolKind::P4, ToolKind::PVM, ToolKind::EXPRESS],
        },
        Table4Paper {
            column: "ring",
            order: vec![ToolKind::P4, ToolKind::EXPRESS, ToolKind::PVM],
        },
        Table4Paper {
            column: "global sum",
            order: vec![ToolKind::P4, ToolKind::EXPRESS],
        },
    ]
}

/// The paper's Table 4, SUN/ATM block.
pub fn table4_atm() -> Vec<Table4Paper> {
    vec![
        Table4Paper {
            column: "snd/rcv",
            order: vec![ToolKind::P4, ToolKind::PVM, ToolKind::EXPRESS],
        },
        Table4Paper {
            column: "broadcast",
            order: vec![ToolKind::P4, ToolKind::PVM],
        },
        Table4Paper {
            column: "ring",
            order: vec![ToolKind::P4, ToolKind::PVM],
        },
    ]
}

/// Approximate chart endpoint readings for the figures (milliseconds for
/// Figures 2-4, seconds for Figures 5-8): `(series, at_max_x)`.
pub fn figure_endpoints() -> Vec<(&'static str, f64)> {
    vec![
        // Figure 2, Ethernet broadcast at 64 KB (4 SUNs).
        ("fig2/ethernet/PVM@64KB (ms)", 450.0),
        ("fig2/ethernet/Express@64KB (ms)", 560.0),
        // Figure 3, Ethernet ring at 64 KB.
        ("fig3/ethernet/PVM@64KB (ms)", 700.0),
        // Figure 4, Ethernet global sum at 100k integers.
        ("fig4/ethernet/p4@100k (ms)", 6000.0),
        ("fig4/ethernet/express@100k (ms)", 11000.0),
        // Figure 5, ALPHA/FDDI at P=1.
        ("fig5/jpeg/P1 (s)", 4.2),
        ("fig5/montecarlo/P1 (s)", 1.8),
        ("fig5/sorting/P1 (s)", 0.55),
        // Figure 6, SP-1 at P=1.
        ("fig6/jpeg/P1 (s)", 9.5),
        // Figure 7, NYNET at P=1.
        ("fig7/jpeg/P1 (s)", 21.0),
        // Figure 8, Ethernet at P=1.
        ("fig8/jpeg/P1 (s)", 38.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_are_monotonic_in_size() {
        for (_, row) in table3_ethernet()
            .into_iter()
            .chain(table3_atm_lan())
            .chain(table3_atm_wan())
        {
            assert!(row.windows(2).all(|w| w[0] < w[1]), "{row:?}");
        }
    }

    #[test]
    fn paper_orderings_start_with_p4() {
        for block in [table4_ethernet(), table4_atm()] {
            for col in block {
                assert_eq!(col.order[0], ToolKind::P4, "{}", col.column);
            }
        }
    }
}
