//! Application Performance Level (APL) benchmarks — the paper's §2.2 /
//! §3.3.
//!
//! Runs the four benchmarked SU PDABS applications (JPEG compression,
//! 2D-FFT, Monte Carlo integration, PSRS sorting) across processor counts
//! on each platform, producing the execution-time-vs-processors series of
//! Figures 5-8.

use pdceval_apps::fft::Fft2d;
use pdceval_apps::jpeg::JpegCompression;
use pdceval_apps::monte_carlo::MonteCarlo;
use pdceval_apps::psrs::PsrsSort;
use pdceval_apps::workload::run_workload;
use pdceval_mpt::error::RunError;
use pdceval_mpt::runtime::SpmdConfig;
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;
use std::fmt;

/// The four applications of the paper's §3.3, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AplApp {
    /// 2D Fast Fourier Transform.
    Fft,
    /// JPEG compression ("JPEG Simulation" in the figures).
    Jpeg,
    /// Monte Carlo integration.
    MonteCarlo,
    /// Parallel Sorting by Regular Sampling.
    Sorting,
}

impl AplApp {
    /// All four, in the order the paper's figure panes appear.
    pub fn all() -> [AplApp; 4] {
        [
            AplApp::Fft,
            AplApp::Jpeg,
            AplApp::MonteCarlo,
            AplApp::Sorting,
        ]
    }

    /// Pane title as used in the paper's figures.
    pub fn title(&self) -> &'static str {
        match self {
            AplApp::Fft => "2D-FFT",
            AplApp::Jpeg => "JPEG Simulation",
            AplApp::MonteCarlo => "Monte Carlo Integration",
            AplApp::Sorting => "Sorting by Sampling",
        }
    }
}

impl fmt::Display for AplApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// Workload scale: the paper's sizes, or reduced sizes for fast tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The calibrated paper-scale workloads.
    Paper,
    /// Small workloads for quick runs and tests (same shapes, less time).
    Quick,
}

/// Configuration of one APL sweep (one pane of one figure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AplConfig {
    /// The application.
    pub app: AplApp,
    /// The testbed.
    pub platform: Platform,
    /// The tool.
    pub tool: ToolKind,
    /// Processor counts to sweep.
    pub procs: Vec<usize>,
    /// Workload scale.
    pub scale: Scale,
}

/// One measured point: processor count and execution time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AplPoint {
    /// Number of processors.
    pub procs: usize,
    /// Simulated execution time in seconds.
    pub seconds: f64,
}

/// The processor counts of the paper's figures for a platform
/// (1..=8 generally, 1..=4 on the NYNET WAN).
pub fn figure_procs(platform: Platform) -> Vec<usize> {
    let max = platform.max_nodes().min(8);
    (1..=max).collect()
}

/// Runs one application sweep.
///
/// # Errors
///
/// Returns [`RunError`] if the tool/platform combination is unsupported
/// or any run fails.
pub fn app_sweep(cfg: &AplConfig) -> Result<Vec<AplPoint>, RunError> {
    let mut points = Vec::with_capacity(cfg.procs.len());
    for &procs in &cfg.procs {
        let run_cfg = SpmdConfig::new(cfg.platform, cfg.tool, procs);
        let seconds = run_app(cfg.app, cfg.scale, &run_cfg)?;
        points.push(AplPoint { procs, seconds });
    }
    Ok(points)
}

fn run_app(app: AplApp, scale: Scale, cfg: &SpmdConfig) -> Result<f64, RunError> {
    let elapsed = match (app, scale) {
        (AplApp::Jpeg, Scale::Paper) => run_workload(&JpegCompression::paper(), cfg)?.elapsed,
        (AplApp::Jpeg, Scale::Quick) => {
            run_workload(
                &JpegCompression {
                    width: 128,
                    height: 128,
                    seed: 9,
                },
                cfg,
            )?
            .elapsed
        }
        (AplApp::Fft, Scale::Paper) => run_workload(&Fft2d::paper(), cfg)?.elapsed,
        (AplApp::Fft, Scale::Quick) => run_workload(&Fft2d { n: 32, seed: 5 }, cfg)?.elapsed,
        (AplApp::MonteCarlo, Scale::Paper) => run_workload(&MonteCarlo::paper(), cfg)?.elapsed,
        (AplApp::MonteCarlo, Scale::Quick) => {
            run_workload(
                &MonteCarlo {
                    samples: 50_000,
                    seed: 77,
                },
                cfg,
            )?
            .elapsed
        }
        (AplApp::Sorting, Scale::Paper) => run_workload(&PsrsSort::paper(), cfg)?.elapsed,
        (AplApp::Sorting, Scale::Quick) => {
            run_workload(
                &PsrsSort {
                    keys: 20_000,
                    seed: 11,
                },
                cfg,
            )?
            .elapsed
        }
    };
    Ok(elapsed.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_procs_respect_platform_limits() {
        assert_eq!(
            figure_procs(Platform::AlphaFddi),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
        assert_eq!(figure_procs(Platform::SunAtmWan), vec![1, 2, 3, 4]);
    }

    #[test]
    fn jpeg_scales_down_with_processors() {
        let cfg = AplConfig {
            app: AplApp::Jpeg,
            platform: Platform::AlphaFddi,
            tool: ToolKind::P4,
            procs: vec![1, 4],
            scale: Scale::Paper,
        };
        let pts = app_sweep(&cfg).unwrap();
        assert!(pts[1].seconds < pts[0].seconds * 0.5, "{pts:?}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = AplConfig {
            app: AplApp::MonteCarlo,
            platform: Platform::Sp1Switch,
            tool: ToolKind::Express,
            procs: vec![2],
            scale: Scale::Quick,
        };
        assert_eq!(app_sweep(&cfg).unwrap(), app_sweep(&cfg).unwrap());
    }

    #[test]
    fn express_sweep_fails_on_wan() {
        let cfg = AplConfig {
            app: AplApp::Fft,
            platform: Platform::SunAtmWan,
            tool: ToolKind::Express,
            procs: vec![1],
            scale: Scale::Quick,
        };
        assert!(app_sweep(&cfg).is_err());
    }
}
