//! Application Performance Level (APL) benchmarks — the paper's §2.2 /
//! §3.3.
//!
//! Runs the four benchmarked SU PDABS applications (JPEG compression,
//! 2D-FFT, Monte Carlo integration, PSRS sorting) across processor counts
//! on each platform, producing the execution-time-vs-processors series of
//! Figures 5-8.
//!
//! The series are generated through the campaign engine
//! ([`pdceval_campaign`]): an [`AplConfig`] declares one figure pane as a
//! scenario list, and a [`pdceval_campaign::Executor`] executes it with
//! the simulated cluster skeleton reused across processor counts.

use pdceval_campaign::exec::Executor;
use pdceval_campaign::scenario::{Kernel, Scenario};
use pdceval_mpt::error::RunError;
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

pub use pdceval_campaign::campaigns::figure_procs;
pub use pdceval_campaign::scenario::{AplApp, Scale};

/// Configuration of one APL sweep (one pane of one figure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AplConfig {
    /// The application.
    pub app: AplApp,
    /// The testbed.
    pub platform: Platform,
    /// The tool.
    pub tool: ToolKind,
    /// Processor counts to sweep.
    pub procs: Vec<usize>,
    /// Workload scale.
    pub scale: Scale,
}

impl AplConfig {
    /// The campaign scenarios this sweep declares, one per processor
    /// count.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.procs
            .iter()
            .map(|&procs| Scenario {
                kernel: Kernel::App {
                    app: self.app,
                    scale: self.scale,
                },
                tool: self.tool,
                platform: self.platform,
                nprocs: procs,
                size: 0,
                reps: 1,
                perturb: None,
            })
            .collect()
    }
}

/// One measured point: processor count and execution time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AplPoint {
    /// Number of processors.
    pub procs: usize,
    /// Simulated execution time in seconds.
    pub seconds: f64,
}

/// Runs one application sweep.
///
/// # Errors
///
/// Returns [`RunError`] if the tool/platform combination is unsupported
/// or any run fails.
pub fn app_sweep(cfg: &AplConfig) -> Result<Vec<AplPoint>, RunError> {
    let mut exec = Executor::new();
    let mut points = Vec::with_capacity(cfg.procs.len());
    for sc in cfg.scenarios() {
        let outcome = exec.run(&sc)?;
        let seconds = outcome
            .value()
            .expect("application kernels always produce a value");
        points.push(AplPoint {
            procs: sc.nprocs,
            seconds,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_procs_respect_platform_limits() {
        assert_eq!(
            figure_procs(Platform::ALPHA_FDDI),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
        assert_eq!(figure_procs(Platform::SUN_ATM_WAN), vec![1, 2, 3, 4]);
    }

    #[test]
    fn jpeg_scales_down_with_processors() {
        let cfg = AplConfig {
            app: AplApp::Jpeg,
            platform: Platform::ALPHA_FDDI,
            tool: ToolKind::P4,
            procs: vec![1, 4],
            scale: Scale::Paper,
        };
        let pts = app_sweep(&cfg).unwrap();
        assert!(pts[1].seconds < pts[0].seconds * 0.5, "{pts:?}");
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = AplConfig {
            app: AplApp::MonteCarlo,
            platform: Platform::SP1_SWITCH,
            tool: ToolKind::EXPRESS,
            procs: vec![2],
            scale: Scale::Quick,
        };
        assert_eq!(app_sweep(&cfg).unwrap(), app_sweep(&cfg).unwrap());
    }

    #[test]
    fn express_sweep_fails_on_wan() {
        let cfg = AplConfig {
            app: AplApp::Fft,
            platform: Platform::SUN_ATM_WAN,
            tool: ToolKind::EXPRESS,
            procs: vec![1],
            scale: Scale::Quick,
        };
        assert!(app_sweep(&cfg).is_err());
    }
}
