//! Tool Performance Level (TPL) benchmarks — the paper's §2.1 / §3.2.
//!
//! The TPL evaluates the tools' communication primitives directly:
//!
//! * [`sendrecv`] — point-to-point echo (Table 3);
//! * [`broadcast`] — one-to-many broadcast among 4 nodes (Figure 2);
//! * [`ring`] — simultaneous ring shift, "all nodes send and receive"
//!   (Figure 3);
//! * [`globalsum`] — global vector summation (Figure 4).
//!
//! All benchmarks return [`TimingPoint`] series of simulated execution
//! time versus message/vector size.

pub mod broadcast;
pub mod globalsum;
pub mod ring;
pub mod sendrecv;

pub use broadcast::{broadcast_sweep, BroadcastConfig};
pub use globalsum::{global_sum_sweep, GlobalSumConfig, GlobalSumResult};
pub use ring::{ring_sweep, RingConfig};
pub use sendrecv::{send_recv_sweep, SendRecvConfig};

/// One measured point of a TPL sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingPoint {
    /// Message size in bytes (or vector length in elements, for the
    /// global-sum benchmark).
    pub size: u64,
    /// Simulated execution time in milliseconds.
    pub millis: f64,
}

impl TimingPoint {
    /// Creates a timing point.
    pub fn new(size: u64, millis: f64) -> TimingPoint {
        TimingPoint { size, millis }
    }
}

/// The message sizes of the paper's Table 3, in kilobytes:
/// 0, 1, 2, 4, 8, 16, 32, 64. Derived from the campaign engine's
/// canonical byte list so sweeps and declared campaigns cannot drift.
pub fn table3_sizes_kb() -> Vec<u64> {
    pdceval_campaign::campaigns::table3_sizes_bytes()
        .into_iter()
        .map(|b| b / 1024)
        .collect()
}

/// Asserts a size series is strictly increasing in time — used by tests.
pub fn is_monotonic(points: &[TimingPoint]) -> bool {
    points.windows(2).all(|w| w[0].millis <= w[1].millis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sizes_match_paper() {
        assert_eq!(table3_sizes_kb(), vec![0, 1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn monotonicity_helper() {
        let up = vec![TimingPoint::new(0, 1.0), TimingPoint::new(1, 2.0)];
        let down = vec![TimingPoint::new(0, 2.0), TimingPoint::new(1, 1.0)];
        assert!(is_monotonic(&up));
        assert!(!is_monotonic(&down));
    }
}
