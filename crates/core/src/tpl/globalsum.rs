//! Global summation benchmark (paper §3.2.4, Figure 4).
//!
//! Four nodes sum integer vectors of increasing length. p4's
//! `p4_global_op` reduces along a tree; Express's `excombine` accumulates
//! around a sequential ring; PVM has no global operation and is therefore
//! absent from the paper's Figure 4 (and reported as unsupported here).

use super::TimingPoint;
use pdceval_mpt::error::{RunError, ToolError};
use pdceval_mpt::runtime::{run_spmd, SpmdConfig};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// Configuration of a global-sum sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSumConfig {
    /// The testbed.
    pub platform: Platform,
    /// The tool under test.
    pub tool: ToolKind,
    /// Number of participating nodes (the paper uses 4 SUNs).
    pub nprocs: usize,
    /// Vector lengths in number of `i32` elements.
    pub vector_sizes: Vec<u64>,
}

impl GlobalSumConfig {
    /// The paper's Figure 4 configuration: 4 nodes, vectors up to 100 000
    /// integers.
    pub fn figure4(platform: Platform, tool: ToolKind) -> GlobalSumConfig {
        GlobalSumConfig {
            platform,
            tool,
            nprocs: 4,
            vector_sizes: vec![1_000, 10_000, 25_000, 50_000, 75_000, 100_000],
        }
    }
}

/// Outcome of a global-sum sweep: either timings, or the tool's lack of
/// the primitive (PVM — "Not Available" in the paper's Table 1).
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalSumResult {
    /// The tool supports global summation; per-size timings follow.
    Timed(Vec<TimingPoint>),
    /// The tool has no global-summation primitive.
    Unsupported(ToolError),
}

/// Runs the sweep.
///
/// # Errors
///
/// Returns [`RunError`] if the platform rejects the tool or the
/// simulation fails; a missing primitive is reported in the result, not
/// as an error.
pub fn global_sum_sweep(cfg: &GlobalSumConfig) -> Result<GlobalSumResult, RunError> {
    if !cfg.tool.supports_global_ops() {
        return Ok(GlobalSumResult::Unsupported(ToolError::Unsupported {
            tool: cfg.tool,
            op: "global sum",
        }));
    }
    let mut points = Vec::with_capacity(cfg.vector_sizes.len());
    for &n in &cfg.vector_sizes {
        let run_cfg = SpmdConfig::new(cfg.platform, cfg.tool, cfg.nprocs);
        let nprocs = cfg.nprocs as i32;
        let out = run_spmd(&run_cfg, move |node| {
            let mine: Vec<i32> = (0..n as i32).map(|i| i + node.rank() as i32).collect();
            let sum = node.global_sum_i32(&mine).expect("global sum failed");
            // Element 0 must be the sum of all ranks' first elements.
            let expect: i32 = (0..nprocs).sum();
            assert_eq!(sum[0], expect, "global sum incorrect");
            node.now().as_millis_f64()
        })?;
        let done = out.results.iter().cloned().fold(0.0, f64::max);
        points.push(TimingPoint::new(n, done));
    }
    Ok(GlobalSumResult::Timed(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timed(tool: ToolKind, platform: Platform, n: u64) -> f64 {
        match global_sum_sweep(&GlobalSumConfig {
            platform,
            tool,
            nprocs: 4,
            vector_sizes: vec![n],
        })
        .unwrap()
        {
            GlobalSumResult::Timed(pts) => pts[0].millis,
            GlobalSumResult::Unsupported(_) => panic!("expected timings"),
        }
    }

    #[test]
    fn p4_tree_beats_express_ring() {
        // Paper Figure 4: p4's implementation is better than Express's.
        let p4 = timed(ToolKind::P4, Platform::SunEthernet, 50_000);
        let ex = timed(ToolKind::Express, Platform::SunEthernet, 50_000);
        assert!(p4 < ex, "p4 {p4} !< express {ex}");
    }

    #[test]
    fn pvm_reports_not_available() {
        let r = global_sum_sweep(&GlobalSumConfig::figure4(
            Platform::SunEthernet,
            ToolKind::Pvm,
        ))
        .unwrap();
        assert!(matches!(r, GlobalSumResult::Unsupported(_)));
    }

    #[test]
    fn wan_slower_than_lan_for_large_vectors() {
        // Figure 4 also plots p4 on NYNET: similar shape, higher times.
        let lan = timed(ToolKind::P4, Platform::SunAtmLan, 100_000);
        let wan = timed(ToolKind::P4, Platform::SunAtmWan, 100_000);
        assert!(wan > lan, "wan {wan} !> lan {lan}");
    }

    #[test]
    fn time_grows_with_vector_size() {
        let small = timed(ToolKind::P4, Platform::SunEthernet, 1_000);
        let large = timed(ToolKind::P4, Platform::SunEthernet, 100_000);
        assert!(large > 10.0 * small, "small {small}, large {large}");
    }
}
