//! Global summation benchmark (paper §3.2.4, Figure 4).
//!
//! Four nodes sum integer vectors of increasing length. p4's
//! `p4_global_op` reduces along a tree; Express's `excombine` accumulates
//! around a sequential ring; PVM has no global operation and is therefore
//! absent from the paper's Figure 4 (and reported as unsupported here).

use super::TimingPoint;
use pdceval_campaign::exec::{Executor, PointOutcome};
use pdceval_campaign::scenario::{Kernel, Scenario};
use pdceval_mpt::error::{RunError, ToolError};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// Configuration of a global-sum sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSumConfig {
    /// The testbed.
    pub platform: Platform,
    /// The tool under test.
    pub tool: ToolKind,
    /// Number of participating nodes (the paper uses 4 SUNs).
    pub nprocs: usize,
    /// Vector lengths in number of `i32` elements.
    pub vector_sizes: Vec<u64>,
}

impl GlobalSumConfig {
    /// The paper's Figure 4 configuration: 4 nodes, vectors up to 100 000
    /// integers (the campaign engine's canonical size list).
    pub fn figure4(platform: Platform, tool: ToolKind) -> GlobalSumConfig {
        GlobalSumConfig {
            platform,
            tool,
            nprocs: 4,
            vector_sizes: pdceval_campaign::campaigns::figure4_vector_sizes(),
        }
    }

    /// The campaign scenarios this sweep declares, one per vector size.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.vector_sizes
            .iter()
            .map(|&n| Scenario {
                kernel: Kernel::GlobalSum,
                tool: self.tool,
                platform: self.platform,
                nprocs: self.nprocs,
                size: n,
                reps: 1,
                perturb: None,
            })
            .collect()
    }
}

/// Outcome of a global-sum sweep: either timings, or the tool's lack of
/// the primitive (PVM — "Not Available" in the paper's Table 1).
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalSumResult {
    /// The tool supports global summation; per-size timings follow.
    Timed(Vec<TimingPoint>),
    /// The tool has no global-summation primitive.
    Unsupported(ToolError),
}

/// Runs the sweep.
///
/// # Errors
///
/// Returns [`RunError`] if the platform rejects the tool or the
/// simulation fails; a missing primitive is reported in the result, not
/// as an error.
pub fn global_sum_sweep(cfg: &GlobalSumConfig) -> Result<GlobalSumResult, RunError> {
    if !cfg.tool.supports_global_ops() {
        return Ok(GlobalSumResult::Unsupported(ToolError::Unsupported {
            tool: cfg.tool,
            op: "global sum",
        }));
    }
    let mut exec = Executor::new();
    let mut points = Vec::with_capacity(cfg.vector_sizes.len());
    for sc in cfg.scenarios() {
        match exec.run(&sc)? {
            PointOutcome::Value(done) => points.push(TimingPoint::new(sc.size, done)),
            PointOutcome::Unsupported(e) => return Ok(GlobalSumResult::Unsupported(e)),
        }
    }
    Ok(GlobalSumResult::Timed(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timed(tool: ToolKind, platform: Platform, n: u64) -> f64 {
        match global_sum_sweep(&GlobalSumConfig {
            platform,
            tool,
            nprocs: 4,
            vector_sizes: vec![n],
        })
        .unwrap()
        {
            GlobalSumResult::Timed(pts) => pts[0].millis,
            GlobalSumResult::Unsupported(_) => panic!("expected timings"),
        }
    }

    #[test]
    fn p4_tree_beats_express_ring() {
        // Paper Figure 4: p4's implementation is better than Express's.
        let p4 = timed(ToolKind::P4, Platform::SUN_ETHERNET, 50_000);
        let ex = timed(ToolKind::EXPRESS, Platform::SUN_ETHERNET, 50_000);
        assert!(p4 < ex, "p4 {p4} !< express {ex}");
    }

    #[test]
    fn pvm_reports_not_available() {
        let r = global_sum_sweep(&GlobalSumConfig::figure4(
            Platform::SUN_ETHERNET,
            ToolKind::PVM,
        ))
        .unwrap();
        assert!(matches!(r, GlobalSumResult::Unsupported(_)));
    }

    #[test]
    fn wan_slower_than_lan_for_large_vectors() {
        // Figure 4 also plots p4 on NYNET: similar shape, higher times.
        let lan = timed(ToolKind::P4, Platform::SUN_ATM_LAN, 100_000);
        let wan = timed(ToolKind::P4, Platform::SUN_ATM_WAN, 100_000);
        assert!(wan > lan, "wan {wan} !> lan {lan}");
    }

    #[test]
    fn time_grows_with_vector_size() {
        let small = timed(ToolKind::P4, Platform::SUN_ETHERNET, 1_000);
        let large = timed(ToolKind::P4, Platform::SUN_ETHERNET, 100_000);
        assert!(large > 10.0 * small, "small {small}, large {large}");
    }
}
