//! Broadcast benchmark (paper §3.2.2, Figure 2).
//!
//! Rank 0 broadcasts a message of each size among 4 nodes; the reported
//! time is from the start of the operation until the *last* node holds
//! the payload — what the paper's "execution time for broadcasting"
//! measures. The series is generated through the campaign engine.

use super::TimingPoint;
use pdceval_campaign::exec::Executor;
use pdceval_campaign::scenario::{Kernel, Scenario};
use pdceval_mpt::error::RunError;
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// Configuration of a broadcast sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastConfig {
    /// The testbed.
    pub platform: Platform,
    /// The tool under test.
    pub tool: ToolKind,
    /// Number of participating nodes (the paper uses 4 SUNs).
    pub nprocs: usize,
    /// Message sizes in kilobytes.
    pub sizes_kb: Vec<u64>,
}

impl BroadcastConfig {
    /// The paper's Figure 2 configuration: 4 nodes, Table 3 sizes.
    pub fn figure2(platform: Platform, tool: ToolKind) -> BroadcastConfig {
        BroadcastConfig {
            platform,
            tool,
            nprocs: 4,
            sizes_kb: super::table3_sizes_kb(),
        }
    }

    /// The campaign scenarios this sweep declares, one per message size.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.sizes_kb
            .iter()
            .map(|&kb| Scenario {
                kernel: Kernel::Broadcast,
                tool: self.tool,
                platform: self.platform,
                nprocs: self.nprocs,
                size: kb * 1024,
                reps: 1,
                perturb: None,
            })
            .collect()
    }
}

/// Runs the sweep, returning broadcast completion times per message size.
///
/// # Errors
///
/// Returns [`RunError`] if the tool/platform combination is unsupported
/// or the simulation fails.
pub fn broadcast_sweep(cfg: &BroadcastConfig) -> Result<Vec<TimingPoint>, RunError> {
    let mut exec = Executor::new();
    cfg.scenarios()
        .iter()
        .map(|sc| {
            let done = exec
                .run(sc)?
                .value()
                .expect("broadcast kernels always produce a value");
            Ok(TimingPoint::new(sc.size, done))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpl::is_monotonic;

    #[test]
    fn p4_tree_beats_pvm_sequential_on_atm() {
        let sizes = vec![16, 64];
        let p4 = broadcast_sweep(&BroadcastConfig {
            platform: Platform::SUN_ATM_LAN,
            tool: ToolKind::P4,
            nprocs: 4,
            sizes_kb: sizes.clone(),
        })
        .unwrap();
        let pvm = broadcast_sweep(&BroadcastConfig {
            platform: Platform::SUN_ATM_LAN,
            tool: ToolKind::PVM,
            nprocs: 4,
            sizes_kb: sizes,
        })
        .unwrap();
        for (a, b) in p4.iter().zip(&pvm) {
            assert!(a.millis < b.millis, "p4 {} !< pvm {}", a.millis, b.millis);
        }
    }

    #[test]
    fn express_ack_broadcast_is_worst_on_ethernet() {
        let mk = |tool| {
            broadcast_sweep(&BroadcastConfig {
                platform: Platform::SUN_ETHERNET,
                tool,
                nprocs: 4,
                sizes_kb: vec![32],
            })
            .unwrap()[0]
                .millis
        };
        let p4 = mk(ToolKind::P4);
        let pvm = mk(ToolKind::PVM);
        let ex = mk(ToolKind::EXPRESS);
        assert!(p4 < pvm, "p4 {p4} !< pvm {pvm}");
        assert!(pvm < ex, "pvm {pvm} !< express {ex}");
    }

    #[test]
    fn broadcast_time_grows_with_size() {
        let pts = broadcast_sweep(&BroadcastConfig {
            platform: Platform::SUN_ATM_LAN,
            tool: ToolKind::P4,
            nprocs: 4,
            sizes_kb: vec![0, 4, 16, 64],
        })
        .unwrap();
        assert!(is_monotonic(&pts));
    }
}
