//! Point-to-point send/receive benchmark (paper §3.2.1, Table 3).
//!
//! Two nodes ping-pong a message of each size; the reported time is the
//! average one-way latency (round trip halved), matching the paper's
//! "snd/rcv timing" presentation. The series is generated through the
//! campaign engine: one declared scenario per size, executed over a
//! reused cluster skeleton.

use super::TimingPoint;
use pdceval_campaign::exec::Executor;
use pdceval_campaign::scenario::{Kernel, Scenario};
use pdceval_mpt::error::RunError;
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// Configuration of a send/receive sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendRecvConfig {
    /// The testbed.
    pub platform: Platform,
    /// The tool under test.
    pub tool: ToolKind,
    /// Message sizes in kilobytes (1 KB = 1024 bytes).
    pub sizes_kb: Vec<u64>,
    /// Ping-pong iterations per size (the simulation is deterministic, so
    /// one iteration is exact; more simply average identical values).
    pub iters: u32,
}

impl SendRecvConfig {
    /// A Table 3 sweep for one tool and platform.
    pub fn table3(platform: Platform, tool: ToolKind) -> SendRecvConfig {
        SendRecvConfig {
            platform,
            tool,
            sizes_kb: super::table3_sizes_kb(),
            iters: 2,
        }
    }

    /// The campaign scenarios this sweep declares, one per message size.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.sizes_kb
            .iter()
            .map(|&kb| Scenario {
                kernel: Kernel::SendRecv { iters: self.iters },
                tool: self.tool,
                platform: self.platform,
                nprocs: 2,
                size: kb * 1024,
                reps: 1,
                perturb: None,
            })
            .collect()
    }
}

/// Runs the sweep, returning one-way times per message size.
///
/// # Errors
///
/// Returns [`RunError`] if the tool/platform combination is unsupported
/// or the simulation fails.
pub fn send_recv_sweep(cfg: &SendRecvConfig) -> Result<Vec<TimingPoint>, RunError> {
    let mut exec = Executor::new();
    cfg.scenarios()
        .iter()
        .map(|sc| {
            let one_way = exec
                .run(sc)?
                .value()
                .expect("send/recv kernels always produce a value");
            Ok(TimingPoint::new(sc.size, one_way))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_ethernet_matches_table3_shape() {
        let cfg = SendRecvConfig {
            platform: Platform::SUN_ETHERNET,
            tool: ToolKind::P4,
            sizes_kb: vec![0, 16, 64],
            iters: 1,
        };
        let pts = send_recv_sweep(&cfg).unwrap();
        assert!(super::super::is_monotonic(&pts));
        // Paper Table 3 (p4, Ethernet): 3.2 ms at 0 KB, 173 ms at 64 KB.
        assert!(
            pts[0].millis > 1.0 && pts[0].millis < 6.0,
            "0KB: {}",
            pts[0].millis
        );
        assert!(
            pts[2].millis > 120.0 && pts[2].millis < 230.0,
            "64KB: {}",
            pts[2].millis
        );
    }

    #[test]
    fn express_wan_is_unsupported() {
        let cfg = SendRecvConfig::table3(Platform::SUN_ATM_WAN, ToolKind::EXPRESS);
        assert!(send_recv_sweep(&cfg).is_err());
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SendRecvConfig {
            platform: Platform::SUN_ATM_LAN,
            tool: ToolKind::PVM,
            sizes_kb: vec![4],
            iters: 3,
        };
        let a = send_recv_sweep(&cfg).unwrap();
        let b = send_recv_sweep(&cfg).unwrap();
        assert_eq!(a, b);
    }
}
