//! Ring communication benchmark (paper §3.2.3, Figure 3).
//!
//! All nodes *simultaneously* send to their successor and receive from
//! their predecessor ("all nodes send and receive"). This full-duplex
//! pattern is where PVM's single-threaded daemon hurts: each node's send
//! and receive processing serialize through one resource, so Express —
//! despite losing the half-duplex echo test — beats PVM here on switched
//! networks, the inversion the paper reports ("Express is better suited
//! for continuous flow of incoming and outgoing data").
//!
//! On the shared-medium Ethernet the wire itself is the bottleneck and
//! masks most software differences; see `EXPERIMENTS.md` for the
//! paper-vs-measured discussion.

use super::TimingPoint;
use pdceval_campaign::exec::Executor;
use pdceval_campaign::scenario::{Kernel, Scenario};
use pdceval_mpt::error::RunError;
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// Configuration of a ring sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingConfig {
    /// The testbed.
    pub platform: Platform,
    /// The tool under test.
    pub tool: ToolKind,
    /// Number of nodes in the ring (the paper uses 4 SUNs).
    pub nprocs: usize,
    /// Message sizes in kilobytes.
    pub sizes_kb: Vec<u64>,
    /// Number of simultaneous shifts to perform (time is reported per
    /// shift).
    pub shifts: u32,
}

impl RingConfig {
    /// The paper's Figure 3 configuration: 4 nodes, one simultaneous shift.
    pub fn figure3(platform: Platform, tool: ToolKind) -> RingConfig {
        RingConfig {
            platform,
            tool,
            nprocs: 4,
            sizes_kb: super::table3_sizes_kb(),
            shifts: 1,
        }
    }

    /// The campaign scenarios this sweep declares, one per message size.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.sizes_kb
            .iter()
            .map(|&kb| Scenario {
                kernel: Kernel::Ring {
                    shifts: self.shifts,
                },
                tool: self.tool,
                platform: self.platform,
                nprocs: self.nprocs,
                size: kb * 1024,
                reps: 1,
                perturb: None,
            })
            .collect()
    }
}

/// Runs the sweep, returning the per-shift completion time (the instant
/// the last node has both sent and received).
///
/// # Errors
///
/// Returns [`RunError`] if the tool/platform combination is unsupported
/// or the simulation fails.
pub fn ring_sweep(cfg: &RingConfig) -> Result<Vec<TimingPoint>, RunError> {
    let mut exec = Executor::new();
    cfg.scenarios()
        .iter()
        .map(|sc| {
            let per_shift = exec
                .run(sc)?
                .value()
                .expect("ring kernels always produce a value");
            Ok(TimingPoint::new(sc.size, per_shift))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpl::is_monotonic;

    fn time_at(tool: ToolKind, platform: Platform, kb: u64) -> f64 {
        ring_sweep(&RingConfig {
            platform,
            tool,
            nprocs: 4,
            sizes_kb: vec![kb],
            shifts: 1,
        })
        .unwrap()[0]
            .millis
    }

    #[test]
    fn p4_wins_the_ring_everywhere() {
        for platform in [Platform::SUN_ETHERNET, Platform::SUN_ATM_LAN] {
            let p4 = time_at(ToolKind::P4, platform, 16);
            let pvm = time_at(ToolKind::PVM, platform, 16);
            let ex = time_at(ToolKind::EXPRESS, platform, 16);
            assert!(
                p4 < pvm && p4 < ex,
                "{platform:?}: p4={p4} pvm={pvm} ex={ex}"
            );
        }
    }

    #[test]
    fn express_beats_pvm_in_full_duplex_flow_on_switched_networks() {
        // The paper's Figure 3 inversion: Express < PVM on the ring even
        // though PVM < Express on the echo test at the same sizes. The
        // mechanism (PVM's daemon serializes send and receive processing)
        // is visible on switched fabrics where the wire is not the
        // bottleneck.
        for kb in [16, 64] {
            let ex = time_at(ToolKind::EXPRESS, Platform::SUN_ATM_LAN, kb);
            let pvm = time_at(ToolKind::PVM, Platform::SUN_ATM_LAN, kb);
            assert!(ex < pvm, "{kb}KB: express {ex} !< pvm {pvm}");
        }
    }

    #[test]
    fn ring_time_grows_with_size() {
        let pts = ring_sweep(&RingConfig {
            platform: Platform::SUN_ATM_LAN,
            tool: ToolKind::EXPRESS,
            nprocs: 4,
            sizes_kb: vec![0, 8, 64],
            shifts: 1,
        })
        .unwrap();
        assert!(is_monotonic(&pts));
    }

    #[test]
    fn single_node_ring_is_instant() {
        let pts = ring_sweep(&RingConfig {
            platform: Platform::SUN_ATM_LAN,
            tool: ToolKind::P4,
            nprocs: 1,
            sizes_kb: vec![64],
            shifts: 1,
        })
        .unwrap();
        assert_eq!(pts[0].millis, 0.0);
    }
}
