//! Rendering: text tables in the paper's layout, data series, CSV
//! emission, and ASCII line plots for the figures.

use std::fmt::Write as _;

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut TextTable {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// A named data series for a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Emits series as CSV: header `x,label1,label2,...`, one row per x.
/// Series may have different x grids; missing cells are empty.
pub fn to_csv(series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup();
    let mut out = String::from("x");
    for s in series {
        let _ = write!(out, ",{}", s.label.replace(',', ";"));
    }
    out.push('\n');
    for x in xs {
        let _ = write!(out, "{x}");
        for s in series {
            match s.points.iter().find(|&&(px, _)| px == x) {
                Some(&(_, y)) => {
                    let _ = write!(out, ",{y}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders series as an ASCII line plot (markers only), with the y axis
/// scaled to the data.
pub fn ascii_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let markers = ['*', '+', 'o', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < f64::EPSILON {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < f64::EPSILON {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = markers[si % markers.len()];
        for &(x, y) in &s.points {
            let col = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let row = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let r = height - 1 - row.min(height - 1);
            grid[r][col.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "y: {ymin:.3} .. {ymax:.3}");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let _ = writeln!(out, " x: {xmin:.1} .. {xmax:.1}");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", markers[si % markers.len()], s.label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Size", "p4", "PVM"]);
        t.row(vec!["0", "3.199", "9.655"]);
        t.row(vec!["64", "173.158", "189.120"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("p4"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("173.158"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn csv_merges_x_grids() {
        let s1 = Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]);
        let s2 = Series::new("b", vec![(2.0, 200.0), (3.0, 300.0)]);
        let csv = to_csv(&[s1, s2]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
        assert_eq!(lines[3], "3,,300");
    }

    #[test]
    fn plot_contains_markers_and_legend() {
        let s = Series::new("PVM", vec![(0.0, 1.0), (10.0, 5.0)]);
        let plot = ascii_plot("Broadcast", &[s], 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains("PVM"));
        assert!(plot.contains("Broadcast"));
    }

    #[test]
    fn empty_plot_is_graceful() {
        let plot = ascii_plot("empty", &[], 40, 10);
        assert!(plot.contains("no data"));
    }
}
