//! Application Development Level (ADL) — the paper's §2.3 usability
//! criteria and its §3.3.1 assessments.
//!
//! The ADL characterizes tools by what they offer the developer rather
//! than by measured performance: supported programming models, language
//! interfaces, the development interface (ease of programming, debugging,
//! customization, error handling), the run-time interface, integration
//! with other software, and portability. Each criterion is rated
//! WS (well supported), PS (partially supported) or NS (not supported),
//! exactly as the paper's final table does.
//!
//! The ratings themselves are *data*: every tool's [`Support`] column
//! lives in its registered `ToolSpec` (`adl` field, in [`Criterion::all`]
//! order), so spec-registered tools are assessed exactly like the
//! built-in three.

use pdceval_mpt::ToolKind;
use std::fmt;

pub use pdceval_mpt::spec::Support;

/// The usability criteria of §2.3 / the §3.3.1 assessment table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Criterion {
    /// Programming models supported (host-node, SPMD/Cubix, ...).
    ProgrammingModels,
    /// Language interface (C, FORTRAN, multiple languages).
    LanguageInterface,
    /// Ease of programming (learning curve, re-engineering effort).
    EaseOfProgramming,
    /// Debugging support (tracing, breakpoints, data inspection).
    DebuggingSupport,
    /// Customization (macros, reconfiguration, I/O formats).
    Customization,
    /// Error handling (graceful exit, informative messages).
    ErrorHandling,
    /// Run-time interface (parallel I/O, data redistribution, dynamic
    /// load balancing).
    RunTimeInterface,
    /// Integration with other software systems (visualization, profiling).
    Integration,
    /// Portability (architecture-independent interface).
    Portability,
}

impl Criterion {
    /// All criteria in the paper's table order — also the order of a
    /// `ToolSpec`'s `adl` array and of a spec file's `adl =` codes.
    pub fn all() -> [Criterion; 9] {
        [
            Criterion::ProgrammingModels,
            Criterion::LanguageInterface,
            Criterion::EaseOfProgramming,
            Criterion::DebuggingSupport,
            Criterion::Customization,
            Criterion::ErrorHandling,
            Criterion::RunTimeInterface,
            Criterion::Integration,
            Criterion::Portability,
        ]
    }

    /// Display name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Criterion::ProgrammingModels => "Programming Models Supported",
            Criterion::LanguageInterface => "Language Interface",
            Criterion::EaseOfProgramming => "Ease of Programming",
            Criterion::DebuggingSupport => "Debugging Support",
            Criterion::Customization => "Customization",
            Criterion::ErrorHandling => "Error Handling",
            Criterion::RunTimeInterface => "Run-Time Interface",
            Criterion::Integration => "Integration with other Software Systems",
            Criterion::Portability => "Portability",
        }
    }

    /// Whether the paper groups this criterion under "Development
    /// Interface".
    pub fn is_development_interface(&self) -> bool {
        matches!(
            self,
            Criterion::EaseOfProgramming
                | Criterion::DebuggingSupport
                | Criterion::Customization
                | Criterion::ErrorHandling
        )
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The §3.3.1-style assessment of one tool, read from its spec's ADL
/// ratings (the paper's table for the built-in three).
pub fn assessment(tool: ToolKind) -> Vec<(Criterion, Support)> {
    Criterion::all().into_iter().zip(tool.spec().adl).collect()
}

/// The programming models of §2.3 that a tool supports (spec data).
pub fn programming_models(tool: ToolKind) -> Vec<String> {
    tool.spec().programming_models.clone()
}

/// The language bindings the paper notes (all three tools: C and FORTRAN).
pub fn language_interfaces(_tool: ToolKind) -> Vec<&'static str> {
    vec!["C", "FORTRAN"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assessments_match_the_paper_table() {
        // Spot-check the distinctive cells of the §3.3.1 table.
        let pvm: Vec<Support> = assessment(ToolKind::PVM)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert_eq!(pvm[2], Support::Well, "PVM ease of programming is WS");
        assert_eq!(pvm[4], Support::NotSupported, "PVM customization is NS");
        let ex: Vec<Support> = assessment(ToolKind::EXPRESS)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert_eq!(ex[3], Support::Well, "Express debugging is WS");
        assert_eq!(ex[7], Support::NotSupported, "Express integration is NS");
        let p4: Vec<Support> = assessment(ToolKind::P4)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert!(
            p4[2..8].iter().all(|s| *s == Support::Partial),
            "p4 development-interface rows are PS"
        );
    }

    #[test]
    fn every_tool_rates_every_criterion() {
        for tool in ToolKind::all() {
            let a = assessment(tool);
            assert_eq!(a.len(), Criterion::all().len());
            let crits: Vec<Criterion> = a.iter().map(|(c, _)| *c).collect();
            assert_eq!(crits, Criterion::all().to_vec());
        }
    }

    #[test]
    fn support_values_are_ordered() {
        assert!(Support::Well.value() > Support::Partial.value());
        assert!(Support::Partial.value() > Support::NotSupported.value());
        assert_eq!(Support::Well.code(), "WS");
    }

    #[test]
    fn all_builtin_tools_are_portable_with_c_and_fortran() {
        for tool in ToolKind::builtin() {
            let a = assessment(tool);
            assert_eq!(a.last().expect("portability").1, Support::Well);
            assert_eq!(language_interfaces(tool), vec!["C", "FORTRAN"]);
            assert!(programming_models(tool).iter().any(|m| m == "Host-Node"));
        }
    }
}
