//! Regenerates Table 3 (snd/rcv timings on SUN workstations): one bench
//! per (platform, tool) column of the table.

use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_core::tpl::{send_recv_sweep, SendRecvConfig};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_sndrecv");
    g.sample_size(10);
    for (pname, platform) in [
        ("ethernet", Platform::SUN_ETHERNET),
        ("atm_lan", Platform::SUN_ATM_LAN),
        ("atm_wan", Platform::SUN_ATM_WAN),
    ] {
        for tool in ToolKind::all() {
            if !tool.supports_platform(platform) {
                continue;
            }
            let cfg = SendRecvConfig::table3(platform, tool);
            // Print the row once, as the paper's table reports it.
            let pts = send_recv_sweep(&cfg).expect("sweep failed");
            let row: Vec<String> = pts.iter().map(|p| format!("{:.2}", p.millis)).collect();
            eprintln!("table3/{pname}/{tool}: {} ms", row.join(" "));
            g.bench_function(format!("{pname}/{tool}"), |b| {
                b.iter(|| send_recv_sweep(&cfg).expect("sweep failed"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
