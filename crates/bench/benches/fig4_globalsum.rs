//! Regenerates Figure 4 (global vector summation among 4 SUNs; PVM is
//! absent — it has no global operation).

use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_core::tpl::{global_sum_sweep, GlobalSumConfig, GlobalSumResult};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_globalsum");
    g.sample_size(10);
    for (label, platform, tool) in [
        ("ethernet/p4", Platform::SUN_ETHERNET, ToolKind::P4),
        (
            "ethernet/express",
            Platform::SUN_ETHERNET,
            ToolKind::EXPRESS,
        ),
        ("nynet/p4", Platform::SUN_ATM_WAN, ToolKind::P4),
    ] {
        let cfg = GlobalSumConfig::figure4(platform, tool);
        match global_sum_sweep(&cfg).expect("sweep failed") {
            GlobalSumResult::Timed(pts) => {
                let row: Vec<String> = pts.iter().map(|p| format!("{:.0}", p.millis)).collect();
                eprintln!("fig4/{label}: {} ms", row.join(" "));
            }
            GlobalSumResult::Unsupported(e) => panic!("unexpected: {e}"),
        }
        g.bench_function(label, |b| {
            b.iter(|| global_sum_sweep(&cfg).expect("sweep failed"))
        });
    }
    // PVM's "Not Available" row is part of the artifact too.
    let pvm = global_sum_sweep(&GlobalSumConfig::figure4(
        Platform::SUN_ETHERNET,
        ToolKind::PVM,
    ))
    .expect("sweep failed");
    assert!(matches!(pvm, GlobalSumResult::Unsupported(_)));
    eprintln!("fig4/ethernet/PVM: Not Available");
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
