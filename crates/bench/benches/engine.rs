//! Microbenchmarks of the discrete-event engine itself: event throughput
//! for message delivery, resource contention and process switching.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_simnet::engine::Simulation;
use pdceval_simnet::envelope::{Envelope, Matcher};
use pdceval_simnet::flight::{Stage, TransmitPlan};
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::ids::ProcId;
use pdceval_simnet::time::SimDuration;

fn ping_pong(rounds: u32) {
    let mut sim = Simulation::new();
    sim.spawn("a", HostSpec::sun_ipx(), move |ctx| {
        for i in 0..rounds {
            let env = Envelope::new(ctx.pid(), ProcId(1), i, Bytes::new());
            ctx.transmit(
                env,
                TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
            );
            let _ = ctx.recv(Matcher::tagged(i));
        }
    });
    sim.spawn("b", HostSpec::sun_ipx(), move |ctx| {
        for i in 0..rounds {
            let msg = ctx.recv(Matcher::tagged(i));
            let env = Envelope::new(ctx.pid(), msg.src, i, Bytes::new());
            ctx.transmit(
                env,
                TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
            );
        }
    });
    sim.run().expect("simulation failed");
}

fn contended_resource(nprocs: u32, per_proc: u32) {
    let mut sim = Simulation::new();
    let wire = sim.add_resource("wire");
    for i in 0..nprocs {
        sim.spawn(&format!("p{i}"), HostSpec::sun_ipx(), move |ctx| {
            for _ in 0..per_proc {
                ctx.serve(wire, SimDuration::from_micros(5));
            }
        });
    }
    sim.run().expect("simulation failed");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("ping_pong_1000", |b| b.iter(|| ping_pong(1000)));
    g.bench_function("contention_8x500", |b| b.iter(|| contended_resource(8, 500)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
