//! Microbenchmarks of the discrete-event engine itself: event throughput
//! for message delivery, resource contention and process switching.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_simnet::engine::Simulation;
use pdceval_simnet::envelope::{Envelope, Matcher};
use pdceval_simnet::flight::{Stage, TransmitPlan};
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::ids::ProcId;
use pdceval_simnet::time::SimDuration;

fn ping_pong(rounds: u32) {
    let mut sim = Simulation::new();
    sim.spawn("a", HostSpec::sun_ipx(), move |ctx| {
        for i in 0..rounds {
            let env = Envelope::new(ctx.pid(), ProcId(1), i, Bytes::new());
            ctx.transmit(
                env,
                TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
            );
            let _ = ctx.recv(Matcher::tagged(i));
        }
    });
    sim.spawn("b", HostSpec::sun_ipx(), move |ctx| {
        for i in 0..rounds {
            let msg = ctx.recv(Matcher::tagged(i));
            let env = Envelope::new(ctx.pid(), msg.src, i, Bytes::new());
            ctx.transmit(
                env,
                TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
            );
        }
    });
    sim.run().expect("simulation failed");
}

fn contended_resource(nprocs: u32, per_proc: u32) {
    let mut sim = Simulation::new();
    let wire = sim.add_resource("wire");
    for i in 0..nprocs {
        sim.spawn(&format!("p{i}"), HostSpec::sun_ipx(), move |ctx| {
            for _ in 0..per_proc {
                ctx.serve(wire, SimDuration::from_micros(5));
            }
        });
    }
    sim.run().expect("simulation failed");
}

/// 64-proc ring: every proc forwards to its successor each round — the
/// headline microbench for the pooled direct-handoff scheduler.
fn ring(nprocs: usize, rounds: u32) {
    let mut sim = Simulation::new();
    for r in 0..nprocs {
        let next = ProcId(((r + 1) % nprocs) as u32);
        sim.spawn_indexed("ring", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                let env = Envelope::new(ctx.pid(), next, round, Bytes::new());
                ctx.transmit(
                    env,
                    TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
                );
                let _ = ctx.recv(Matcher::tagged(round));
            }
        });
    }
    sim.run().expect("simulation failed");
}

/// Root sends to all 63 peers, everyone acks: stresses the waiting-receiver
/// fast path and the tag-indexed mailbox of the fan-in at the root.
fn broadcast_ack(nprocs: usize, rounds: u32) {
    let mut sim = Simulation::new();
    sim.spawn_indexed("bc", 0, HostSpec::sun_ipx(), move |ctx| {
        for round in 0..rounds {
            for dst in 1..nprocs {
                let env = Envelope::new(ctx.pid(), ProcId(dst as u32), round, Bytes::new());
                ctx.transmit(
                    env,
                    TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
                );
            }
            for _ in 1..nprocs {
                let _ = ctx.recv(Matcher::tagged(round));
            }
        }
    });
    for r in 1..nprocs {
        sim.spawn_indexed("bc", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                let msg = ctx.recv(Matcher::tagged(round));
                let env = Envelope::new(ctx.pid(), msg.src, round, Bytes::new());
                ctx.transmit(
                    env,
                    TransmitPlan::single(vec![Stage::Latency(SimDuration::from_micros(10))]),
                );
            }
        });
    }
    sim.run().expect("simulation failed");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("ping_pong_1000", |b| b.iter(|| ping_pong(1000)));
    g.bench_function("contention_8x500", |b| {
        b.iter(|| contended_resource(8, 500))
    });
    g.bench_function("ring_64x100", |b| b.iter(|| ring(64, 100)));
    g.bench_function("broadcast_64x50", |b| b.iter(|| broadcast_ack(64, 50)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
