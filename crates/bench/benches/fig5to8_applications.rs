//! Regenerates Figures 5-8 (application performance on the four
//! platforms). Benchmarked at reduced workload scale so Criterion's
//! repetitions stay tractable; the `repro` binary runs paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_core::apl::{app_sweep, figure_procs, AplApp, AplConfig, Scale};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5to8_applications");
    g.sample_size(10);
    for (fig, platform, tools) in [
        (
            "fig5_alpha_fddi",
            Platform::ALPHA_FDDI,
            ToolKind::all().to_vec(),
        ),
        ("fig6_sp1", Platform::SP1_SWITCH, ToolKind::all().to_vec()),
        (
            "fig7_atm_wan",
            Platform::SUN_ATM_WAN,
            vec![ToolKind::P4, ToolKind::PVM],
        ),
        (
            "fig8_ethernet",
            Platform::SUN_ETHERNET,
            ToolKind::all().to_vec(),
        ),
    ] {
        for app in AplApp::all() {
            for &tool in &tools {
                let cfg = AplConfig {
                    app,
                    platform,
                    tool,
                    procs: figure_procs(platform),
                    scale: Scale::Quick,
                };
                let pts = app_sweep(&cfg).expect("sweep failed");
                let row: Vec<String> = pts.iter().map(|p| format!("{:.4}", p.seconds)).collect();
                eprintln!("{fig}/{app}/{tool}: {} s", row.join(" "));
                g.bench_function(format!("{fig}/{app}/{tool}"), |b| {
                    b.iter(|| app_sweep(&cfg).expect("sweep failed"))
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
