//! Regenerates Figure 3 (simultaneous ring shift among 4 SUNs).

use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_core::tpl::{ring_sweep, RingConfig};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_ring");
    g.sample_size(10);
    for (pname, platform) in [
        ("ethernet", Platform::SUN_ETHERNET),
        ("atm_wan", Platform::SUN_ATM_WAN),
    ] {
        for tool in ToolKind::all() {
            if !tool.supports_platform(platform) {
                continue;
            }
            let cfg = RingConfig::figure3(platform, tool);
            let pts = ring_sweep(&cfg).expect("sweep failed");
            let row: Vec<String> = pts.iter().map(|p| format!("{:.1}", p.millis)).collect();
            eprintln!("fig3/{pname}/{tool}: {} ms", row.join(" "));
            g.bench_function(format!("{pname}/{tool}"), |b| {
                b.iter(|| ring_sweep(&cfg).expect("sweep failed"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
