//! Regenerates the usability table (paper §3.3.1) and benchmarks the
//! weighted multi-level scoring machinery (Tables 1 and 5 are static
//! data; the interesting cost is evaluation with many measurements).

use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_core::adl::Criterion as AdlCriterion;
use pdceval_core::experiments::{table1, table5};
use pdceval_core::score::{Evaluator, LevelWeights, Measurement};
use pdceval_mpt::ToolKind;

fn bench(c: &mut Criterion) {
    eprintln!("{}", table1().body);
    eprintln!("{}", table5().body);

    let mut g = c.benchmark_group("usability_scoring");
    g.bench_function("render_tables", |b| {
        b.iter(|| (table1().body.len(), table5().body.len()))
    });
    g.bench_function("evaluate_100_measurements", |b| {
        b.iter(|| {
            let mut e = Evaluator::new();
            e.level_weights(LevelWeights::developer());
            e.criterion_weight(AdlCriterion::DebuggingSupport, 3.0);
            for i in 0..100 {
                e.tpl_measurement(Measurement::new(
                    format!("m{i}"),
                    vec![
                        (ToolKind::EXPRESS, Some(2.0 + i as f64)),
                        (ToolKind::P4, Some(1.0 + i as f64)),
                        (ToolKind::PVM, Some(1.5 + i as f64)),
                    ],
                ));
            }
            e.evaluate()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
