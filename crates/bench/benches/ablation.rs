//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **PVM routing**: daemon route (the TPL default) versus the tuned
//!   direct route used by the application suite — quantifies how much of
//!   PVM's TPL disadvantage is the daemon.
//! * **Broadcast algorithms**: the three tools' algorithms (binomial
//!   tree, sequential fan-out, sequential+ack) at increasing node counts
//!   on a switched fabric, isolating algorithmic scaling.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_core::tpl::{broadcast_sweep, BroadcastConfig};
use pdceval_mpt::runtime::{run_spmd, SpmdConfig};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// Echo time with and without `pvm_advise(PvmRouteDirect)`.
fn pvm_routing_ablation() -> (f64, f64) {
    let time = |direct: bool| {
        let cfg = SpmdConfig::new(Platform::SUN_ATM_LAN, ToolKind::PVM, 2);
        let out = run_spmd(&cfg, move |node| {
            if direct {
                node.advise_direct_route();
            }
            let payload = Bytes::from(vec![0u8; 16 * 1024]);
            if node.rank() == 0 {
                node.send(1, 1, payload).unwrap();
                let _ = node.recv(Some(1), Some(2)).unwrap();
            } else {
                let _ = node.recv(Some(0), Some(1)).unwrap();
                node.send(0, 2, payload).unwrap();
            }
            node.now().as_millis_f64()
        })
        .expect("run failed");
        out.results[0] / 2.0
    };
    (time(false), time(true))
}

fn bench(c: &mut Criterion) {
    let (daemon, direct) = pvm_routing_ablation();
    eprintln!(
        "ablation/pvm_routing @16KB ATM LAN: daemon {daemon:.2} ms vs direct {direct:.2} ms \
         ({:.1}x)",
        daemon / direct
    );
    assert!(direct < daemon, "direct route must beat the daemon route");

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("pvm_routing", |b| b.iter(pvm_routing_ablation));

    for nprocs in [2usize, 4, 8] {
        for tool in ToolKind::all() {
            let cfg = BroadcastConfig {
                platform: Platform::SUN_ATM_LAN,
                tool,
                nprocs,
                sizes_kb: vec![16],
            };
            let t = broadcast_sweep(&cfg).expect("sweep failed")[0].millis;
            eprintln!("ablation/bcast_algo/{tool}/P{nprocs} @16KB: {t:.2} ms");
            g.bench_function(format!("bcast_algo/{tool}/P{nprocs}"), |b| {
                b.iter(|| broadcast_sweep(&cfg).expect("sweep failed"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
