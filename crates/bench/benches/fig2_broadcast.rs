//! Regenerates Figure 2 (broadcast among 4 SUNs over Ethernet and the
//! NYNET ATM WAN).

use criterion::{criterion_group, criterion_main, Criterion};
use pdceval_core::tpl::{broadcast_sweep, BroadcastConfig};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_broadcast");
    g.sample_size(10);
    for (pname, platform) in [
        ("ethernet", Platform::SUN_ETHERNET),
        ("atm_wan", Platform::SUN_ATM_WAN),
    ] {
        for tool in ToolKind::all() {
            if !tool.supports_platform(platform) {
                continue;
            }
            let cfg = BroadcastConfig::figure2(platform, tool);
            let pts = broadcast_sweep(&cfg).expect("sweep failed");
            let row: Vec<String> = pts.iter().map(|p| format!("{:.1}", p.millis)).collect();
            eprintln!("fig2/{pname}/{tool}: {} ms", row.join(" "));
            g.bench_function(format!("{pname}/{tool}"), |b| {
                b.iter(|| broadcast_sweep(&cfg).expect("sweep failed"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
