//! End-to-end tests for the `pdceval lint` subcommand and its exit-code
//! contract, plus the byte-compatibility of `pdceval validate`'s legacy
//! warning stream after its move onto the shared diagnostic type.

use std::process::{Command, Output};

fn pdceval(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pdceval"))
        .args(args)
        .output()
        .expect("pdceval runs")
}

fn fixture(name: &str) -> String {
    format!("{}/../check/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn example(name: &str) -> String {
    format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Exit 0: a clean file, and warning-only files without
/// `--deny-warnings`.
#[test]
fn lint_exits_zero_on_clean_and_warning_only_files() {
    let out = pdceval(&["lint", &fixture("units_clean.spec")]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("0 error(s), 0 warning(s)"));

    let out = pdceval(&["lint", &fixture("units.spec")]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stderr(&out).contains("warning[L0501]"));
    assert!(stderr(&out).contains("0 error(s), 1 warning(s)"));
}

/// Exit 1: warnings gate under `--deny-warnings`.
#[test]
fn lint_exits_one_on_warnings_under_deny() {
    let out = pdceval(&["lint", &fixture("units.spec"), "--deny-warnings"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("warning[L0501]"));
}

/// Exit 2: errors always gate, and the worst code across multiple
/// files wins (clean + error file => 2).
#[test]
fn lint_exits_two_on_errors() {
    let out = pdceval(&["lint", &fixture("unsat_grid.spec")]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("error[L0201]"));

    let out = pdceval(&[
        "lint",
        &fixture("units_clean.spec"),
        &fixture("unsat_grid.spec"),
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
}

/// Diagnostics come out in the coded, located `render` form —
/// `severity[CODE]: file:line: message` — so findings are clickable.
#[test]
fn lint_diagnostics_are_coded_and_located() {
    let path = fixture("crash_unreachable.spec");
    let out = pdceval(&["lint", &path]);
    let err = stderr(&out);
    // The [perturb doom] stanza header sits on line 4 of the fixture.
    assert!(
        err.contains(&format!("warning[L0301]: {path}:4: ")),
        "missing located diagnostic in:\n{err}"
    );
}

/// The shipped example specs are part of the lint-clean corpus even
/// under `--deny-warnings` — the same invocation CI runs.
#[test]
fn lint_is_clean_on_the_shipped_examples() {
    let out = pdceval(&[
        "lint",
        &example("modern.spec"),
        &example("mixed.spec"),
        "--deny-warnings",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}

/// An unreadable path is an error (exit 2), not a silent skip.
#[test]
fn lint_treats_unreadable_files_as_errors() {
    let out = pdceval(&["lint", "no/such/file.spec"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr(&out));
    assert!(stderr(&out).contains("cannot read spec file"));
}

/// `validate` kept its historical warning stream byte-for-byte after
/// moving onto the shared diagnostic type: bare `warning: ...` lines,
/// no codes or locations, and warnings never gate its exit status.
#[test]
fn validate_warning_stream_stays_byte_compatible() {
    let dir = std::env::temp_dir().join("pdceval-cli-lint-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("badsel.spec");
    std::fs::write(
        &path,
        "[campaign oops]\nkernels = broadcast\nplatforms = no-such-platform\n\
         nprocs = 2\nsizes = 1024\n",
    )
    .expect("write spec");
    let path = path.to_str().expect("utf8 path");
    let out = pdceval(&["validate", path]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.contains(
            "warning: campaign 'oops': platforms names 'no-such-platform', \
             which matches no platform in this file or the registry"
        ),
        "legacy warning line changed:\n{err}"
    );
    assert!(
        !err.contains("L00"),
        "validate must not print codes:\n{err}"
    );
    assert!(err.contains(&format!(
        "{path}: OK (0 tool(s), 0 platform(s), 0 perturbation(s), 1 campaign(s))"
    )));
}
