//! # pdceval-bench
//!
//! The benchmark harness of the reproduction: a `repro` binary that
//! regenerates every table and figure of the paper, and Criterion
//! benches (one per artifact) measuring the cost of regenerating each
//! experiment on the simulator, plus ablation and engine
//! microbenchmarks.
//!
//! Run the full reproduction with:
//!
//! ```bash
//! cargo run --release -p pdceval-bench --bin repro            # paper scale
//! cargo run --release -p pdceval-bench --bin repro -- quick   # reduced scale
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use pdceval_core::apl::Scale;
use pdceval_core::experiments::{run_all, Artifact};
use pdceval_mpt::error::RunError;
use std::path::Path;

/// Regenerates every artifact at the given scale.
///
/// # Errors
///
/// Returns the first [`RunError`] encountered.
pub fn regenerate(scale: Scale) -> Result<Vec<Artifact>, RunError> {
    run_all(scale)
}

/// Writes artifacts to `dir`: one `.txt` per artifact plus `.csv` for
/// figures, and a combined `report.md`.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_artifacts(artifacts: &[Artifact], dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut combined = String::from("# Reproduction artifacts\n\n");
    for a in artifacts {
        std::fs::write(dir.join(format!("{}.txt", a.id)), &a.body)?;
        if let Some(csv) = &a.csv {
            std::fs::write(dir.join(format!("{}.csv", a.id)), csv)?;
        }
        combined.push_str(&format!("## {}\n\n```text\n{}\n```\n\n", a.title, a.body));
    }
    std::fs::write(dir.join("report.md"), combined)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_regeneration_produces_all_artifacts() {
        let artifacts = regenerate(Scale::Quick).expect("regeneration failed");
        let ids: Vec<&str> = artifacts.iter().map(|a| a.id).collect();
        assert_eq!(
            ids,
            vec![
                "table1", "table2", "table3", "fig2", "fig3", "fig4", "table4", "fig5", "fig6",
                "fig7", "fig8", "table5"
            ]
        );
        // Figures carry CSV data.
        for a in &artifacts {
            if a.id.starts_with("fig") {
                assert!(a.csv.is_some(), "{} missing csv", a.id);
            }
        }
    }

    #[test]
    fn artifacts_write_to_disk() {
        let dir = std::env::temp_dir().join("pdceval-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let artifacts = vec![pdceval_core::experiments::table1()];
        write_artifacts(&artifacts, &dir).unwrap();
        assert!(dir.join("table1.txt").exists());
        assert!(dir.join("report.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
