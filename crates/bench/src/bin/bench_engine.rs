//! Engine-throughput microbenchmarks: events/sec on broadcast, ring and
//! global-sum message patterns over the raw [`Simulation`] API.
//!
//! These isolate the discrete-event engine's scheduling + mailbox cost
//! (pure latency stages, no contention resources), so their events/sec is
//! a direct measure of the per-simulator-call overhead the pooled
//! direct-handoff scheduler optimizes.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p pdceval-bench --bin bench_engine -- --out BENCH_engine.json
//! ```
//!
//! The emitted JSON records events/sec per microbench plus the speedup
//! against the recorded seed-engine baseline (thread-per-process +
//! crossbeam-channel ping-pong, commit 3f7268b), measured on the same
//! class of machine by `scripts/bench_engine.sh` before the scheduler
//! rework landed. Each result also carries the engine's own counters —
//! events scheduled, peak queue depth, direct handoffs vs inline
//! resumes (and their ratio), mailbox fast-path hits (and hit rate) —
//! so scheduler-behavior regressions are visible even when wall-clock
//! throughput masks them.

use bytes::Bytes;
use pdceval_campaign::store::{git_sha, unix_timestamp};
use pdceval_simnet::engine::{scheduler_spin_iters, SimOutcome, Simulation};
use pdceval_simnet::envelope::{Envelope, Matcher};
use pdceval_simnet::flight::{Stage, TransmitPlan};
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::ids::ProcId;
use pdceval_simnet::time::SimDuration;
use std::time::Instant;

const NPROCS: usize = 64;
const ROUNDS: u32 = 400;

/// Seed-engine events/sec recorded before the pooled-scheduler rework
/// (commit 3f7268b engine: OS thread per process, two crossbeam-channel
/// hops per simulator call, O(n) mailbox scans). Used to report speedups.
///
/// `pingpong64` did not exist on the seed engine; its baseline is the
/// PR-2 engine (pooled scheduler + indexed mailboxes) measured on this
/// machine class immediately before the mailbox head-slot fast path
/// landed, so its speedup isolates that change.
const BASELINE: [(&str, f64); 4] = [
    ("broadcast64", 146_005.0),
    ("ring64", 139_214.0),
    ("globalsum64", 142_489.0),
    ("pingpong64", 760_250.0),
];

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

fn lat() -> TransmitPlan {
    TransmitPlan::single(vec![Stage::Latency(us(10))])
}

/// 64-proc ring: every proc forwards to its successor each round.
/// Messages delivered: NPROCS * ROUNDS.
fn ring(nprocs: usize, rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    for r in 0..nprocs {
        let next = ProcId(((r + 1) % nprocs) as u32);
        sim.spawn_indexed("ring", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                let env = Envelope::new(ctx.pid(), next, round, Bytes::new());
                ctx.transmit(env, lat());
                let _ = ctx.recv(Matcher::tagged(round));
            }
        });
    }
    sim.run().expect("ring sim failed")
}

/// 64-proc broadcast + ack: the root sends to all, everyone acks.
/// Messages delivered: 2 * (NPROCS - 1) * ROUNDS.
fn broadcast(nprocs: usize, rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    sim.spawn_indexed("bcast", 0, HostSpec::sun_ipx(), move |ctx| {
        for round in 0..rounds {
            for dst in 1..nprocs {
                let env = Envelope::new(ctx.pid(), ProcId(dst as u32), round, Bytes::new());
                ctx.transmit(env, lat());
            }
            for _ in 1..nprocs {
                let _ = ctx.recv(Matcher::tagged(round));
            }
        }
    });
    for r in 1..nprocs {
        sim.spawn_indexed("bcast", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                let msg = ctx.recv(Matcher::tagged(round));
                let env = Envelope::new(ctx.pid(), msg.src, round, Bytes::new());
                ctx.transmit(env, lat());
            }
        });
    }
    sim.run().expect("broadcast sim failed")
}

/// 64-proc binary-tree global sum: reduce up the tree, broadcast down.
/// Messages delivered: 2 * (NPROCS - 1) * ROUNDS.
fn global_sum(nprocs: usize, rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    for r in 0..nprocs {
        sim.spawn_indexed("gsum", r, HostSpec::sun_ipx(), move |ctx| {
            let left = 2 * r + 1;
            let right = 2 * r + 2;
            for round in 0..rounds {
                let up_tag = round * 2;
                let down_tag = round * 2 + 1;
                // Combine children's partial sums.
                if left < nprocs {
                    let _ = ctx.recv(Matcher::from_tagged(ProcId(left as u32), up_tag));
                }
                if right < nprocs {
                    let _ = ctx.recv(Matcher::from_tagged(ProcId(right as u32), up_tag));
                }
                if r > 0 {
                    let parent = ProcId(((r - 1) / 2) as u32);
                    let env = Envelope::new(ctx.pid(), parent, up_tag, Bytes::new());
                    ctx.transmit(env, lat());
                    let _ = ctx.recv(Matcher::tagged(down_tag));
                }
                // Fan the result back out.
                for child in [left, right] {
                    if child < nprocs {
                        let env =
                            Envelope::new(ctx.pid(), ProcId(child as u32), down_tag, Bytes::new());
                        ctx.transmit(env, lat());
                    }
                }
            }
        });
    }
    sim.run().expect("global_sum sim failed")
}

/// 32 pairs ping-ponging: the send-then-wait pattern whose mailboxes
/// hold at most one message, i.e. the mailbox head-slot fast path's
/// target shape. Messages delivered: NPROCS * ROUNDS.
fn pingpong(nprocs: usize, rounds: u32) -> SimOutcome {
    assert!(nprocs.is_multiple_of(2), "pingpong needs pairs");
    let mut sim = Simulation::new();
    for r in 0..nprocs {
        let peer = ProcId((r ^ 1) as u32);
        let serves = r % 2 == 0;
        sim.spawn_indexed("pp", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                if serves {
                    let env = Envelope::new(ctx.pid(), peer, round, Bytes::new());
                    ctx.transmit(env, lat());
                    let _ = ctx.recv(Matcher::tagged(round));
                } else {
                    let _ = ctx.recv(Matcher::tagged(round));
                    let env = Envelope::new(ctx.pid(), peer, round, Bytes::new());
                    ctx.transmit(env, lat());
                }
            }
        });
    }
    sim.run().expect("pingpong sim failed")
}

struct Measurement {
    name: &'static str,
    events: u64,
    seconds: f64,
    events_per_sec: f64,
    outcome: SimOutcome,
}

fn measure(name: &'static str, f: impl Fn() -> SimOutcome) -> Measurement {
    // Warm-up run (also populates the worker pool).
    let outcome = f();
    let events = outcome.messages_delivered;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let o = f();
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(
            o.messages_delivered, events,
            "non-deterministic event count in {name}"
        );
        best = best.min(dt);
    }
    let m = Measurement {
        name,
        events,
        seconds: best,
        events_per_sec: events as f64 / best,
        outcome,
    };
    println!(
        "{:<14} {:>9} events  {:>9.4} s  {:>12.0} events/sec",
        m.name, m.events, m.seconds, m.events_per_sec
    );
    m
}

/// `direct_handoffs / (direct_handoffs + inline_resumes)`: how often a
/// wakeup crossed threads via the baton instead of staying inline.
fn handoff_ratio(o: &SimOutcome) -> f64 {
    let total = o.direct_handoffs + o.inline_resumes;
    if total == 0 {
        0.0
    } else {
        o.direct_handoffs as f64 / total as f64
    }
}

/// Fraction of deliveries that matched a parked receiver immediately.
fn fastpath_hit_rate(o: &SimOutcome) -> f64 {
    if o.messages_delivered == 0 {
        0.0
    } else {
        o.mailbox_fast_path_hits as f64 / o.messages_delivered as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let results = [
        measure("broadcast64", || broadcast(NPROCS, ROUNDS)),
        measure("ring64", || ring(NPROCS, ROUNDS)),
        measure("globalsum64", || global_sum(NPROCS, ROUNDS)),
        measure("pingpong64", || pingpong(NPROCS, ROUNDS)),
    ];

    let mut json = String::from("{\n  \"bench\": \"engine\",\n");
    // Same provenance fields as the campaign results store, so bench JSON
    // is comparable across PRs.
    json.push_str(&format!(
        "  \"git_sha\": {},\n  \"timestamp\": {},\n",
        match git_sha() {
            Some(sha) => format!("\"{sha}\""),
            None => "null".to_string(),
        },
        unix_timestamp()
    ));
    json.push_str(&format!(
        "  \"nprocs\": {NPROCS},\n  \"rounds\": {ROUNDS},\n"
    ));
    // The adaptive spin-before-park setting in effect (0 = single-core
    // machine, spin disabled), so runs on different hosts are comparable.
    json.push_str(&format!(
        "  \"available_parallelism\": {},\n  \"spin_before_park_iters\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        scheduler_spin_iters()
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let baseline = BASELINE
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        let speedup = m.events_per_sec / baseline;
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"events\": {}, \"seconds\": {:.6}, \"events_per_sec\": {:.0}, \
             \"events_scheduled\": {}, \"peak_queue_depth\": {}, \"direct_handoffs\": {}, \
             \"inline_resumes\": {}, \"handoff_ratio\": {:.4}, \"mailbox_fast_path_hits\": {}, \
             \"fastpath_hit_rate\": {:.4}, \
             \"baseline_events_per_sec\": {}, \"speedup_vs_baseline\": {}}}{}\n",
            m.name,
            m.events,
            m.seconds,
            m.events_per_sec,
            m.outcome.events_scheduled,
            m.outcome.peak_queue_depth,
            m.outcome.direct_handoffs,
            m.outcome.inline_resumes,
            handoff_ratio(&m.outcome),
            m.outcome.mailbox_fast_path_hits,
            fastpath_hit_rate(&m.outcome),
            if baseline.is_nan() {
                "null".to_string()
            } else {
                format!("{baseline:.0}")
            },
            if speedup.is_nan() {
                "null".to_string()
            } else {
                format!("{speedup:.2}")
            },
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("failed to write bench JSON");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
