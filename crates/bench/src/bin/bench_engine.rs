//! Engine-throughput microbenchmarks: events/sec on broadcast, ring and
//! global-sum message patterns over the raw [`Simulation`] API.
//!
//! These isolate the discrete-event engine's scheduling + mailbox cost
//! (pure latency stages, no contention resources), so their events/sec is
//! a direct measure of the per-simulator-call overhead the pooled
//! direct-handoff scheduler optimizes.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p pdceval-bench --bin bench_engine -- --out BENCH_engine.json
//! ```
//!
//! The emitted JSON records events/sec per microbench plus the speedup
//! against the recorded seed-engine baseline (thread-per-process +
//! crossbeam-channel ping-pong, commit 3f7268b), measured on the same
//! class of machine by `scripts/bench_engine.sh` before the scheduler
//! rework landed. Each result also carries the engine's own counters —
//! events scheduled, peak queue depth, direct handoffs vs inline
//! resumes (and their ratio), mailbox fast-path hits (and hit rate) —
//! plus the process's peak RSS, so scheduler-behavior regressions are
//! visible even when wall-clock throughput masks them.
//!
//! The million-rank family (`ring-1m`, `broadcast-1m`, `sparse-1m`)
//! registers 1M ranks of which only 1k are ever active: the calendar
//! queue plus lazy rank materialization must price these like 1k-rank
//! scenarios. `--quick` runs the CI perf-smoke subset (one rep of
//! `ring64` and `sparse-1m`) and fails if `sparse-1m` exceeds ~10× the
//! 64-rank ring's wall clock.

use bytes::Bytes;
use pdceval_campaign::store::{git_sha, unix_timestamp};
use pdceval_simnet::engine::{scheduler_spin_iters, SimOutcome, Simulation};
use pdceval_simnet::envelope::{Envelope, Matcher};
use pdceval_simnet::flight::{Stage, TransmitPlan};
use pdceval_simnet::host::HostSpec;
use pdceval_simnet::ids::ProcId;
use pdceval_simnet::time::SimDuration;
use std::time::Instant;

const NPROCS: usize = 64;
const ROUNDS: u32 = 400;

/// Registered ranks in the million-rank bench family. Only
/// [`ACTIVE_1M`] of them (every [`STRIDE_1M`]-th) are ever active; the
/// rest are lazy registrations that must never materialize, so the
/// family measures that a 1M-rank scenario with a 1k working set prices
/// like a 1k-rank one.
const REG_1M: usize = 1_000_000;
/// Active working set of the million-rank benches.
const ACTIVE_1M: usize = 1_000;
/// Rank-id distance between consecutive active ranks.
const STRIDE_1M: usize = REG_1M / ACTIVE_1M;
/// Rounds for the million-rank family in full mode, sized so event
/// processing (~400k events) dominates the one-time cost of registering
/// 1M lazy ranks (~0.5 s at ~2M registrations/sec) — the steady-state
/// events/sec is then comparable with the 64-rank benches.
const ROUNDS_1M: u32 = 400;
/// Rounds for `sparse-1m` in `--quick` (CI perf-smoke) mode: one token
/// lap per round, 25k events total, still enough to materialize every
/// relay and exercise the steady state.
const ROUNDS_1M_QUICK: u32 = 25;

/// Seed-engine events/sec recorded before the pooled-scheduler rework
/// (commit 3f7268b engine: OS thread per process, two crossbeam-channel
/// hops per simulator call, O(n) mailbox scans). Used to report speedups.
///
/// `pingpong64` did not exist on the seed engine; its baseline is the
/// PR-2 engine (pooled scheduler + indexed mailboxes) measured on this
/// machine class immediately before the mailbox head-slot fast path
/// landed, so its speedup isolates that change.
///
/// The 0.81x regression that baseline exposed was diagnosed as the
/// flight-machinery walk every pure-latency message paid (flight
/// alloc + stage queue + two dispatch hops per event); the engine's
/// direct-`Deliver` bypass removed it, measuring +40% on `pingpong64`
/// and +37% on `ring64` in a same-session A/B. Absolute events/sec
/// (and so `speedup_vs_baseline`) still swings with ambient host load
/// by 10-25% between runs — compare `ring64` across committed
/// snapshots to gauge a run's machine factor before reading meaning
/// into small ratio drifts.
const BASELINE: [(&str, f64); 4] = [
    ("broadcast64", 146_005.0),
    ("ring64", 139_214.0),
    ("globalsum64", 142_489.0),
    ("pingpong64", 760_250.0),
];

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

fn lat() -> TransmitPlan {
    TransmitPlan::single(vec![Stage::Latency(us(10))])
}

/// 64-proc ring: every proc forwards to its successor each round.
/// Messages delivered: NPROCS * ROUNDS.
fn ring(nprocs: usize, rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    for r in 0..nprocs {
        let next = ProcId(((r + 1) % nprocs) as u32);
        sim.spawn_indexed("ring", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                let env = Envelope::new(ctx.pid(), next, round, Bytes::new());
                ctx.transmit(env, lat());
                let _ = ctx.recv(Matcher::tagged(round));
            }
        });
    }
    sim.run().expect("ring sim failed")
}

/// 64-proc broadcast + ack: the root sends to all, everyone acks.
/// Messages delivered: 2 * (NPROCS - 1) * ROUNDS.
fn broadcast(nprocs: usize, rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    sim.spawn_indexed("bcast", 0, HostSpec::sun_ipx(), move |ctx| {
        for round in 0..rounds {
            for dst in 1..nprocs {
                let env = Envelope::new(ctx.pid(), ProcId(dst as u32), round, Bytes::new());
                ctx.transmit(env, lat());
            }
            for _ in 1..nprocs {
                let _ = ctx.recv(Matcher::tagged(round));
            }
        }
    });
    for r in 1..nprocs {
        sim.spawn_indexed("bcast", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                let msg = ctx.recv(Matcher::tagged(round));
                let env = Envelope::new(ctx.pid(), msg.src, round, Bytes::new());
                ctx.transmit(env, lat());
            }
        });
    }
    sim.run().expect("broadcast sim failed")
}

/// 64-proc binary-tree global sum: reduce up the tree, broadcast down.
/// Messages delivered: 2 * (NPROCS - 1) * ROUNDS.
fn global_sum(nprocs: usize, rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    for r in 0..nprocs {
        sim.spawn_indexed("gsum", r, HostSpec::sun_ipx(), move |ctx| {
            let left = 2 * r + 1;
            let right = 2 * r + 2;
            for round in 0..rounds {
                let up_tag = round * 2;
                let down_tag = round * 2 + 1;
                // Combine children's partial sums.
                if left < nprocs {
                    let _ = ctx.recv(Matcher::from_tagged(ProcId(left as u32), up_tag));
                }
                if right < nprocs {
                    let _ = ctx.recv(Matcher::from_tagged(ProcId(right as u32), up_tag));
                }
                if r > 0 {
                    let parent = ProcId(((r - 1) / 2) as u32);
                    let env = Envelope::new(ctx.pid(), parent, up_tag, Bytes::new());
                    ctx.transmit(env, lat());
                    let _ = ctx.recv(Matcher::tagged(down_tag));
                }
                // Fan the result back out.
                for child in [left, right] {
                    if child < nprocs {
                        let env =
                            Envelope::new(ctx.pid(), ProcId(child as u32), down_tag, Bytes::new());
                        ctx.transmit(env, lat());
                    }
                }
            }
        });
    }
    sim.run().expect("global_sum sim failed")
}

/// 32 pairs ping-ponging: the send-then-wait pattern whose mailboxes
/// hold at most one message, i.e. the mailbox head-slot fast path's
/// target shape. Messages delivered: NPROCS * ROUNDS.
fn pingpong(nprocs: usize, rounds: u32) -> SimOutcome {
    assert!(nprocs.is_multiple_of(2), "pingpong needs pairs");
    let mut sim = Simulation::new();
    for r in 0..nprocs {
        let peer = ProcId((r ^ 1) as u32);
        let serves = r % 2 == 0;
        sim.spawn_indexed("pp", r, HostSpec::sun_ipx(), move |ctx| {
            for round in 0..rounds {
                if serves {
                    let env = Envelope::new(ctx.pid(), peer, round, Bytes::new());
                    ctx.transmit(env, lat());
                    let _ = ctx.recv(Matcher::tagged(round));
                } else {
                    let _ = ctx.recv(Matcher::tagged(round));
                    let env = Envelope::new(ctx.pid(), peer, round, Bytes::new());
                    ctx.transmit(env, lat());
                }
            }
        });
    }
    sim.run().expect("pingpong sim failed")
}

/// Ring over the 1k active ranks of a 1M-rank registration: active rank
/// `k` (rank id `k * STRIDE_1M`) forwards to active rank `k + 1`. The
/// 999k in-between ranks are lazy and never touched.
fn ring_1m(rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    for r in 0..REG_1M {
        if r % STRIDE_1M == 0 {
            let k = r / STRIDE_1M;
            let next = ProcId((((k + 1) % ACTIVE_1M) * STRIDE_1M) as u32);
            sim.spawn_indexed("ring", r, HostSpec::sun_ipx(), move |ctx| {
                for round in 0..rounds {
                    let env = Envelope::new(ctx.pid(), next, round, Bytes::new());
                    ctx.transmit(env, lat());
                    let _ = ctx.recv(Matcher::tagged(round));
                }
            });
        } else {
            sim.spawn_indexed_lazy("idle", r, HostSpec::sun_ipx(), |_| {});
        }
    }
    sim.run().expect("ring-1m sim failed")
}

/// Broadcast + ack from one eager root to 999 *lazy* listeners scattered
/// across the 1M-rank id space: every listener materializes on its first
/// round-0 delivery, then acks every round.
fn broadcast_1m(rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    sim.spawn_indexed("bcast", 0, HostSpec::sun_ipx(), move |ctx| {
        for round in 0..rounds {
            for k in 1..ACTIVE_1M {
                let dst = ProcId((k * STRIDE_1M) as u32);
                let env = Envelope::new(ctx.pid(), dst, round, Bytes::new());
                ctx.transmit(env, lat());
            }
            for _ in 1..ACTIVE_1M {
                let _ = ctx.recv(Matcher::tagged(round));
            }
        }
    });
    for r in 1..REG_1M {
        if r % STRIDE_1M == 0 {
            sim.spawn_indexed_lazy("bcast", r, HostSpec::sun_ipx(), move |ctx| {
                for round in 0..rounds {
                    let msg = ctx.recv(Matcher::tagged(round));
                    let env = Envelope::new(ctx.pid(), msg.src, round, Bytes::new());
                    ctx.transmit(env, lat());
                }
            });
        } else {
            sim.spawn_indexed_lazy("idle", r, HostSpec::sun_ipx(), |_| {});
        }
    }
    sim.run().expect("broadcast-1m sim failed")
}

/// A token lap through 1k lazy relays strung across the 1M-rank id
/// space: round 0 materializes the relays one hop at a time, later
/// rounds run the materialized steady state.
fn sparse_1m(rounds: u32) -> SimOutcome {
    let mut sim = Simulation::new();
    sim.spawn_indexed("chain", 0, HostSpec::sun_ipx(), move |ctx| {
        for round in 0..rounds {
            let env = Envelope::new(ctx.pid(), ProcId(STRIDE_1M as u32), round, Bytes::new());
            ctx.transmit(env, lat());
            let _ = ctx.recv(Matcher::tagged(round));
        }
    });
    for r in 1..REG_1M {
        if r % STRIDE_1M == 0 {
            let k = r / STRIDE_1M;
            let dst = if k + 1 < ACTIVE_1M {
                ProcId(((k + 1) * STRIDE_1M) as u32)
            } else {
                ProcId(0)
            };
            sim.spawn_indexed_lazy("chain", r, HostSpec::sun_ipx(), move |ctx| {
                for round in 0..rounds {
                    let _ = ctx.recv(Matcher::tagged(round));
                    let env = Envelope::new(ctx.pid(), dst, round, Bytes::new());
                    ctx.transmit(env, lat());
                }
            });
        } else {
            sim.spawn_indexed_lazy("idle", r, HostSpec::sun_ipx(), |_| {});
        }
    }
    sim.run().expect("sparse-1m sim failed")
}

struct Measurement {
    name: &'static str,
    nprocs: usize,
    events: u64,
    seconds: f64,
    events_per_sec: f64,
    peak_rss_kb: Option<u64>,
    outcome: SimOutcome,
}

/// The process's peak resident set in kB (`VmHWM` from
/// `/proc/self/status`), `None` off Linux. Peak RSS is monotonic across
/// the process lifetime, so per-bench readings report the high-water
/// mark *up to and including* that bench.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn measure(name: &'static str, nprocs: usize, f: impl Fn() -> SimOutcome) -> Measurement {
    measure_reps(name, nprocs, 3, f)
}

fn measure_reps(
    name: &'static str,
    nprocs: usize,
    reps: u32,
    f: impl Fn() -> SimOutcome,
) -> Measurement {
    // Warm-up run (also populates the worker pool).
    let outcome = f();
    let events = outcome.messages_delivered;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let o = f();
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(
            o.messages_delivered, events,
            "non-deterministic event count in {name}"
        );
        best = best.min(dt);
    }
    let m = Measurement {
        name,
        nprocs,
        events,
        seconds: best,
        events_per_sec: events as f64 / best,
        peak_rss_kb: peak_rss_kb(),
        outcome,
    };
    println!(
        "{:<14} {:>9} events  {:>9.4} s  {:>12.0} events/sec",
        m.name, m.events, m.seconds, m.events_per_sec
    );
    m
}

/// `direct_handoffs / (direct_handoffs + inline_resumes)`: how often a
/// wakeup crossed threads via the baton instead of staying inline.
fn handoff_ratio(o: &SimOutcome) -> f64 {
    let total = o.direct_handoffs + o.inline_resumes;
    if total == 0 {
        0.0
    } else {
        o.direct_handoffs as f64 / total as f64
    }
}

/// Fraction of deliveries that matched a parked receiver immediately.
fn fastpath_hit_rate(o: &SimOutcome) -> f64 {
    if o.messages_delivered == 0 {
        0.0
    } else {
        o.mailbox_fast_path_hits as f64 / o.messages_delivered as f64
    }
}

/// The wall-clock budget the sparse-1m bench must stay inside: ~10× the
/// 64-rank ring's wall clock normalized to the same event count (the
/// scheduler prices 1M registered ranks like the active 1k, so the only
/// extra cost is registration), with a small floor so a fast machine's
/// timer noise can't fail the check.
fn assert_sparse_budget(ring64: &Measurement, sparse: &Measurement) {
    let per_event_budget = 10.0 * ring64.seconds / ring64.events as f64;
    let budget = (per_event_budget * sparse.events as f64).max(0.5);
    assert!(
        sparse.seconds <= budget,
        "sparse-1m took {:.3}s, over its {:.3}s budget (10x ring64 at {:.0} events/sec): \
         1M-rank registration no longer prices like its 1k active ranks",
        sparse.seconds,
        budget,
        ring64.events_per_sec
    );
    println!(
        "perf-smoke: sparse-1m {:.3}s within {:.3}s budget",
        sparse.seconds, budget
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // Perf-smoke mode for CI: one measured rep of the 64-rank ring and
    // the sparse million-rank chain, plus the wall-clock budget check.
    let quick = args.iter().any(|a| a == "--quick");
    // `--only <name>` (repeatable) restricts the full run to the named
    // benches — a diagnosis aid for chasing one bench's regression
    // without paying for (or being perturbed by) the rest of the suite.
    let only: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--only")
        .filter_map(|(i, _)| args.get(i + 1))
        .collect();
    let want = |name: &str| only.is_empty() || only.iter().any(|o| *o == name);

    let results: Vec<Measurement> = if quick {
        let ring64 = measure_reps("ring64", NPROCS, 1, || ring(NPROCS, ROUNDS));
        let sparse = measure_reps("sparse-1m", REG_1M, 1, || sparse_1m(ROUNDS_1M_QUICK));
        assert_sparse_budget(&ring64, &sparse);
        vec![ring64, sparse]
    } else {
        let mut all = Vec::new();
        if want("broadcast64") {
            all.push(measure("broadcast64", NPROCS, || broadcast(NPROCS, ROUNDS)));
        }
        if want("ring64") {
            all.push(measure("ring64", NPROCS, || ring(NPROCS, ROUNDS)));
        }
        if want("globalsum64") {
            all.push(measure("globalsum64", NPROCS, || {
                global_sum(NPROCS, ROUNDS)
            }));
        }
        if want("pingpong64") {
            all.push(measure("pingpong64", NPROCS, || pingpong(NPROCS, ROUNDS)));
        }
        if want("ring-1m") {
            all.push(measure("ring-1m", REG_1M, || ring_1m(ROUNDS_1M)));
        }
        if want("broadcast-1m") {
            // Broadcast delivers two messages per listener per round;
            // halve the rounds to keep the event total comparable.
            all.push(measure("broadcast-1m", REG_1M, || {
                broadcast_1m(ROUNDS_1M / 2)
            }));
        }
        if want("sparse-1m") {
            all.push(measure("sparse-1m", REG_1M, || sparse_1m(ROUNDS_1M)));
        }
        let ring64 = all.iter().find(|m| m.name == "ring64");
        let sparse = all.iter().find(|m| m.name == "sparse-1m");
        if let (Some(ring64), Some(sparse)) = (ring64, sparse) {
            assert_sparse_budget(ring64, sparse);
        }
        all
    };

    let mut json = String::from("{\n  \"bench\": \"engine\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    // Same provenance fields as the campaign results store, so bench JSON
    // is comparable across PRs.
    json.push_str(&format!(
        "  \"git_sha\": {},\n  \"timestamp\": {},\n",
        match git_sha() {
            Some(sha) => format!("\"{sha}\""),
            None => "null".to_string(),
        },
        unix_timestamp()
    ));
    json.push_str(&format!(
        "  \"nprocs\": {NPROCS},\n  \"rounds\": {ROUNDS},\n"
    ));
    // The adaptive spin-before-park setting in effect (0 = single-core
    // machine, spin disabled), so runs on different hosts are comparable.
    json.push_str(&format!(
        "  \"available_parallelism\": {},\n  \"spin_before_park_iters\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        scheduler_spin_iters()
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let baseline = BASELINE
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        let speedup = m.events_per_sec / baseline;
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"nprocs\": {}, \"events\": {}, \"seconds\": {:.6}, \
             \"events_per_sec\": {:.0}, \
             \"events_scheduled\": {}, \"peak_queue_depth\": {}, \"direct_handoffs\": {}, \
             \"inline_resumes\": {}, \"handoff_ratio\": {:.4}, \"mailbox_fast_path_hits\": {}, \
             \"fastpath_hit_rate\": {:.4}, \"peak_rss_kb\": {}, \"rss_bytes_per_rank\": {}, \
             \"baseline_events_per_sec\": {}, \"speedup_vs_baseline\": {}}}{}\n",
            m.name,
            m.nprocs,
            m.events,
            m.seconds,
            m.events_per_sec,
            m.outcome.events_scheduled,
            m.outcome.peak_queue_depth,
            m.outcome.direct_handoffs,
            m.outcome.inline_resumes,
            handoff_ratio(&m.outcome),
            m.outcome.mailbox_fast_path_hits,
            fastpath_hit_rate(&m.outcome),
            match m.peak_rss_kb {
                Some(kb) => kb.to_string(),
                None => "null".to_string(),
            },
            match m.peak_rss_kb {
                Some(kb) => format!("{:.0}", kb as f64 * 1024.0 / m.nprocs as f64),
                None => "null".to_string(),
            },
            if baseline.is_nan() {
                "null".to_string()
            } else {
                format!("{baseline:.0}")
            },
            if speedup.is_nan() {
                "null".to_string()
            } else {
                format!("{speedup:.2}")
            },
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("failed to write bench JSON");
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
