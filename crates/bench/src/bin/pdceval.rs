//! The campaign CLI: declare, run, store and gate scenario sweeps.
//!
//! Usage:
//!
//! ```bash
//! pdceval list [--quick]
//! pdceval run [--campaign NAME] [--quick] [--workers N] [--out PATH]
//!             [--baseline PATH] [--threshold PCT]
//! pdceval diff BASELINE NEW [--threshold PCT]
//! ```
//!
//! `run` executes the named campaign (default: `quick`) across a worker
//! pool and writes a JSONL results store stamped with the git SHA and
//! timestamp. With `--baseline` it additionally compares the fresh
//! results against a stored baseline and exits nonzero on regressions,
//! which is the CI gating mode. `diff` compares two stores offline.

use pdceval_campaign::campaigns;
use pdceval_campaign::diff::diff_records;
use pdceval_campaign::runner::{run_campaign, RecordStatus};
use pdceval_campaign::scenario::Scale;
use pdceval_campaign::store;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pdceval list [--quick]\n  pdceval run [--campaign NAME] [--quick] \
         [--workers N] [--out PATH] [--baseline PATH] [--threshold PCT]\n  \
         pdceval diff BASELINE NEW [--threshold PCT]"
    );
    ExitCode::FAILURE
}

/// Flags that consume the following token as their value; everything
/// else (`--quick`) is boolean and must not swallow positionals.
const VALUE_FLAGS: [&str; 5] = ["campaign", "workers", "out", "baseline", "threshold"];

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if VALUE_FLAGS.contains(&name)
                    && matches!(it.peek(), Some(v) if !v.starts_with("--"))
                {
                    it.next().cloned()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn scale(args: &Args) -> Scale {
    if args.has("quick") {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

fn threshold(args: &Args) -> Result<f64, ExitCode> {
    match args.value("threshold") {
        None if args.has("threshold") => {
            eprintln!("--threshold needs a value (a percentage like 5 or 5%)");
            Err(ExitCode::FAILURE)
        }
        None => Ok(0.0),
        Some(raw) => match raw.trim_end_matches('%').parse::<f64>() {
            Ok(pct) if pct >= 0.0 => Ok(pct / 100.0),
            _ => {
                eprintln!("bad --threshold '{raw}' (expected a percentage like 5 or 5%)");
                Err(ExitCode::FAILURE)
            }
        },
    }
}

fn cmd_list(args: &Args) -> ExitCode {
    let s = scale(args);
    println!("{:<22} {:>7}  TITLE", "NAME", "POINTS");
    for c in campaigns::all(s) {
        println!("{:<22} {:>7}  {}", c.name, c.scenarios.len(), c.title);
    }
    ExitCode::SUCCESS
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn cmd_run(args: &Args) -> ExitCode {
    let s = scale(args);
    let name = args.value("campaign").unwrap_or("quick");
    let Some(campaign) = campaigns::by_name(name, s) else {
        eprintln!("unknown campaign '{name}' — see `pdceval list`");
        return ExitCode::FAILURE;
    };
    let workers = match args.value("workers") {
        None => default_workers(),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bad --workers '{raw}'");
                return ExitCode::FAILURE;
            }
        },
    };
    let out_path = PathBuf::from(args.value("out").unwrap_or("target/campaign/results.jsonl"));
    let gate_threshold = match threshold(args) {
        Ok(t) => t,
        Err(code) => return code,
    };

    eprintln!(
        "running campaign '{}' ({} points) on {} worker(s)...",
        campaign.name,
        campaign.scenarios.len(),
        workers
    );
    let started = std::time::Instant::now();
    let records = run_campaign(&campaign.scenarios, workers);
    let elapsed = started.elapsed().as_secs_f64();

    let ok = records
        .iter()
        .filter(|r| r.status == RecordStatus::Ok)
        .count();
    let errors = records
        .iter()
        .filter(|r| r.status == RecordStatus::Error)
        .count();
    let meta = store::StoreMeta::capture();
    if let Err(e) = store::write_jsonl(&out_path, &records, &meta) {
        eprintln!("failed to write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{} ok / {} error / {} total in {elapsed:.1}s -> {} (git {})",
        ok,
        errors,
        records.len(),
        out_path.display(),
        meta.git_sha.as_deref().unwrap_or("unknown"),
    );
    for r in records.iter().filter(|r| r.status == RecordStatus::Error) {
        eprintln!(
            "  error {}: {}",
            r.scenario.key(),
            r.detail.as_deref().unwrap_or("unknown")
        );
    }
    if errors > 0 {
        return ExitCode::FAILURE;
    }

    if let Some(baseline) = args.value("baseline") {
        let base = match store::load_jsonl(&PathBuf::from(baseline)) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let new_text = store::render_jsonl(&records, &meta);
        let new = store::parse_jsonl(&new_text).expect("freshly rendered store must parse");
        let report = diff_records(&base, &new, gate_threshold);
        print!("{}", report.render());
        if !report.passes() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &Args) -> ExitCode {
    let [base_path, new_path] = args.positional.as_slice() else {
        return usage();
    };
    let t = match threshold(args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let base = match store::load_jsonl(&PathBuf::from(base_path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let new = match store::load_jsonl(&PathBuf::from(new_path)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = diff_records(&base, &new, t);
    print!("{}", report.render());
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "list" => cmd_list(&args),
        "run" => cmd_run(&args),
        "diff" => cmd_diff(&args),
        _ => usage(),
    }
}
