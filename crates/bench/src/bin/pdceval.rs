//! The campaign CLI: declare, run, store and gate scenario sweeps.
//!
//! Usage:
//!
//! ```bash
//! pdceval list [--quick] [--spec FILE] [--remix G=N,...]
//! pdceval run [--campaign NAME] [--quick] [--workers N] [--out PATH]
//!             [--baseline PATH] [--threshold PCT] [--spec FILE]
//!             [--remix G=N,...] [--trace-dir DIR] [--quiet]
//! pdceval diff BASELINE NEW [--threshold PCT]
//! pdceval bless STORE [--baseline PATH]
//! pdceval validate FILE.spec
//! pdceval lint FILE.spec... [--deny-warnings]
//! pdceval snapshot OUT.spec [--spec FILE]
//! pdceval explain KEY [--trace-dir DIR]
//! pdceval cache stats|gc|clear [--cache-dir DIR] [--keep N] [--json]
//! pdceval serve [--addr HOST:PORT] [--socket PATH] [--workers N] [--cache-dir DIR]
//! ```
//!
//! `run` executes the named campaign (default: `quick`) across a worker
//! pool and writes a JSONL results store stamped with the git SHA and
//! timestamp. With `--baseline` it additionally compares the fresh
//! results against a stored baseline and exits nonzero on regressions,
//! which is the CI gating mode. `diff` compares two stores offline.
//!
//! `--spec FILE` loads user-defined tool/platform/campaign specs (see
//! the `.spec` format in `pdceval_mpt::spec` and `examples/modern.spec`)
//! into the model registry before anything runs. A spec file can declare
//! its own named sweeps as `[campaign <name>]` stanzas; with `--spec`
//! and no explicit `--campaign`, `run` executes the file's first
//! declared campaign, falling back to the synthesized `spec-smoke`
//! campaign when the file declares none — either way a new tool,
//! testbed or sweep runs end-to-end with zero code changes.
//!
//! Spec files can also declare seeded `[perturb <name>]` fault models
//! (latency jitter, congestion, stragglers, message loss, rank
//! crashes); a campaign selects them with `perturb = none chaos` plus a
//! `seeds = N` axis. Perturbed runs append `/<perturb>/seed<N>` to
//! their store keys, crash-model errors are reported as tolerated
//! injected faults rather than run failures, and `run` prints a
//! degradation summary (clean-vs-perturbed slowdown per tool, crash
//! survival) whenever a campaign swept perturbations.
//!
//! `--remix fast=4,slow=12` registers count variants of every loaded
//! heterogeneous platform whose group names match (under the derived
//! slug `<platform>-4fast-12slow`) and adds them to the loaded platform
//! set, so one spec file plus one flag sweeps group mixes.
//!
//! `run --trace-dir DIR` attaches a record-only trace sink to every
//! scenario and writes, per completed point, a Chrome trace-event JSON
//! (`<key>.trace.json`, loadable in Perfetto) plus a flat explain
//! summary (`<key>.explain.jsonl`); the store additionally carries the
//! engine counters (events scheduled, handoffs, fast-path hits,
//! bytes/fragments per link class, retransmits). Tracing never changes
//! a measured value — traced stores differ from untraced ones only by
//! the extra counter fields. `explain KEY` renders a summary as a text
//! breakdown of where virtual time went, and for a perturbed key diffs
//! it against its clean twin. While `run` executes on a terminal, a
//! progress line per completed scenario goes to stderr; `--quiet`
//! suppresses it.
//!
//! `run` answers from the content-addressed results cache by default
//! (`target/campaign/cache`, override with `--cache-dir`): each
//! scenario's record is addressed by a digest over its key, its
//! repetition count, the specs it references and the binary's own
//! content hash, so a warm re-run executes nothing and still writes a
//! store byte-identical to the cold run's. `--no-cache` opts out;
//! traced runs bypass the cache automatically. `cache stats|gc|clear`
//! maintain the directory, and `serve` keeps one cache plus a bounded
//! executor pool warm behind a TCP/Unix socket answering
//! newline-delimited JSON queries (see `pdceval_campaign::serve`).
//!
//! `bless` promotes a results store to the committed baseline
//! (default `baselines/quick.jsonl`), refusing stores with error
//! records; CI diffs every PR's fresh quick campaign against it.
//!
//! `validate` parses and validates a spec file — including resolved
//! topologies (rank placement per group, link classes) — and prints the
//! result without registering or running anything. `lint` runs the
//! static analyzer from `pdceval_check::lint` over one or more spec
//! files: beyond validate's selector cross-checks it flags dead models,
//! unsatisfiable sweep grids, capacity overruns, never-firing perturb
//! stanzas, slug collisions/shadowing and suspicious unit magnitudes,
//! each as a coded, located diagnostic (`warning[L0102]: file.spec:12:
//! ...`; the code index lives in `pdceval_mpt::diag`). Exit-code
//! contract: `0` clean (or warnings only), `1` warnings under
//! `--deny-warnings`, `2` any error — the same contract CI uses to gate
//! the shipped example specs. `snapshot`
//! serializes the whole live registry (built-ins plus anything loaded
//! with `--spec`) back into one spec file for reproducible sharing of a
//! custom scenario set.

use pdceval_campaign::cache::{run_campaign_cached, CampaignCache, DEFAULT_CACHE_DIR};
use pdceval_campaign::campaigns;
use pdceval_campaign::campaigns::Campaign;
use pdceval_campaign::diff::{degradation_summary, diff_records, render_degradation};
use pdceval_campaign::runner::{
    run_campaign_with, CampaignOptions, RecordStatus, ScenarioDoneFn, ScenarioRecord,
};
use pdceval_campaign::scenario::Scale;
use pdceval_campaign::serve::{ServeState, Server};
use pdceval_campaign::store;
use pdceval_mpt::registry::{LoadedSpecs, ModelRegistry};
use std::io::IsTerminal;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pdceval list [--quick] [--spec FILE] [--remix G=N,...]\n  pdceval run \
         [--campaign NAME] [--quick] [--workers N] [--out PATH] [--baseline PATH] \
         [--threshold PCT] [--spec FILE] [--remix G=N,...] [--trace-dir DIR] [--quiet] \
         [--no-cache] [--cache-dir DIR]\n  \
         pdceval diff BASELINE NEW [--threshold PCT]\n  pdceval bless STORE [--baseline PATH]\n  \
         pdceval validate FILE.spec\n  pdceval lint FILE.spec... [--deny-warnings]\n  \
         pdceval snapshot OUT.spec [--spec FILE]\n  \
         pdceval explain KEY [--trace-dir DIR]\n  \
         pdceval cache stats|gc|clear [--cache-dir DIR] [--keep N] [--json]\n  \
         pdceval serve [--addr HOST:PORT] [--socket PATH] [--workers N] [--cache-dir DIR] \
         [--quick] [--spec FILE] [--remix G=N,...]"
    );
    ExitCode::FAILURE
}

/// Flags that consume the following token as their value; everything
/// else (`--quick`, `--no-cache`, `--json`) is boolean and must not
/// swallow positionals.
const VALUE_FLAGS: [&str; 12] = [
    "campaign",
    "workers",
    "out",
    "baseline",
    "threshold",
    "spec",
    "remix",
    "trace-dir",
    "cache-dir",
    "addr",
    "socket",
    "keep",
];

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if VALUE_FLAGS.contains(&name)
                    && matches!(it.peek(), Some(v) if !v.starts_with("--"))
                {
                    it.next().cloned()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn scale(args: &Args) -> Scale {
    if args.has("quick") {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

fn threshold(args: &Args) -> Result<f64, ExitCode> {
    match args.value("threshold") {
        None if args.has("threshold") => {
            eprintln!("--threshold needs a value (a percentage like 5 or 5%)");
            Err(ExitCode::FAILURE)
        }
        None => Ok(0.0),
        Some(raw) => match raw.trim_end_matches('%').parse::<f64>() {
            Ok(pct) if pct >= 0.0 => Ok(pct / 100.0),
            _ => {
                eprintln!("bad --threshold '{raw}' (expected a percentage like 5 or 5%)");
                Err(ExitCode::FAILURE)
            }
        },
    }
}

/// Loads `--spec FILE` (if given) into the process-global model
/// registry, reporting what was registered, and applies `--remix`.
fn load_spec(args: &Args) -> Result<Option<LoadedSpecs>, ExitCode> {
    let Some(path) = args.value("spec") else {
        if args.has("spec") {
            eprintln!("--spec needs a file path");
            return Err(ExitCode::FAILURE);
        }
        if args.has("remix") {
            eprintln!("--remix needs --spec (built-in platforms are homogeneous)");
            return Err(ExitCode::FAILURE);
        }
        return Ok(None);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read spec file {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let registry = ModelRegistry::global();
    let mut loaded = match registry.load_spec_text(&text) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("{path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    // Reject shadowed names at load: the built-in campaign would win
    // the name lookup, silently running a different sweep than the one
    // the file declares.
    for c in &loaded.campaigns {
        if campaigns::is_reserved_name(&c.slug) {
            eprintln!(
                "{path}: campaign '{}' collides with a built-in campaign name — rename it \
                 (see `pdceval list`)",
                c.slug
            );
            return Err(ExitCode::FAILURE);
        }
    }
    if let Err(e) = apply_remix(args, &mut loaded) {
        eprintln!("{e}");
        return Err(ExitCode::FAILURE);
    }
    let tools: Vec<String> = loaded.tools.iter().map(|t| t.slug()).collect();
    let platforms: Vec<String> = loaded.platforms.iter().map(|p| p.slug()).collect();
    let perturbs: Vec<String> = loaded.perturbs.iter().map(|p| p.slug()).collect();
    let campaign_names: Vec<String> = loaded.campaigns.iter().map(|c| c.slug.clone()).collect();
    eprintln!(
        "loaded {path}: {} tool(s) [{}], {} platform(s) [{}], {} perturb(s) [{}], \
         {} campaign(s) [{}]",
        tools.len(),
        tools.join(", "),
        platforms.len(),
        platforms.join(", "),
        perturbs.len(),
        perturbs.join(", "),
        campaign_names.len(),
        campaign_names.join(", ")
    );
    Ok(Some(loaded))
}

/// Parses `--remix fast=4,slow=12` into `(group, count)` pairs.
fn parse_remix(raw: &str) -> Result<Vec<(String, usize)>, String> {
    let mut pairs = Vec::new();
    for part in raw.split(',') {
        let Some((name, count)) = part.split_once('=') else {
            return Err(format!(
                "bad --remix entry '{part}' (expected group=count, e.g. fast=4)"
            ));
        };
        let (name, count) = (name.trim(), count.trim());
        let count: usize = count
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad --remix count '{count}' for group '{name}'"))?;
        if pairs.iter().any(|(n, _)| n == name) {
            return Err(format!("--remix names group '{name}' twice"));
        }
        pairs.push((name.to_string(), count));
    }
    Ok(pairs)
}

/// Applies `--remix G=N,...`: for every loaded heterogeneous platform
/// whose group names exactly match the remix pairs, registers a count
/// variant built with `Topology::remix` under the derived slug
/// `<platform>-<mix>` and appends it to the loaded platform set.
fn apply_remix(args: &Args, loaded: &mut LoadedSpecs) -> Result<(), String> {
    let Some(raw) = args.value("remix") else {
        if args.has("remix") {
            return Err("--remix needs a value like fast=4,slow=12".to_string());
        }
        return Ok(());
    };
    let pairs = parse_remix(raw)?;
    let registry = ModelRegistry::global();
    let mut remixed = Vec::new();
    for &p in &loaded.platforms {
        let spec = p.spec();
        if !spec.topology.is_heterogeneous() {
            continue;
        }
        // Every group must be named exactly once, in any order.
        let names: Vec<&str> = spec
            .topology
            .groups
            .iter()
            .map(|g| g.name.as_str())
            .collect();
        if names.len() != pairs.len() || !names.iter().all(|n| pairs.iter().any(|(p, _)| p == n)) {
            continue;
        }
        let counts: Vec<usize> = names
            .iter()
            .map(|n| {
                pairs
                    .iter()
                    .find(|(p, _)| p == n)
                    .map(|(_, c)| *c)
                    .expect("every group name was just matched")
            })
            .collect();
        let topology = spec.topology.remix(&counts);
        let mix = topology
            .hetero_slug()
            .expect("remixed multi-group topologies stay heterogeneous");
        let new_spec = pdceval_simnet::platform::PlatformSpec {
            name: format!("{} (remix {mix})", spec.name),
            slug: format!("{}-{mix}", spec.slug),
            max_nodes: topology.total_hosts(),
            topology,
            wan: spec.wan,
        };
        let id = registry
            .register_platform(new_spec)
            .map_err(|e| format!("--remix: {e}"))?;
        remixed.push(id);
    }
    if remixed.is_empty() {
        return Err(format!(
            "--remix {raw}: no loaded heterogeneous platform has exactly these groups"
        ));
    }
    let slugs: Vec<String> = remixed.iter().map(|p| p.slug()).collect();
    eprintln!("remixed: {}", slugs.join(", "));
    loaded.platforms.extend(remixed);
    Ok(())
}

/// The campaigns visible to `list`/`run`: the declared defaults plus,
/// when specs are loaded, the file's own `[campaign]` stanzas and the
/// synthesized `spec-smoke` campaign — and `hetero-smoke` when any
/// loaded platform is heterogeneous. A stanza that fails to
/// materialize is skipped with a warning (consistent with `validate`)
/// so it cannot take down unrelated campaigns; asking for it by name
/// then fails as unknown, with the warning explaining why.
fn visible_campaigns(s: Scale, loaded: &Option<LoadedSpecs>) -> Vec<Campaign> {
    let mut out = campaigns::all(s);
    if let Some(loaded) = loaded {
        for c in &loaded.campaigns {
            match campaigns::from_spec(c, &loaded.tools, &loaded.platforms, s) {
                Ok(campaign) => out.push(campaign),
                Err(e) => eprintln!("warning: {e} — campaign skipped"),
            }
        }
        out.push(campaigns::spec_smoke(&loaded.tools, &loaded.platforms, s));
        if loaded.platforms.iter().any(|p| p.is_heterogeneous()) {
            out.push(campaigns::hetero_smoke(&loaded.platforms, s));
        }
    }
    out
}

fn cmd_list(args: &Args) -> ExitCode {
    let s = scale(args);
    let loaded = match load_spec(args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    println!("{:<22} {:>7}  TITLE", "NAME", "POINTS");
    for c in visible_campaigns(s, &loaded) {
        println!("{:<22} {:>7}  {}", c.name, c.scenarios.len(), c.title);
    }
    ExitCode::SUCCESS
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn cmd_run(args: &Args) -> ExitCode {
    let s = scale(args);
    let loaded = match load_spec(args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    // With loaded specs and no explicit --campaign, run what the spec
    // declared: its first [campaign] stanza, or the synthesized
    // spec-smoke fallback when the file declares none.
    let name = args
        .value("campaign")
        .map(str::to_string)
        .unwrap_or_else(|| match &loaded {
            Some(l) if !l.campaigns.is_empty() => l.campaigns[0].slug.clone(),
            Some(_) => "spec-smoke".to_string(),
            None => "quick".to_string(),
        });
    let Some(campaign) = visible_campaigns(s, &loaded)
        .into_iter()
        .find(|c| c.name == name)
    else {
        eprintln!("unknown campaign '{name}' — see `pdceval list`");
        return ExitCode::FAILURE;
    };
    let workers = match args.value("workers") {
        None => default_workers(),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bad --workers '{raw}'");
                return ExitCode::FAILURE;
            }
        },
    };
    let out_path = PathBuf::from(args.value("out").unwrap_or("target/campaign/results.jsonl"));
    let gate_threshold = match threshold(args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let trace_dir = match args.value("trace-dir") {
        Some(d) => Some(PathBuf::from(d)),
        None if args.has("trace-dir") => {
            eprintln!("--trace-dir needs a directory path");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    // Provenance is captured exactly once per invocation, before
    // anything runs: the same stamp feeds the store, the cache entries
    // and the summary line (and `cache::code_fingerprint` memoizes the
    // binary hash the same way).
    let mut meta = store::StoreMeta::capture();
    // Traced runs opt their stores into the counter fields; untraced
    // stores stay byte-identical to pre-trace-layer ones.
    meta.emit_counters = trace_dir.is_some();
    // The cache is on by default; traced runs bypass it (a hit cannot
    // re-produce trace files or counter fields).
    let cache_dir = PathBuf::from(args.value("cache-dir").unwrap_or(DEFAULT_CACHE_DIR));
    let mut cache = if args.has("no-cache") || trace_dir.is_some() {
        None
    } else {
        match CampaignCache::open(&cache_dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("warning: {e} — running uncached");
                None
            }
        }
    };

    eprintln!(
        "running campaign '{}' ({} points) on {} worker(s)...",
        campaign.name,
        campaign.scenarios.len(),
        workers
    );
    let started = std::time::Instant::now();
    // One progress line per completed scenario, only when a human is
    // watching: suppressed by --quiet and off-terminal stderr, so
    // redirected/CI output streams stay deterministic.
    let progress = !args.has("quiet") && std::io::stderr().is_terminal();
    let on_done = move |done: usize, total: usize, r: &ScenarioRecord| {
        eprintln!(
            "  [{done}/{total}] {:.1}s {} ({})",
            started.elapsed().as_secs_f64(),
            r.scenario.key(),
            r.status.slug(),
        );
    };
    let opts = CampaignOptions {
        trace_dir: trace_dir.as_deref(),
        on_scenario_done: progress.then_some(&on_done as ScenarioDoneFn<'_>),
    };
    let records = match cache.as_mut() {
        Some(cache) => {
            let (records, report) =
                run_campaign_cached(&campaign.scenarios, workers, &opts, cache, &meta);
            eprintln!("cache: {} hit(s) / {} miss(es)", report.hits, report.misses);
            records
        }
        None => run_campaign_with(&campaign.scenarios, workers, &opts),
    };
    let elapsed = started.elapsed().as_secs_f64();

    let ok = records
        .iter()
        .filter(|r| r.status == RecordStatus::Ok)
        .count();
    // A crash-model point *should* end in a structured injected-fault
    // error; only errors without that explanation fail the run.
    let is_expected_fault = |r: &&ScenarioRecord| {
        r.status == RecordStatus::Error
            && r.detail
                .as_deref()
                .is_some_and(|d| d.contains("fault injection"))
    };
    let injected = records.iter().filter(is_expected_fault).count();
    let errors = records
        .iter()
        .filter(|r| r.status == RecordStatus::Error)
        .count()
        - injected;
    if let Err(e) = store::write_jsonl(&out_path, &records, &meta) {
        eprintln!("failed to write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{} ok / {} injected-fault / {} error / {} total in {elapsed:.1}s -> {} (git {})",
        ok,
        injected,
        errors,
        records.len(),
        out_path.display(),
        meta.git_sha.as_deref().unwrap_or("unknown"),
    );
    if let Some(dir) = &trace_dir {
        eprintln!(
            "traces -> {} (view *.trace.json in Perfetto; `pdceval explain KEY --trace-dir {}`)",
            dir.display(),
            dir.display()
        );
    }
    for r in records
        .iter()
        .filter(|r| r.status == RecordStatus::Error && !is_expected_fault(r))
    {
        eprintln!(
            "  error {}: {}",
            r.scenario.key(),
            r.detail.as_deref().unwrap_or("unknown")
        );
    }
    // Score tools on their degradation curves when the campaign swept
    // perturbations: clean-vs-perturbed slowdown plus crash survival.
    if records.iter().any(|r| r.scenario.perturb.is_some()) {
        let stored = store::parse_jsonl(&store::render_jsonl(&records, &meta))
            .expect("freshly rendered store must parse");
        print!("{}", render_degradation(&degradation_summary(&stored)));
    }
    if errors > 0 {
        return ExitCode::FAILURE;
    }

    if let Some(baseline) = args.value("baseline") {
        let base = match store::load_jsonl(&PathBuf::from(baseline)) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let new_text = store::render_jsonl(&records, &meta);
        let new = store::parse_jsonl(&new_text).expect("freshly rendered store must parse");
        let report = match diff_records(&base, &new, gate_threshold) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.render());
        if !report.passes() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &Args) -> ExitCode {
    let [base_path, new_path] = args.positional.as_slice() else {
        return usage();
    };
    let t = match threshold(args) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let base = match store::load_jsonl(&PathBuf::from(base_path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let new = match store::load_jsonl(&PathBuf::from(new_path)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match diff_records(&base, &new, t) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints one resolved tool spec.
fn print_tool(t: &pdceval_mpt::spec::ToolSpec) {
    use pdceval_mpt::spec::PortPolicy;
    println!("tool {}: {}", t.slug, t.name);
    let prims: Vec<String> = pdceval_mpt::Primitive::all()
        .into_iter()
        .map(|p| {
            format!(
                "{}={}",
                p.name(),
                t.primitives[p.spec_index()].as_deref().unwrap_or("n/a")
            )
        })
        .collect();
    println!("  primitives: {}", prims.join(", "));
    let ports = match &t.ports {
        PortPolicy::All { wan: true } => "all platforms".to_string(),
        PortPolicy::All { wan: false } => "all platforms except WANs".to_string(),
        PortPolicy::Allow(slugs) => format!("only [{}]", slugs.join(", ")),
        PortPolicy::Deny(slugs) => format!("all except [{}]", slugs.join(", ")),
    };
    println!("  ports: {ports}");
}

/// Prints one resolved platform spec, including its topology: per-group
/// rank ranges, host models and link classes.
fn print_platform(p: &pdceval_simnet::platform::PlatformSpec) {
    println!(
        "platform {}: {} ({} node(s){})",
        p.slug,
        p.name,
        p.max_nodes,
        if p.wan { ", wan" } else { "" }
    );
    let mut start = 0;
    for g in &p.topology.groups {
        println!(
            "  group {}: ranks {}..{} — {} — link {} ({} Mb/s, {}, mtu {})",
            g.name,
            start,
            start + g.count,
            g.host,
            g.link.name,
            g.link.bandwidth_mbps,
            if g.link.shared_medium {
                "shared"
            } else {
                "switched"
            },
            g.link.mtu
        );
        start += g.count;
    }
    if let Some(inter) = &p.topology.inter {
        println!(
            "  inter-group link: {} ({} Mb/s, {} us, mtu {})",
            inter.name,
            inter.bandwidth_mbps,
            inter.latency.as_micros_f64(),
            inter.mtu
        );
    }
}

/// Prints one declared campaign stanza.
fn print_campaign(c: &pdceval_mpt::spec::CampaignSpec) {
    println!(
        "campaign {}: {}",
        c.slug,
        c.title.as_deref().unwrap_or("(untitled)")
    );
    println!("  kernels: {}", c.kernels.join(", "));
    let selector = |list: &[String]| {
        if list.is_empty() {
            "(spec default)".to_string()
        } else {
            list.join(", ")
        }
    };
    println!("  tools: {}", selector(&c.tools));
    println!("  platforms: {}", selector(&c.platforms));
    let nums = |list: &[String]| list.join(" ");
    println!(
        "  nprocs: {} | sizes: {} | reps: {}",
        nums(&c.nprocs.iter().map(|n| n.to_string()).collect::<Vec<_>>()),
        nums(&c.sizes.iter().map(|n| n.to_string()).collect::<Vec<_>>()),
        c.reps
    );
    if !c.perturbs.is_empty() {
        println!(
            "  perturbations: {} | seeds: 1..={}",
            c.perturbs.join(", "),
            c.seeds
        );
    }
}

/// Prints one declared perturbation stanza.
fn print_perturb(p: &pdceval_simnet::perturb::PerturbSpec) {
    println!(
        "perturb {}: {}",
        p.slug,
        p.title.as_deref().unwrap_or("(untitled)")
    );
    let mut knobs = Vec::new();
    if p.jitter > 0.0 {
        knobs.push(format!("jitter {}", p.jitter));
    }
    if p.congestion > 0.0 {
        knobs.push(format!("congestion {}", p.congestion));
    }
    for (group, factor) in &p.stragglers {
        knobs.push(format!("straggler {group} x{factor}"));
    }
    if p.loss > 0.0 {
        knobs.push(format!(
            "loss {} (timeout {} us)",
            p.loss, p.loss_timeout_us
        ));
    }
    if let (Some(rank), Some(at)) = (p.crash_rank, p.crash_at_us) {
        knobs.push(format!("crash rank {rank} at {at} us"));
    }
    if knobs.is_empty() {
        knobs.push("(no-op)".to_string());
    }
    println!("  {}", knobs.join(" | "));
}

/// `pdceval validate FILE.spec`: parse + validate + print the resolved
/// specs (including resolved topologies) without registering or running
/// anything.
fn cmd_validate(args: &Args) -> ExitCode {
    let [path] = args.positional.as_slice() else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read spec file {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match pdceval_mpt::spec::parse_spec(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for t in &file.tools {
        print_tool(t);
    }
    for p in &file.platforms {
        print_platform(p);
    }
    for p in &file.perturbs {
        print_perturb(p);
    }
    for c in &file.campaigns {
        print_campaign(c);
    }
    // Selector typos (tool port lists, campaign tool/platform/perturb
    // selections naming nothing in this file or the registry) would
    // silently disable models; the shared analyzer owns those checks
    // now, and `render_bare` keeps the historical output byte-for-byte.
    for d in pdceval_check::lint::selector_warnings(&file) {
        eprintln!("{}", d.render_bare());
    }
    eprintln!(
        "{path}: OK ({} tool(s), {} platform(s), {} perturbation(s), {} campaign(s))",
        file.tools.len(),
        file.platforms.len(),
        file.perturbs.len(),
        file.campaigns.len()
    );
    ExitCode::SUCCESS
}

/// `pdceval lint FILE.spec... [--deny-warnings]`: run the whole-spec
/// static analyzer over each file and print coded, located diagnostics.
///
/// Exit-code contract (documented in `pdceval_mpt::diag::exit_code`):
/// `0` when every file is clean or carries only warnings, `1` when any
/// warning fires under `--deny-warnings`, `2` when any file has an
/// error (parse failure, unsatisfiable grid, slug shadowing, ...). The
/// worst code across all files wins.
fn cmd_lint(args: &Args) -> ExitCode {
    if args.positional.is_empty() {
        return usage();
    }
    let deny_warnings = args.has("deny-warnings");
    let mut worst: u8 = 0;
    for path in &args.positional {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read spec file {path}: {e}");
                worst = worst.max(2);
                continue;
            }
        };
        let diags = pdceval_check::lint::lint_text(path, &text);
        for d in &diags {
            eprintln!("{}", d.render());
        }
        let (errors, warnings) =
            diags
                .iter()
                .fold((0usize, 0usize), |(e, w), d| match d.severity {
                    pdceval_mpt::diag::Severity::Error => (e + 1, w),
                    pdceval_mpt::diag::Severity::Warning => (e, w + 1),
                });
        eprintln!("{path}: {errors} error(s), {warnings} warning(s)");
        worst = worst.max(pdceval_mpt::diag::exit_code(&diags, deny_warnings));
    }
    ExitCode::from(worst)
}

/// `pdceval snapshot OUT.spec [--spec FILE]`: serialize the whole live
/// registry — built-ins plus anything loaded — back to one spec file.
fn cmd_snapshot(args: &Args) -> ExitCode {
    let [out_path] = args.positional.as_slice() else {
        return usage();
    };
    if load_spec(args).is_err() {
        return ExitCode::FAILURE;
    }
    let file = ModelRegistry::global().snapshot();
    let text = pdceval_mpt::spec::render_spec(&file);
    if let Err(e) = std::fs::write(out_path, &text) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "snapshot: {} tool(s), {} platform(s), {} perturbation(s), {} campaign(s) -> {out_path}",
        file.tools.len(),
        file.platforms.len(),
        file.perturbs.len(),
        file.campaigns.len()
    );
    ExitCode::SUCCESS
}

/// Default location of the committed regression baseline.
const DEFAULT_BASELINE: &str = "baselines/quick.jsonl";

/// Default directory `run --trace-dir` output is looked up in.
const DEFAULT_TRACE_DIR: &str = "target/campaign/trace";

/// `pdceval explain KEY [--trace-dir DIR]`: render the text breakdown
/// of one traced scenario — where virtual time went per rank, link
/// traffic, injected faults — diffing perturbed keys against their
/// clean twin's summary when it exists.
fn cmd_explain(args: &Args) -> ExitCode {
    let [key] = args.positional.as_slice() else {
        return usage();
    };
    let dir = PathBuf::from(args.value("trace-dir").unwrap_or(DEFAULT_TRACE_DIR));
    match pdceval_campaign::explain::explain_key(&dir, key) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "(run the campaign with `pdceval run --trace-dir {}` first)",
                dir.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn cmd_bless(args: &Args) -> ExitCode {
    let [store_path] = args.positional.as_slice() else {
        return usage();
    };
    let dest = PathBuf::from(args.value("baseline").unwrap_or(DEFAULT_BASELINE));
    let text = match std::fs::read_to_string(store_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {store_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match store::parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{store_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if records.is_empty() {
        eprintln!("{store_path}: refusing to bless an empty store");
        return ExitCode::FAILURE;
    }
    let errors = records.iter().filter(|r| r.status == "error").count();
    if errors > 0 {
        eprintln!("{store_path}: refusing to bless a store with {errors} error record(s)");
        return ExitCode::FAILURE;
    }
    // An `ok` record without a mean is a non-finite statistic rendered
    // as null; blessing it would bake an ungateable scenario into the
    // baseline.
    let broken = records
        .iter()
        .filter(|r| r.status == "ok" && r.mean.is_none())
        .count();
    if broken > 0 {
        eprintln!(
            "{store_path}: refusing to bless a store with {broken} 'ok' record(s) lacking a \
             finite mean"
        );
        return ExitCode::FAILURE;
    }
    if let Some(parent) = dest.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&dest, &text) {
        eprintln!("cannot write {}: {e}", dest.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "blessed {} record(s) from {store_path} -> {} (git {})",
        records.len(),
        dest.display(),
        records
            .iter()
            .find_map(|r| r.git_sha.as_deref())
            .unwrap_or("unknown"),
    );
    ExitCode::SUCCESS
}

/// `pdceval cache stats|gc|clear [--cache-dir DIR] [--keep N] [--json]`:
/// cache maintenance. `stats` scans every bucket; `gc` deletes
/// stale-fingerprint buckets and compacts the current one (with
/// `--keep N`, also dropping entries older than N generations);
/// `clear` wipes the whole directory.
fn cmd_cache(args: &Args) -> ExitCode {
    let [action] = args.positional.as_slice() else {
        return usage();
    };
    let dir = PathBuf::from(args.value("cache-dir").unwrap_or(DEFAULT_CACHE_DIR));
    let mut cache = match CampaignCache::open(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match action.as_str() {
        "stats" => match cache.stats() {
            Ok(s) => {
                if args.has("json") {
                    println!("{}", s.render_json());
                } else {
                    print!("{}", s.render_text());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "gc" => {
            let keep = match args.value("keep") {
                None if args.has("keep") => {
                    eprintln!("--keep needs a generation count");
                    return ExitCode::FAILURE;
                }
                None => None,
                Some(raw) => match raw.parse::<u64>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("bad --keep '{raw}'");
                        return ExitCode::FAILURE;
                    }
                },
            };
            match cache.gc(keep) {
                Ok(r) => {
                    eprintln!(
                        "gc: removed {} stale bucket(s), dropped {} entr{}, kept {}, \
                         reclaimed {} byte(s)",
                        r.stale_buckets_removed,
                        r.entries_dropped,
                        if r.entries_dropped == 1 { "y" } else { "ies" },
                        r.entries_kept,
                        r.bytes_reclaimed,
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "clear" => match cache.clear() {
            Ok(n) => {
                eprintln!("cleared {} file(s) from {}", n, dir.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

/// Default TCP address `pdceval serve` listens on.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7411";

/// `pdceval serve`: the long-running results service — one shared
/// cache, one bounded executor pool, newline-delimited JSON over TCP
/// and/or a Unix socket. See `pdceval_campaign::serve` for the
/// protocol.
fn cmd_serve(args: &Args) -> ExitCode {
    let s = scale(args);
    let loaded = match load_spec(args) {
        Ok(l) => l,
        Err(code) => return code,
    };
    let workers = match args.value("workers") {
        None => default_workers(),
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("bad --workers '{raw}'");
                return ExitCode::FAILURE;
            }
        },
    };
    let cache_dir = PathBuf::from(args.value("cache-dir").unwrap_or(DEFAULT_CACHE_DIR));
    let cache = match CampaignCache::open(&cache_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "cache: {} entr{} at {} (generation {})",
        cache.len(),
        if cache.len() == 1 { "y" } else { "ies" },
        cache_dir.display(),
        cache.generation(),
    );
    let meta = store::StoreMeta::capture();
    let state = std::sync::Arc::new(ServeState::new(
        cache,
        workers,
        visible_campaigns(s, &loaded),
        s,
        meta,
    ));
    let mut server = Server::new(state);
    let socket = args.value("socket").map(PathBuf::from);
    if args.has("socket") && socket.is_none() {
        eprintln!("--socket needs a path");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &socket {
        if let Err(e) = server.bind_unix(path) {
            eprintln!("cannot bind unix socket {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("serving on unix socket {}", path.display());
    }
    if socket.is_none() || args.has("addr") {
        let addr = args.value("addr").unwrap_or(DEFAULT_SERVE_ADDR);
        match server.bind_tcp(addr) {
            Ok(local) => eprintln!("serving on tcp {local} ({workers} worker(s))"),
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("send {{\"op\": \"shutdown\"}} to stop");
    match server.run() {
        Ok(()) => {
            eprintln!("serve: shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "list" => cmd_list(&args),
        "run" => cmd_run(&args),
        "diff" => cmd_diff(&args),
        "bless" => cmd_bless(&args),
        "validate" => cmd_validate(&args),
        "lint" => cmd_lint(&args),
        "snapshot" => cmd_snapshot(&args),
        "explain" => cmd_explain(&args),
        "cache" => cmd_cache(&args),
        "serve" => cmd_serve(&args),
        _ => usage(),
    }
}
