//! Regenerates every table and figure of the paper's evaluation section
//! and writes them to `target/repro/`.
//!
//! Usage:
//!
//! ```bash
//! cargo run --release -p pdceval-bench --bin repro            # paper scale
//! cargo run --release -p pdceval-bench --bin repro -- quick   # reduced scale
//! ```

use pdceval_bench::{regenerate, write_artifacts};
use pdceval_core::apl::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let scale = match arg.as_str() {
        "" | "paper" => Scale::Paper,
        "quick" => Scale::Quick,
        other => {
            eprintln!("unknown scale '{other}' (expected 'paper' or 'quick')");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("regenerating all tables and figures at {scale:?} scale...");
    let started = std::time::Instant::now();
    let artifacts = match regenerate(scale) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("reproduction failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for a in &artifacts {
        println!("==================================================================");
        println!("{}", a.title);
        println!("==================================================================");
        println!("{}", a.body);
    }

    let dir = PathBuf::from("target/repro");
    if let Err(e) = write_artifacts(&artifacts, &dir) {
        eprintln!("failed to write artifacts: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} artifacts to {} in {:.1}s",
        artifacts.len(),
        dir.display(),
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
