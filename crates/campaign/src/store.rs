//! The campaign results store: one JSON object per line (JSONL).
//!
//! Every record carries the scenario key plus run metadata (git SHA,
//! unix timestamp), so stores written on different commits are directly
//! comparable by key — the substrate for [`crate::diff`]'s regression
//! gating. The full schema is documented in the top-level `README.md`.
//!
//! Rendering is deterministic given fixed metadata: equal record lists
//! render byte-identical stores, which is how the parallel-vs-serial
//! equivalence tests assert bit-equality.

use crate::json::{escape, parse_object, Json};
use crate::runner::ScenarioRecord;
use crate::scenario::{platform_slug, tool_slug};
use pdceval_simnet::trace::{CounterSummary, LinkClassTotal};
use std::fmt::Write as _;
use std::path::Path;
use std::process::Command;

/// Run metadata stamped into every record of one store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreMeta {
    /// The commit the results were produced on, if known.
    pub git_sha: Option<String>,
    /// Unix timestamp (seconds) of the run, if known.
    pub timestamp: Option<u64>,
    /// Render engine counter fields on records that carry them. Off by
    /// default so counter-free stores (and every store written before
    /// the trace layer existed) stay byte-identical.
    pub emit_counters: bool,
}

impl StoreMeta {
    /// No metadata — for deterministic rendering in tests.
    pub fn none() -> StoreMeta {
        StoreMeta::default()
    }

    /// Captures the current commit and wall-clock time.
    pub fn capture() -> StoreMeta {
        StoreMeta {
            git_sha: git_sha(),
            timestamp: Some(unix_timestamp()),
            emit_counters: false,
        }
    }
}

/// Provenance pinned to one record, overriding the store-wide
/// [`StoreMeta`] stamp when rendered.
///
/// A record served from the campaign cache was *computed* on some
/// earlier invocation; stamping it with the serving run's SHA and
/// timestamp would both lie about its origin and make a warm store
/// differ byte-wise from the cold store that populated the cache. The
/// cache pins each entry's original provenance here, so cold, warm and
/// mixed runs render identical stores. Freshly executed records leave
/// this `None` and inherit the store-wide stamp, exactly as before the
/// cache existed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordProvenance {
    /// Commit the record was computed on, if known.
    pub git_sha: Option<String>,
    /// Unix timestamp (seconds) of the computation, if known.
    pub timestamp: Option<u64>,
}

/// The current commit's abbreviated SHA, if a git repository is present.
pub fn git_sha() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!sha.is_empty()).then_some(sha)
}

/// Seconds since the unix epoch.
pub fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn render_opt_num(out: &mut String, value: Option<f64>) {
    match value {
        // Non-finite stats (a NaN/inf cv from zero-time repetitions)
        // have no JSON number rendering; writing them verbatim would
        // produce a store `parse_jsonl` cannot read back.
        Some(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        _ => out.push_str("null"),
    }
}

/// Renders one record as a single JSON line (no trailing newline).
pub fn render_record(r: &ScenarioRecord, meta: &StoreMeta) -> String {
    let sc = &r.scenario;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"key\": \"{}\", \"kernel\": \"{}\", \"tool\": \"{}\", \"platform\": \"{}\", \
         \"nprocs\": {}, \"size\": {}, \"reps\": {}, \"unit\": \"{}\", \"status\": \"{}\"",
        escape(&sc.key()),
        escape(&sc.kernel.slug()),
        tool_slug(sc.tool),
        platform_slug(sc.platform),
        sc.nprocs,
        sc.size,
        sc.reps,
        sc.kernel.unit(),
        r.status.slug(),
    );
    out.push_str(", \"mean\": ");
    render_opt_num(&mut out, r.stats.map(|s| s.mean));
    out.push_str(", \"min\": ");
    render_opt_num(&mut out, r.stats.map(|s| s.min));
    out.push_str(", \"max\": ");
    render_opt_num(&mut out, r.stats.map(|s| s.max));
    out.push_str(", \"cv\": ");
    render_opt_num(&mut out, r.stats.map(|s| s.cv));
    match &r.detail {
        Some(d) => {
            let _ = write!(out, ", \"detail\": \"{}\"", escape(d));
        }
        None => out.push_str(", \"detail\": null"),
    }
    // Counter fields are opt-in: they appear only when the store asked
    // for them AND the record was produced by a counter-observing run,
    // so default stores stay byte-identical with or without tracing.
    if meta.emit_counters {
        if let Some(c) = &r.counters {
            let _ = write!(
                out,
                ", \"events_scheduled\": {}, \"peak_queue_depth\": {}, \
                 \"direct_handoffs\": {}, \"inline_resumes\": {}, \
                 \"mailbox_fast_path_hits\": {}, \"messages_delivered\": {}, \
                 \"wire_bytes\": {}, \"retransmits\": {}",
                c.events_scheduled,
                c.peak_queue_depth,
                c.direct_handoffs,
                c.inline_resumes,
                c.mailbox_fast_path_hits,
                c.messages_delivered,
                c.wire_bytes,
                c.retransmits,
            );
            // Per-link-class traffic, flattened to one string field (the
            // store format is a flat JSON object by design).
            let links: Vec<String> = c
                .links
                .iter()
                .map(|l| format!("{}:{}:{}", l.class, l.bytes, l.fragments))
                .collect();
            let _ = write!(out, ", \"links\": \"{}\"", escape(&links.join(",")));
        }
    }
    // Perturbed points carry their model and seed; clean records omit
    // both fields entirely so perturbation-free stores stay
    // byte-identical to those written before the perturbation layer.
    if let Some(p) = &sc.perturb {
        let _ = write!(
            out,
            ", \"perturb\": \"{}\", \"seed\": {}",
            escape(&p.id.slug()),
            p.seed
        );
    }
    // Cached records carry the provenance of the run that computed
    // them; fresh records take the store-wide stamp.
    let (git_sha, timestamp) = match &r.provenance {
        Some(p) => (&p.git_sha, p.timestamp),
        None => (&meta.git_sha, meta.timestamp),
    };
    match git_sha {
        Some(sha) => {
            let _ = write!(out, ", \"git_sha\": \"{}\"", escape(sha));
        }
        None => out.push_str(", \"git_sha\": null"),
    }
    match timestamp {
        Some(t) => {
            let _ = write!(out, ", \"timestamp\": {t}");
        }
        None => out.push_str(", \"timestamp\": null"),
    }
    out.push('}');
    out
}

/// Renders a whole store (one record per line, trailing newline).
pub fn render_jsonl(records: &[ScenarioRecord], meta: &StoreMeta) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&render_record(r, meta));
        out.push('\n');
    }
    out
}

/// Writes a store to `path`, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_jsonl(
    path: &Path,
    records: &[ScenarioRecord],
    meta: &StoreMeta,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_jsonl(records, meta))
}

/// An incremental JSONL writer: one file handle, buffered, flushed on
/// drop.
///
/// Appending record-by-record through `std::fs::OpenOptions` would
/// re-open (and re-seek) the file once per record — three syscalls per
/// line. The appender opens the file once and streams lines through a
/// `BufWriter`, so appending a thousand cache entries costs one open
/// and a handful of writes. Dropping the appender flushes whatever is
/// buffered (errors at drop time are swallowed, as `BufWriter`'s own
/// drop does — call [`Appender::flush`] to observe them).
#[derive(Debug)]
pub struct Appender {
    w: std::io::BufWriter<std::fs::File>,
}

impl Appender {
    /// Opens `path` for appending (creating it, and its parent
    /// directories, if missing).
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn open(path: &Path) -> std::io::Result<Appender> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Appender {
            w: std::io::BufWriter::new(file),
        })
    }

    /// Appends one raw JSON line (the trailing newline is added here).
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn append_line(&mut self, line: &str) -> std::io::Result<()> {
        use std::io::Write as _;
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")
    }

    /// Appends one store record rendered with `meta`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn append_record(&mut self, r: &ScenarioRecord, meta: &StoreMeta) -> std::io::Result<()> {
        self.append_line(&render_record(r, meta))
    }

    /// Flushes buffered lines to the file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn flush(&mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        self.w.flush()
    }
}

impl Drop for Appender {
    fn drop(&mut self) {
        use std::io::Write as _;
        let _ = self.w.flush();
    }
}

/// One record as read back from a store — the fields baseline comparison
/// needs, plus the stamped metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// Scenario key.
    pub key: String,
    /// Execution status slug (`ok` / `unsupported` / `error`).
    pub status: String,
    /// Value unit (`ms` / `s`).
    pub unit: String,
    /// Mean over repetitions, for `ok` records.
    pub mean: Option<f64>,
    /// Minimum over repetitions.
    pub min: Option<f64>,
    /// Maximum over repetitions.
    pub max: Option<f64>,
    /// Coefficient of variation over repetitions.
    pub cv: Option<f64>,
    /// Why the point is unsupported or failed, for non-`ok` records.
    pub detail: Option<String>,
    /// Perturbation model slug, for perturbed records.
    pub perturb: Option<String>,
    /// Perturbation seed, for perturbed records.
    pub seed: Option<u32>,
    /// Commit the record was produced on.
    pub git_sha: Option<String>,
    /// Unix timestamp of the run.
    pub timestamp: Option<u64>,
    /// Engine counters, for records written with
    /// [`StoreMeta::emit_counters`] set.
    pub counters: Option<CounterSummary>,
}

/// Parses a store's text back into records.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<StoredRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let str_field = |k: &str| -> Result<String, String> {
            get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing string field '{k}'", lineno + 1))
        };
        let num_field = |k: &str| get(k).and_then(Json::as_f64);
        let u64_field = |k: &str| num_field(k).map(|v| v as u64);
        let counters = u64_field("events_scheduled").map(|events_scheduled| CounterSummary {
            events_scheduled,
            peak_queue_depth: u64_field("peak_queue_depth").unwrap_or(0),
            direct_handoffs: u64_field("direct_handoffs").unwrap_or(0),
            inline_resumes: u64_field("inline_resumes").unwrap_or(0),
            mailbox_fast_path_hits: u64_field("mailbox_fast_path_hits").unwrap_or(0),
            messages_delivered: u64_field("messages_delivered").unwrap_or(0),
            wire_bytes: u64_field("wire_bytes").unwrap_or(0),
            retransmits: u64_field("retransmits").unwrap_or(0),
            links: get("links")
                .and_then(Json::as_str)
                .map(parse_link_totals)
                .unwrap_or_default(),
        });
        out.push(StoredRecord {
            key: str_field("key")?,
            status: str_field("status")?,
            unit: str_field("unit")?,
            mean: num_field("mean"),
            min: num_field("min"),
            max: num_field("max"),
            cv: num_field("cv"),
            detail: get("detail").and_then(Json::as_str).map(str::to_string),
            perturb: get("perturb").and_then(Json::as_str).map(str::to_string),
            seed: num_field("seed").map(|s| s as u32),
            git_sha: get("git_sha").and_then(Json::as_str).map(str::to_string),
            timestamp: num_field("timestamp").map(|t| t as u64),
            counters,
        });
    }
    Ok(out)
}

/// Parses the flattened `"class:bytes:fragments,..."` link-traffic field.
/// Malformed entries are dropped rather than failing the whole store.
fn parse_link_totals(s: &str) -> Vec<LinkClassTotal> {
    s.split(',')
        .filter(|e| !e.is_empty())
        .filter_map(|e| {
            // Split from the right: the class name is free-form, the two
            // trailing fields are numeric.
            let mut it = e.rsplitn(3, ':');
            let fragments = it.next()?.parse().ok()?;
            let bytes = it.next()?.parse().ok()?;
            let class = it.next()?.to_string();
            Some(LinkClassTotal {
                class,
                bytes,
                fragments,
            })
        })
        .collect()
}

/// Loads a store from disk.
///
/// # Errors
///
/// Returns the I/O or parse problem as a string.
pub fn load_jsonl(path: &Path) -> Result<Vec<StoredRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{RecordStatus, RepStats};
    use crate::scenario::{Kernel, Scenario};
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    fn record(size: u64, mean: f64) -> ScenarioRecord {
        ScenarioRecord {
            scenario: Scenario {
                kernel: Kernel::Broadcast,
                tool: ToolKind::P4,
                platform: Platform::SUN_ETHERNET,
                nprocs: 4,
                size,
                reps: 2,
                perturb: None,
            },
            status: RecordStatus::Ok,
            stats: Some(RepStats {
                mean,
                min: mean,
                max: mean,
                cv: 0.0,
            }),
            detail: None,
            counters: None,
            provenance: None,
        }
    }

    #[test]
    fn stores_round_trip() {
        let records = vec![record(1024, 3.5), record(65536, 120.25)];
        let meta = StoreMeta {
            git_sha: Some("abc123def456".to_string()),
            timestamp: Some(1_753_000_000),
            emit_counters: false,
        };
        let text = render_jsonl(&records, &meta);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].key, "broadcast/p4/sun-eth/n4/s1024");
        assert_eq!(parsed[0].status, "ok");
        assert_eq!(parsed[0].unit, "ms");
        assert_eq!(parsed[0].mean, Some(3.5));
        assert_eq!(parsed[1].mean, Some(120.25));
        assert_eq!(parsed[0].git_sha.as_deref(), Some("abc123def456"));
        assert_eq!(parsed[0].timestamp, Some(1_753_000_000));
    }

    #[test]
    fn rendering_is_deterministic() {
        let records = vec![record(0, 0.5)];
        let a = render_jsonl(&records, &StoreMeta::none());
        let b = render_jsonl(&records, &StoreMeta::none());
        assert_eq!(a, b);
        let parsed = parse_jsonl(&a).unwrap();
        assert_eq!(parsed[0].git_sha, None);
        assert_eq!(parsed[0].timestamp, None);
    }

    #[test]
    fn non_ok_records_carry_detail_and_null_stats() {
        let r = ScenarioRecord {
            scenario: Scenario {
                kernel: Kernel::GlobalSum,
                tool: ToolKind::PVM,
                platform: Platform::SUN_ETHERNET,
                nprocs: 4,
                size: 1000,
                reps: 1,
                perturb: None,
            },
            status: RecordStatus::Unsupported,
            stats: None,
            detail: Some("PVM does not support the global sum primitive".to_string()),
            counters: None,
            provenance: None,
        };
        let text = render_jsonl(&[r], &StoreMeta::none());
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].status, "unsupported");
        assert_eq!(parsed[0].mean, None);
    }

    #[test]
    fn perturbed_records_carry_model_and_seed_and_clean_lines_are_untouched() {
        use crate::scenario::PerturbRun;
        use pdceval_simnet::perturb::{register_perturb, PerturbSpec};
        let mut pspec = PerturbSpec::quiet("store-test-chaos");
        pspec.loss = 0.01;
        pspec.loss_timeout_us = 1000.0;
        let id = register_perturb(pspec).unwrap();

        let clean = record(1024, 3.5);
        let mut perturbed = record(1024, 9.0);
        perturbed.scenario.perturb = Some(PerturbRun { id, seed: 7 });
        let text = render_jsonl(&[clean, perturbed], &StoreMeta::none());
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[0].contains("perturb") && !lines[0].contains("seed"));
        assert!(lines[1].contains(
            "\"detail\": null, \"perturb\": \"store-test-chaos\", \"seed\": 7, \"git_sha\""
        ));

        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].perturb, None);
        assert_eq!(parsed[0].seed, None);
        assert_eq!(parsed[1].perturb.as_deref(), Some("store-test-chaos"));
        assert_eq!(parsed[1].seed, Some(7));
        assert_eq!(
            parsed[1].key,
            "broadcast/p4/sun-eth/n4/s1024/store-test-chaos/seed7"
        );
    }

    #[test]
    fn non_finite_stats_render_as_null_and_round_trip() {
        // Zero-time repetitions produce cv = 0/0 = NaN; the store must
        // stay parseable rather than emit bare NaN/inf tokens.
        let mut r = record(1024, 3.5);
        r.stats = Some(RepStats {
            mean: f64::INFINITY,
            min: f64::NEG_INFINITY,
            max: 3.5,
            cv: f64::NAN,
        });
        let text = render_jsonl(&[r], &StoreMeta::none());
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        let parsed = parse_jsonl(&text).expect("non-finite stats must not corrupt the store");
        assert_eq!(parsed[0].mean, None);
        assert_eq!(parsed[0].min, None);
        assert_eq!(parsed[0].max, Some(3.5));
        assert_eq!(parsed[0].cv, None);
    }

    #[test]
    fn counters_render_only_when_asked_and_round_trip() {
        let mut r = record(1024, 3.5);
        r.counters = Some(CounterSummary {
            events_scheduled: 12,
            peak_queue_depth: 3,
            direct_handoffs: 5,
            inline_resumes: 6,
            mailbox_fast_path_hits: 4,
            messages_delivered: 8,
            wire_bytes: 8192,
            retransmits: 2,
            links: vec![LinkClassTotal {
                class: "ether".to_string(),
                bytes: 8192,
                fragments: 9,
            }],
        });

        // Default meta: counter-carrying records render exactly like
        // counter-free ones — traced runs cannot disturb clean stores.
        let plain = render_jsonl(&[record(1024, 3.5)], &StoreMeta::none());
        let with_counters_off = render_jsonl(std::slice::from_ref(&r), &StoreMeta::none());
        assert_eq!(plain, with_counters_off);

        let meta = StoreMeta {
            emit_counters: true,
            ..StoreMeta::none()
        };
        let text = render_jsonl(std::slice::from_ref(&r), &meta);
        assert!(text.contains("\"events_scheduled\": 12"), "{text}");
        assert!(text.contains("\"links\": \"ether:8192:9\""), "{text}");
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].counters, r.counters);
        // Counter-free lines parse to no counters.
        assert_eq!(parse_jsonl(&plain).unwrap()[0].counters, None);
    }

    #[test]
    fn files_round_trip() {
        let dir = std::env::temp_dir().join("pdceval-campaign-store-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("results.jsonl");
        write_jsonl(&path, &[record(2048, 7.0)], &StoreMeta::none()).unwrap();
        let loaded = load_jsonl(&path).unwrap();
        assert_eq!(loaded[0].mean, Some(7.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_provenance_overrides_the_store_stamp() {
        let meta = StoreMeta {
            git_sha: Some("now000000000".to_string()),
            timestamp: Some(2_000_000_000),
            emit_counters: false,
        };
        let fresh = record(1024, 3.5);
        let mut cached = record(1024, 3.5);
        cached.provenance = Some(RecordProvenance {
            git_sha: Some("then00000000".to_string()),
            timestamp: Some(1_000_000_000),
        });
        let text = render_jsonl(&[fresh, cached], &meta);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0].git_sha.as_deref(), Some("now000000000"));
        assert_eq!(parsed[0].timestamp, Some(2_000_000_000));
        assert_eq!(parsed[1].git_sha.as_deref(), Some("then00000000"));
        assert_eq!(parsed[1].timestamp, Some(1_000_000_000));
        // The original provenance pins the bytes: re-rendering the
        // cached record under a *different* store stamp is identical.
        let other = StoreMeta {
            git_sha: Some("later0000000".to_string()),
            timestamp: Some(3_000_000_000),
            emit_counters: false,
        };
        let line = text.lines().nth(1).unwrap();
        let mut cached2 = record(1024, 3.5);
        cached2.provenance = Some(RecordProvenance {
            git_sha: Some("then00000000".to_string()),
            timestamp: Some(1_000_000_000),
        });
        assert_eq!(render_record(&cached2, &other), line);
    }

    #[test]
    fn appender_builds_the_same_store_and_flushes_on_drop() {
        let dir = std::env::temp_dir().join(format!(
            "pdceval-campaign-appender-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("appended.jsonl");
        let records = vec![record(1024, 3.5), record(2048, 7.0), record(4096, 9.25)];
        let meta = StoreMeta {
            git_sha: Some("abc123def456".to_string()),
            timestamp: Some(1_753_000_000),
            emit_counters: false,
        };
        {
            // No explicit flush: dropping the appender must land every
            // buffered line on disk.
            let mut a = Appender::open(&path).unwrap();
            for r in &records {
                a.append_record(r, &meta).unwrap();
            }
        }
        let appended = std::fs::read_to_string(&path).unwrap();
        assert_eq!(appended, render_jsonl(&records, &meta));
        // Re-opening appends after the existing lines.
        {
            let mut a = Appender::open(&path).unwrap();
            a.append_line("{\"key\": \"extra\"}").unwrap();
            a.flush().unwrap();
        }
        let appended = std::fs::read_to_string(&path).unwrap();
        assert!(appended.ends_with("{\"key\": \"extra\"}\n"));
        assert_eq!(appended.lines().count(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
