//! Static grid-reachability analysis for campaign stanzas.
//!
//! [`crate::campaigns::from_spec`] materializes a campaign by resolving
//! its selectors against the registry and filtering the full grid with
//! [`crate::scenario::Scenario::is_valid`]. That only happens at load
//! time — too late for a linter that must reason about a spec *file*
//! without registering it. This module mirrors the validity rules over
//! raw spec data ([`ToolSpec`] / [`PlatformSpec`], no registration) so
//! `pdceval lint` can report unsatisfiable grids and capacity clipping
//! statically.
//!
//! The mirrored rules are exactly the run-time ones (guarded by
//! `reach_matches_from_spec` in this module's tests):
//!
//! * `nprocs == 0` or `nprocs > platform.max_nodes` never runs
//!   (`SpmdConfig::validate`'s size check);
//! * the tool's port policy must admit the platform
//!   (`ToolKind::supports_platform`);
//! * `globalsum` needs a tool with a reduce profile
//!   (`supports_global_ops`);
//! * `sendrecv` needs at least two ranks.

use pdceval_mpt::spec::{parse_campaign_kernel, CampaignKernel, CampaignSpec, ToolSpec};
use pdceval_simnet::platform::PlatformSpec;

/// What a campaign's grid statically reaches. All counts include the
/// `sizes` axis (validity is size-independent, so sizes only scale the
/// totals) but not perturbation fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridReach {
    /// All enumerated points: kernels × tools × platforms × nprocs × sizes.
    pub total: usize,
    /// Points that survive the validity filter.
    pub valid: usize,
    /// `(platform slug, max_nodes, nprocs)` triples where a swept rank
    /// count exceeds a selected platform's capacity (each combination
    /// reported once, in selection order).
    pub capacity_excess: Vec<(String, usize, usize)>,
}

impl GridReach {
    /// True when the validity filter leaves nothing to run — the grid
    /// can never produce a measurement.
    pub fn is_unsatisfiable(&self) -> bool {
        self.valid == 0
    }
}

/// Mirrors [`crate::scenario::Scenario::is_valid`] over raw spec data.
fn point_valid(
    kernel: &CampaignKernel,
    tool: &ToolSpec,
    platform: &PlatformSpec,
    nprocs: usize,
) -> bool {
    if nprocs == 0 || nprocs > platform.max_nodes {
        return false;
    }
    if !tool.ports.supports(&platform.slug, platform.wan) {
        return false;
    }
    match kernel {
        CampaignKernel::GlobalSum => tool.supports_global_ops(),
        CampaignKernel::SendRecv(_) => nprocs >= 2,
        _ => true,
    }
}

/// Computes what `spec`'s grid statically reaches over the *resolved*
/// tool and platform selections (the caller applies selector defaulting;
/// see [`crate::campaigns::from_spec`]).
///
/// # Errors
///
/// Returns the offending name if a kernel does not parse (the stanza
/// validator normally rejects this earlier).
pub fn static_reach(
    spec: &CampaignSpec,
    tools: &[&ToolSpec],
    platforms: &[&PlatformSpec],
) -> Result<GridReach, String> {
    let kernels: Vec<CampaignKernel> = spec
        .kernels
        .iter()
        .map(|k| parse_campaign_kernel(k).ok_or_else(|| format!("unknown kernel '{k}'")))
        .collect::<Result<_, _>>()?;

    let sizes = spec.sizes.len();
    let mut total = 0usize;
    let mut valid = 0usize;
    let mut capacity_excess: Vec<(String, usize, usize)> = Vec::new();
    for platform in platforms {
        for &nprocs in &spec.nprocs {
            if nprocs > platform.max_nodes {
                let key = (platform.slug.clone(), platform.max_nodes, nprocs);
                if !capacity_excess.contains(&key) {
                    capacity_excess.push(key);
                }
            }
            for kernel in &kernels {
                for tool in tools {
                    total += sizes;
                    if point_valid(kernel, tool, platform, nprocs) {
                        valid += sizes;
                    }
                }
            }
        }
    }
    Ok(GridReach {
        total,
        valid,
        capacity_excess,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaigns::from_spec;
    use crate::scenario::Scale;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;
    use std::sync::Arc;

    fn stanza(
        kernels: &[&str],
        nprocs: &[usize],
        tools: &[&str],
        platforms: &[&str],
    ) -> CampaignSpec {
        CampaignSpec {
            slug: "reach-test".into(),
            title: None,
            kernels: kernels.iter().map(|s| s.to_string()).collect(),
            nprocs: nprocs.to_vec(),
            sizes: vec![64, 4096],
            reps: 1,
            tools: tools.iter().map(|s| s.to_string()).collect(),
            platforms: platforms.iter().map(|s| s.to_string()).collect(),
            perturbs: Vec::new(),
            seeds: 1,
        }
    }

    /// The drift guard: the static mirror must agree with the dynamic
    /// grid `from_spec` builds, across capability gaps (PVM has no
    /// global sum), WAN port policies, capacity clipping and the
    /// two-rank echo rule.
    #[test]
    fn reach_matches_from_spec() {
        let cases = [
            stanza(&["broadcast", "globalsum"], &[2, 4, 64], &[], &[]),
            stanza(&["sendrecv"], &[1, 2], &[], &[]),
            stanza(
                &["ring-x4", "globalsum", "fft"],
                &[4, 16, 40],
                &["pvm", "p4"],
                &["sun-eth", "sun-atm-wan", "sp1-switch"],
            ),
        ];
        for spec in cases {
            let built = from_spec(&spec, &[], &[], Scale::Quick).expect("campaign builds");
            // Resolve selectors exactly as from_spec does (no own models
            // in these cases, so empty selectors fall back to built-ins).
            let tools: Vec<Arc<_>> = if spec.tools.is_empty() {
                ToolKind::builtin().iter().map(|t| t.spec()).collect()
            } else {
                spec.tools
                    .iter()
                    .map(|s| {
                        pdceval_mpt::ModelRegistry::global()
                            .tool_by_slug(s)
                            .expect("known tool")
                            .spec()
                    })
                    .collect()
            };
            let platforms: Vec<Arc<_>> = if spec.platforms.is_empty() {
                [Platform::SUN_ETHERNET, Platform::SUN_ATM_LAN]
                    .iter()
                    .map(|p| p.spec())
                    .collect()
            } else {
                spec.platforms
                    .iter()
                    .map(|s| {
                        pdceval_mpt::ModelRegistry::global()
                            .platform_by_slug(s)
                            .expect("known platform")
                            .spec()
                    })
                    .collect()
            };
            let tool_refs: Vec<&ToolSpec> = tools.iter().map(Arc::as_ref).collect();
            let plat_refs: Vec<&PlatformSpec> = platforms.iter().map(Arc::as_ref).collect();
            let reach = static_reach(&spec, &tool_refs, &plat_refs).expect("kernels parse");
            assert_eq!(
                reach.valid,
                built.scenarios.len(),
                "static reach diverged from from_spec for '{}'",
                spec.slug
            );
            assert!(reach.total >= reach.valid);
        }
    }

    #[test]
    fn unsatisfiable_grid_is_detected() {
        // 64 ranks on nothing that large, and globalsum under PVM only:
        // every point filtered.
        let spec = stanza(&["globalsum"], &[64], &["pvm"], &["sun-eth"]);
        let tool = ToolKind::PVM.spec();
        let platform = Platform::SUN_ETHERNET.spec();
        let reach = static_reach(&spec, &[tool.as_ref()], &[platform.as_ref()]).unwrap();
        assert!(reach.is_unsatisfiable());
        assert_eq!(reach.total, 2);
        assert_eq!(reach.capacity_excess.len(), 1);
        assert_eq!(reach.capacity_excess[0].2, 64);
    }
}
