//! Parallel campaign execution with deterministic result ordering.
//!
//! Sweep points are independent, self-contained simulations, so a
//! campaign distributes them over a pool of worker threads. Each worker
//! owns its own [`Executor`] (harness reuse stays thread-local); results
//! land in pre-assigned slots, so the output order equals the input
//! scenario order regardless of scheduling — a parallel run's results
//! are byte-identical to a serial run's.

use crate::exec::{Executor, PointOutcome};
use crate::scenario::Scenario;
use pdceval_simnet::trace::CounterSummary;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Statistics over one scenario's repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepStats {
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Coefficient of variation (population stddev / mean; 0 when the
    /// mean is 0). The simulator is deterministic, so a nonzero CV
    /// indicates a reproducibility bug.
    pub cv: f64,
}

impl RepStats {
    /// Computes statistics over `values` (must be non-empty).
    pub fn from_values(values: &[f64]) -> RepStats {
        assert!(!values.is_empty(), "no repetition values");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let cv = if mean == 0.0 { 0.0 } else { var.sqrt() / mean };
        RepStats { mean, min, max, cv }
    }
}

/// How one scenario's execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordStatus {
    /// All repetitions produced values.
    Ok,
    /// The tool does not implement the kernel.
    Unsupported,
    /// The run failed (deadlock, rank panic, invalid configuration).
    Error,
}

impl RecordStatus {
    /// Stable lower-case slug used in the results store.
    pub fn slug(&self) -> &'static str {
        match self {
            RecordStatus::Ok => "ok",
            RecordStatus::Unsupported => "unsupported",
            RecordStatus::Error => "error",
        }
    }
}

/// One scenario's result, as recorded in the campaign store.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// The scenario that produced this record.
    pub scenario: Scenario,
    /// Execution status.
    pub status: RecordStatus,
    /// Repetition statistics (present when `status` is `Ok`).
    pub stats: Option<RepStats>,
    /// Why the point is unsupported or failed, for non-`Ok` statuses.
    pub detail: Option<String>,
    /// Engine counters from the last repetition (present when `status`
    /// is `Ok`; the simulator is deterministic, so every repetition
    /// produces the same counts). Rendered into stores only when
    /// [`crate::store::StoreMeta::emit_counters`] is set.
    pub counters: Option<CounterSummary>,
    /// Provenance of the run that *computed* this record, when it was
    /// served from the campaign cache rather than executed — see
    /// [`crate::store::RecordProvenance`]. `None` for fresh records.
    pub provenance: Option<crate::store::RecordProvenance>,
}

/// Runs one scenario (all repetitions) on `exec`, producing its record.
/// Errors become `Error`-status records: one broken point must not sink
/// a thousand-point campaign.
pub fn run_point(exec: &mut Executor, sc: &Scenario) -> ScenarioRecord {
    let reps = sc.reps.max(1);
    let mut values = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        match exec.run(sc) {
            Ok(PointOutcome::Value(v)) => values.push(v),
            Ok(PointOutcome::Unsupported(e)) => {
                return ScenarioRecord {
                    scenario: *sc,
                    status: RecordStatus::Unsupported,
                    stats: None,
                    detail: Some(e.to_string()),
                    counters: None,
                    provenance: None,
                };
            }
            Err(e) => {
                return ScenarioRecord {
                    scenario: *sc,
                    status: RecordStatus::Error,
                    stats: None,
                    detail: Some(e.to_string()),
                    counters: None,
                    provenance: None,
                };
            }
        }
    }
    ScenarioRecord {
        scenario: *sc,
        status: RecordStatus::Ok,
        stats: Some(RepStats::from_values(&values)),
        detail: None,
        counters: exec.last_capture().map(|c| c.counters.clone()),
        provenance: None,
    }
}

/// A campaign progress callback, invoked with
/// `(completed_so_far, total, record)` after each scenario completes.
pub type ScenarioDoneFn<'a> = &'a (dyn Fn(usize, usize, &ScenarioRecord) + Sync);

/// Observability options threaded through a campaign run. The defaults
/// (`CampaignOptions::default()`) reproduce plain [`run_campaign`]
/// exactly: no tracing, no progress callbacks, byte-identical records.
#[derive(Default)]
pub struct CampaignOptions<'a> {
    /// When set, every scenario runs with a [`pdceval_simnet::trace::TraceSink`]
    /// attached, and each completed point's Chrome trace JSON plus
    /// explain summary are written into this directory (see
    /// [`crate::explain`]). Tracing is record-only, so the records —
    /// and any store rendered from them — are unchanged by it.
    pub trace_dir: Option<&'a Path>,
    /// Invoked after each scenario completes with
    /// `(completed_so_far, total, record)`. Completion order is
    /// scheduling order, not input order, under parallel runs.
    pub on_scenario_done: Option<ScenarioDoneFn<'a>>,
}

impl std::fmt::Debug for CampaignOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignOptions")
            .field("trace_dir", &self.trace_dir)
            .field("on_scenario_done", &self.on_scenario_done.map(|_| "..."))
            .finish()
    }
}

/// Executes `scenarios` across `workers` threads and returns records in
/// scenario order.
///
/// Workers claim points through a shared counter, so load balances
/// naturally; each worker's [`Executor`] caches harnesses for the
/// `(platform, nprocs)` pairs it happens to serve. With `workers <= 1`
/// everything runs on the calling thread.
pub fn run_campaign(scenarios: &[Scenario], workers: usize) -> Vec<ScenarioRecord> {
    run_campaign_with(scenarios, workers, &CampaignOptions::default())
}

/// [`run_campaign`] with observability options: per-scenario trace
/// export and progress callbacks. Results are byte-identical to a plain
/// run — tracing records, it never perturbs.
pub fn run_campaign_with(
    scenarios: &[Scenario],
    workers: usize,
    opts: &CampaignOptions<'_>,
) -> Vec<ScenarioRecord> {
    let workers = workers.max(1).min(scenarios.len().max(1));
    let total = scenarios.len();
    let done = AtomicUsize::new(0);
    // Shared post-point hook: export the trace files while the capture
    // is still warm in the executor, then report progress.
    let finish = |exec: &mut Executor, record: &ScenarioRecord| {
        if let Some(dir) = opts.trace_dir {
            if let Some(cap) = exec.take_capture() {
                if let Err(e) = crate::explain::write_scenario_trace(dir, record, &cap) {
                    eprintln!(
                        "warning: cannot write trace for {}: {e}",
                        record.scenario.key()
                    );
                }
            }
        }
        if let Some(cb) = opts.on_scenario_done {
            let n = done.fetch_add(1, Ordering::SeqCst) + 1;
            cb(n, total, record);
        }
    };
    if workers == 1 {
        let mut exec = Executor::new();
        exec.set_tracing(opts.trace_dir.is_some());
        return scenarios
            .iter()
            .map(|sc| {
                let record = run_point(&mut exec, sc);
                finish(&mut exec, &record);
                record
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioRecord>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut exec = Executor::new();
                exec.set_tracing(opts.trace_dir.is_some());
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(sc) = scenarios.get(i) else { break };
                    let record = run_point(&mut exec, sc);
                    finish(&mut exec, &record);
                    *slots[i].lock().expect("result slot poisoned") = Some(record);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scenario skipped by every worker")
        })
        .collect()
}

/// A shared, bounded pool of [`Executor`]s for long-running services.
///
/// [`run_campaign`] builds its workers per call, which is right for a
/// one-shot CLI run but wrong for `pdceval serve`, where many
/// connections submit scenarios concurrently and cluster skeletons
/// should stay warm across requests. The pool holds up to `capacity`
/// executors; [`ExecPool::run_point`] checks one out (blocking while
/// all are busy — this is what bounds total simulation concurrency
/// across every connection), runs the scenario, and returns the
/// executor with its harness cache intact.
#[derive(Debug)]
pub struct ExecPool {
    idle: Mutex<Vec<Executor>>,
    returned: std::sync::Condvar,
    capacity: usize,
    runs: std::sync::atomic::AtomicU64,
}

impl ExecPool {
    /// Creates a pool of `capacity` executors (at least 1).
    pub fn new(capacity: usize) -> ExecPool {
        let capacity = capacity.max(1);
        ExecPool {
            idle: Mutex::new((0..capacity).map(|_| Executor::new()).collect()),
            returned: std::sync::Condvar::new(),
            capacity,
            runs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The pool's executor count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total scenario executions completed through this pool — the
    /// single-flight tests assert on this: N clients sweeping
    /// overlapping grids must drive it up by the number of *distinct*
    /// scenarios, not the number of requests.
    pub fn runs_completed(&self) -> u64 {
        self.runs.load(Ordering::SeqCst)
    }

    /// Runs one scenario on a checked-out executor, blocking while the
    /// whole pool is busy.
    pub fn run_point(&self, sc: &Scenario) -> ScenarioRecord {
        let mut exec = {
            let mut idle = self.idle.lock().expect("executor pool poisoned");
            while idle.is_empty() {
                idle = self
                    .returned
                    .wait(idle)
                    .expect("executor pool poisoned while waiting");
            }
            idle.pop().expect("non-empty after wait")
        };
        let record = run_point(&mut exec, sc);
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.idle.lock().expect("executor pool poisoned").push(exec);
        self.returned.notify_one();
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Kernel;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    fn smoke_scenarios() -> Vec<Scenario> {
        let mut out = Vec::new();
        for tool in [ToolKind::P4, ToolKind::PVM, ToolKind::EXPRESS] {
            for size in [0u64, 4096, 16384] {
                out.push(Scenario {
                    kernel: Kernel::Ring { shifts: 1 },
                    tool,
                    platform: Platform::SUN_ATM_LAN,
                    nprocs: 4,
                    size,
                    perturb: None,
                    reps: 2,
                });
            }
        }
        out
    }

    #[test]
    fn parallel_results_equal_serial_results() {
        let scenarios = smoke_scenarios();
        let serial = run_campaign(&scenarios, 1);
        let parallel = run_campaign(&scenarios, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), scenarios.len());
        for r in &serial {
            assert_eq!(r.status, RecordStatus::Ok);
            let stats = r.stats.unwrap();
            // Deterministic simulator: repetitions agree exactly.
            assert_eq!(stats.min, stats.max);
            assert_eq!(stats.cv, 0.0);
        }
    }

    #[test]
    fn rep_stats_are_correct() {
        let s = RepStats::from_values(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let expected_cv = (2.0f64 / 3.0).sqrt() / 2.0;
        assert!((s.cv - expected_cv).abs() < 1e-12);
    }

    #[test]
    fn failed_points_become_error_records() {
        // An invalid point (Express on the WAN) slipped into a campaign
        // must not abort the others.
        let scenarios = vec![
            Scenario {
                kernel: Kernel::Broadcast,
                tool: ToolKind::EXPRESS,
                platform: Platform::SUN_ATM_WAN,
                nprocs: 4,
                size: 1024,
                reps: 1,
                perturb: None,
            },
            Scenario {
                kernel: Kernel::Broadcast,
                tool: ToolKind::P4,
                platform: Platform::SUN_ATM_WAN,
                nprocs: 4,
                size: 1024,
                reps: 1,
                perturb: None,
            },
        ];
        let records = run_campaign(&scenarios, 2);
        assert_eq!(records[0].status, RecordStatus::Error);
        assert!(records[0].detail.as_deref().unwrap().contains("port"));
        assert_eq!(records[1].status, RecordStatus::Ok);
    }

    #[test]
    fn exec_pool_matches_per_call_workers_and_counts_runs() {
        let scenarios = smoke_scenarios();
        let direct = run_campaign(&scenarios, 1);
        let pool = ExecPool::new(2);
        // Hammer the 2-executor pool from 4 threads; checkout blocking
        // bounds concurrency, and every record is bit-identical to the
        // per-call-executor path.
        let pool_ref = &pool;
        let pooled: Vec<ScenarioRecord> = std::thread::scope(|scope| {
            let handles: Vec<_> = scenarios
                .chunks(3)
                .map(|chunk| {
                    scope.spawn(move || -> Vec<ScenarioRecord> {
                        chunk.iter().map(|sc| pool_ref.run_point(sc)).collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        assert_eq!(pooled, direct);
        assert_eq!(pool.runs_completed(), scenarios.len() as u64);
    }
}
