//! Baseline comparison and regression gating.
//!
//! Two stores (see [`crate::store`]) are matched by scenario key; every
//! pair of `ok` records is compared by mean value, and points slower
//! than `baseline * (1 + threshold)` are flagged as regressions. Because
//! the simulator is deterministic, any drift at all is a behaviour
//! change — the threshold exists so intentional model recalibrations can
//! be gated loosely while refactors are gated at zero.

use crate::store::StoredRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Comparison of one scenario present in both stores.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Scenario key.
    pub key: String,
    /// Value unit.
    pub unit: String,
    /// Baseline mean.
    pub base_mean: f64,
    /// New mean.
    pub new_mean: f64,
    /// `new_mean / base_mean` (∞ if the baseline is 0 and the new value
    /// is not).
    pub ratio: f64,
    /// Whether the point regressed beyond the threshold.
    pub regressed: bool,
}

/// The full comparison of two stores.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-key comparisons for points in both stores, key-sorted.
    pub entries: Vec<DiffEntry>,
    /// Keys only present (as `ok`) in the baseline store.
    pub only_in_base: Vec<String>,
    /// Keys only present (as `ok`) in the new store.
    pub only_in_new: Vec<String>,
    /// Keys that were `ok` in the baseline but non-`ok` in the new
    /// store without an injected-fault explanation — a working scenario
    /// broke, which fails the gate as loudly as a slowdown.
    pub broke: Vec<String>,
    /// Keys that were `ok` in the baseline and failed in the new store
    /// by *expected* fault injection (crash-model stores legitimately
    /// hold `error` records). Informational; does not fail the gate.
    pub injected_faults: Vec<String>,
    /// Keys that were non-`ok` in the baseline but `ok` in the new
    /// store. Informational; does not fail the gate.
    pub fixed: Vec<String>,
    /// The relative threshold used.
    pub threshold: f64,
}

impl DiffReport {
    /// Number of regressed points.
    pub fn regression_count(&self) -> usize {
        self.entries.iter().filter(|e| e.regressed).count()
    }

    /// Whether the new store passes the gate (no slowdowns beyond the
    /// threshold, and no scenario that unexpectedly stopped working).
    pub fn passes(&self) -> bool {
        self.regression_count() == 0 && self.broke.is_empty()
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compared {} scenario(s) at threshold {:.1}%",
            self.entries.len(),
            self.threshold * 100.0
        );
        for e in &self.entries {
            if e.regressed {
                let _ = writeln!(
                    out,
                    "REGRESSION {}: {:.4} -> {:.4} {} ({:+.1}%)",
                    e.key,
                    e.base_mean,
                    e.new_mean,
                    e.unit,
                    (e.ratio - 1.0) * 100.0
                );
            }
        }
        for key in &self.broke {
            let _ = writeln!(out, "BROKE {key}: ok in baseline, failed in new store");
        }
        let improvements = self
            .entries
            .iter()
            .filter(|e| e.ratio < 1.0 - f64::EPSILON)
            .count();
        let _ = writeln!(
            out,
            "{} regression(s), {} improvement(s), {} unchanged",
            self.regression_count(),
            improvements,
            self.entries.len() - self.regression_count() - improvements
        );
        if !self.broke.is_empty() {
            let _ = writeln!(out, "{} key(s) broke (ok -> failed)", self.broke.len());
        }
        if !self.injected_faults.is_empty() {
            let _ = writeln!(
                out,
                "{} key(s) failed by expected fault injection",
                self.injected_faults.len()
            );
        }
        if !self.fixed.is_empty() {
            let _ = writeln!(out, "{} key(s) fixed (failed -> ok)", self.fixed.len());
        }
        if !self.only_in_base.is_empty() {
            let _ = writeln!(out, "{} key(s) only in baseline", self.only_in_base.len());
        }
        if !self.only_in_new.is_empty() {
            let _ = writeln!(out, "{} key(s) only in new store", self.only_in_new.len());
        }
        out
    }
}

/// Whether a record is an *expected* structured error from the fault
/// injector (a crash-model point), as opposed to a genuine failure:
/// crash-injected stores legitimately hold such `error` records, and
/// the gate must tolerate them.
pub fn is_injected_fault(r: &StoredRecord) -> bool {
    r.status == "error"
        && r.detail
            .as_deref()
            .is_some_and(|d| d.contains("fault injection"))
}

fn ok_by_key<'a>(
    records: &'a [StoredRecord],
    label: &str,
) -> Result<BTreeMap<&'a str, &'a StoredRecord>, String> {
    let mut map = BTreeMap::new();
    for r in records.iter().filter(|r| r.status == "ok") {
        // An `ok` record without a mean is a non-finite statistic
        // rendered as null (a model bug); dropping it from the
        // comparison would silently un-gate that scenario.
        if r.mean.is_none() {
            return Err(format!(
                "{label} store has an 'ok' record without a finite mean for key '{}' — \
                 non-finite statistics indicate a model bug",
                r.key
            ));
        }
        if map.insert(r.key.as_str(), r).is_some() {
            // Silently letting the last record win would let an
            // appended or re-run store mask a regression.
            return Err(format!(
                "{label} store has duplicate records for key '{}' — \
                 appended or re-run stores cannot be gated",
                r.key
            ));
        }
    }
    Ok(map)
}

/// Non-`ok` records by key, for classifying status flips. First
/// occurrence wins; duplicates among non-`ok` records are harmless
/// because only the status and detail are consulted.
fn non_ok_by_key(records: &[StoredRecord]) -> BTreeMap<&str, &StoredRecord> {
    let mut map = BTreeMap::new();
    for r in records.iter().filter(|r| r.status != "ok") {
        map.entry(r.key.as_str()).or_insert(r);
    }
    map
}

/// Compares `new` against `base`, flagging points whose mean grew by
/// more than `threshold` (relative, e.g. `0.05` = 5%).
///
/// # Errors
///
/// Returns the offending scenario key if either store carries duplicate
/// `ok` records for one key (the comparison would be ambiguous) or an
/// `ok` record without a mean (a non-finite statistic — the scenario
/// would otherwise silently escape the gate).
pub fn diff_records(
    base: &[StoredRecord],
    new: &[StoredRecord],
    threshold: f64,
) -> Result<DiffReport, String> {
    let base_map = ok_by_key(base, "baseline")?;
    let new_map = ok_by_key(new, "new")?;
    let base_non_ok = non_ok_by_key(base);
    let new_non_ok = non_ok_by_key(new);
    let mut entries = Vec::new();
    let mut only_in_base = Vec::new();
    let mut broke = Vec::new();
    let mut injected_faults = Vec::new();
    for (key, b) in &base_map {
        match new_map.get(key) {
            None => match new_non_ok.get(key) {
                // The scenario stopped producing a value. An expected
                // injected fault is tolerated; anything else is a loud
                // break of a previously working point.
                Some(n) if is_injected_fault(n) => injected_faults.push((*key).to_string()),
                Some(_) => broke.push((*key).to_string()),
                None => only_in_base.push((*key).to_string()),
            },
            Some(n) => {
                let base_mean = b.mean.expect("filtered on mean");
                let new_mean = n.mean.expect("filtered on mean");
                let ratio = if base_mean == 0.0 {
                    if new_mean == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    new_mean / base_mean
                };
                entries.push(DiffEntry {
                    key: (*key).to_string(),
                    unit: n.unit.clone(),
                    base_mean,
                    new_mean,
                    ratio,
                    regressed: ratio > 1.0 + threshold,
                });
            }
        }
    }
    let mut only_in_new = Vec::new();
    let mut fixed = Vec::new();
    for key in new_map.keys() {
        if base_map.contains_key(key) {
            continue;
        }
        if base_non_ok.contains_key(key) {
            fixed.push((*key).to_string());
        } else {
            only_in_new.push((*key).to_string());
        }
    }
    Ok(DiffReport {
        entries,
        only_in_base,
        only_in_new,
        broke,
        injected_faults,
        fixed,
        threshold,
    })
}

/// Degradation of one `(perturbation, tool)` group within a single
/// store: how much slower the tool's perturbed points ran relative to
/// their clean counterparts, and how it fared under injected crashes.
/// This is the robustness score the methodology ranks tools by —
/// degradation curves, not clean-path means.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationEntry {
    /// Perturbation model slug.
    pub perturb: String,
    /// Tool slug (second segment of the scenario key).
    pub tool: String,
    /// Number of (clean, perturbed-seed) pairs compared.
    pub points: usize,
    /// Mean of `perturbed_mean / clean_mean` over the pairs.
    pub mean_slowdown: f64,
    /// Worst slowdown ratio among the pairs.
    pub worst_slowdown: f64,
    /// Perturbed points that ended in an expected injected fault.
    pub crashes: usize,
    /// Perturbed points that failed for any *other* reason — a tool
    /// that deadlocks or panics under perturbation instead of erroring
    /// cleanly does not survive.
    pub unexpected_errors: usize,
}

impl DegradationEntry {
    /// Crash-survival flag: every failure in the group was a structured
    /// injected-fault error, never an unexplained breakage.
    pub fn survived(&self) -> bool {
        self.unexpected_errors == 0
    }
}

/// The tool slug is the second `/`-separated segment of every scenario
/// key (`kernel/tool/platform/...`).
fn tool_of(key: &str) -> &str {
    key.split('/').nth(1).unwrap_or("")
}

/// The clean counterpart of a perturbed key: the key minus its trailing
/// `/{perturb}/seed{N}` segment. Only meaningful for perturbed keys —
/// it unconditionally strips the last two segments.
pub fn clean_key_of(perturbed: &str) -> &str {
    perturbed.rsplitn(3, '/').nth(2).unwrap_or(perturbed)
}

/// Summarizes one store's perturbed records against its own clean
/// records, grouped by `(perturbation, tool)` and sorted by that pair.
/// Stores without perturbed records summarize to an empty list.
pub fn degradation_summary(records: &[StoredRecord]) -> Vec<DegradationEntry> {
    let clean: BTreeMap<&str, f64> = records
        .iter()
        .filter(|r| r.perturb.is_none() && r.status == "ok")
        .filter_map(|r| r.mean.map(|m| (r.key.as_str(), m)))
        .collect();
    type Group = (Vec<f64>, usize, usize);
    let mut groups: BTreeMap<(String, String), Group> = BTreeMap::new();
    for r in records {
        let Some(p) = &r.perturb else { continue };
        let entry = groups
            .entry((p.clone(), tool_of(&r.key).to_string()))
            .or_default();
        if r.status == "ok" {
            if let (Some(m), Some(c)) = (r.mean, clean.get(clean_key_of(&r.key))) {
                if *c > 0.0 {
                    entry.0.push(m / c);
                }
            }
        } else if is_injected_fault(r) {
            entry.1 += 1;
        } else if r.status == "error" {
            entry.2 += 1;
        }
    }
    groups
        .into_iter()
        .map(|((perturb, tool), (ratios, crashes, unexpected))| {
            let points = ratios.len();
            let mean = if points > 0 {
                ratios.iter().sum::<f64>() / points as f64
            } else {
                0.0
            };
            DegradationEntry {
                perturb,
                tool,
                points,
                mean_slowdown: mean,
                worst_slowdown: ratios.iter().cloned().fold(0.0, f64::max),
                crashes,
                unexpected_errors: unexpected,
            }
        })
        .collect()
}

/// Renders a degradation summary, one line per `(perturbation, tool)`.
pub fn render_degradation(entries: &[DegradationEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        let verdict = if !e.survived() {
            format!(", {} UNEXPECTED error(s)", e.unexpected_errors)
        } else if e.crashes > 0 {
            format!(", {} injected crash(es), survived", e.crashes)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "degradation {}/{}: {} point(s), mean slowdown {:.2}x, worst {:.2}x{}",
            e.perturb, e.tool, e.points, e.mean_slowdown, e.worst_slowdown, verdict
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, mean: f64) -> StoredRecord {
        StoredRecord {
            key: key.to_string(),
            status: "ok".to_string(),
            unit: "ms".to_string(),
            mean: Some(mean),
            min: Some(mean),
            max: Some(mean),
            cv: Some(0.0),
            detail: None,
            perturb: None,
            seed: None,
            git_sha: None,
            timestamp: None,
            counters: None,
        }
    }

    fn err(key: &str, detail: &str) -> StoredRecord {
        let mut r = rec(key, 0.0);
        r.status = "error".to_string();
        r.mean = None;
        r.min = None;
        r.max = None;
        r.cv = None;
        r.detail = Some(detail.to_string());
        r
    }

    fn perturbed(key_base: &str, slug: &str, seed: u32, mean: f64) -> StoredRecord {
        let mut r = rec(&format!("{key_base}/{slug}/seed{seed}"), mean);
        r.perturb = Some(slug.to_string());
        r.seed = Some(seed);
        r
    }

    #[test]
    fn flags_injected_slowdown() {
        let base = vec![rec("a", 10.0), rec("b", 5.0), rec("c", 1.0)];
        let mut new = base.clone();
        new[1].mean = Some(6.0); // +20% on "b"
        let report = diff_records(&base, &new, 0.10).unwrap();
        assert_eq!(report.regression_count(), 1);
        assert!(!report.passes());
        let regressed: Vec<&str> = report
            .entries
            .iter()
            .filter(|e| e.regressed)
            .map(|e| e.key.as_str())
            .collect();
        assert_eq!(regressed, vec!["b"]);
        assert!(report.render().contains("REGRESSION b"));
    }

    #[test]
    fn identical_stores_pass() {
        let base = vec![rec("a", 10.0), rec("b", 5.0)];
        let report = diff_records(&base, &base.clone(), 0.0).unwrap();
        assert!(report.passes());
        assert_eq!(report.entries.len(), 2);
    }

    #[test]
    fn threshold_tolerates_small_growth() {
        let base = vec![rec("a", 100.0)];
        let new = vec![rec("a", 104.0)];
        assert!(diff_records(&base, &new, 0.05).unwrap().passes());
        assert!(!diff_records(&base, &new, 0.01).unwrap().passes());
    }

    #[test]
    fn duplicate_keys_fail_the_diff_instead_of_masking() {
        // A re-run appended to a store: the stale fast record must not
        // shadow (or be shadowed by) the fresh slow one.
        let dup = vec![rec("a", 1.0), rec("b", 2.0), rec("a", 9.0)];
        let clean = vec![rec("a", 1.0), rec("b", 2.0)];
        let err = diff_records(&dup, &clean, 0.0).unwrap_err();
        assert!(err.contains("'a'"), "{err}");
        assert!(err.contains("baseline"), "{err}");
        let err = diff_records(&clean, &dup, 0.0).unwrap_err();
        assert!(err.contains("'a'"), "{err}");
        assert!(err.contains("new"), "{err}");
        // Duplicate keys among non-ok records are fine: they never
        // enter the comparison.
        let mut unsupported = rec("u", 0.0);
        unsupported.status = "unsupported".to_string();
        unsupported.mean = None;
        let with_dup_unsupported = vec![rec("a", 1.0), unsupported.clone(), unsupported];
        assert!(diff_records(&with_dup_unsupported, &clean, 0.0).is_ok());
    }

    #[test]
    fn ok_records_without_a_mean_fail_the_diff() {
        // A non-finite statistic renders as null; the scenario must
        // fail the gate loudly instead of vanishing from both maps.
        let mut broken = rec("a", 1.0);
        broken.mean = None;
        let clean = vec![rec("a", 1.0)];
        let err = diff_records(&clean, &[rec("a", 1.0), broken.clone()], 0.0).unwrap_err();
        assert!(err.contains("'a'"), "{err}");
        assert!(err.contains("without a finite mean"), "{err}");
        let err = diff_records(&[broken], &clean, 0.0).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
    }

    #[test]
    fn disjoint_keys_are_reported_not_compared() {
        let base = vec![rec("a", 1.0), rec("gone", 2.0)];
        let new = vec![rec("a", 1.0), rec("fresh", 3.0)];
        let report = diff_records(&base, &new, 0.0).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.only_in_base, vec!["gone".to_string()]);
        assert_eq!(report.only_in_new, vec!["fresh".to_string()]);
    }

    #[test]
    fn ok_to_error_flips_fail_the_gate_loudly() {
        // A scenario that worked in the baseline but fails in the
        // candidate is a regression even though no means can be
        // compared.
        let base = vec![rec("a", 1.0), rec("b", 2.0)];
        let new = vec![rec("a", 1.0), err("b", "deadlock: all ranks blocked")];
        let report = diff_records(&base, &new, 0.0).unwrap();
        assert_eq!(report.broke, vec!["b".to_string()]);
        assert!(!report.passes());
        assert!(report.only_in_base.is_empty(), "flips are not 'missing'");
        assert!(report.render().contains("BROKE b"));
    }

    #[test]
    fn error_to_ok_flips_are_informational_fixes() {
        // The reverse direction must not fail the gate: a scenario that
        // used to fail and now works is progress, reported as such.
        let base = vec![rec("a", 1.0), err("b", "deadlock: all ranks blocked")];
        let new = vec![rec("a", 1.0), rec("b", 2.0)];
        let report = diff_records(&base, &new, 0.0).unwrap();
        assert!(report.passes());
        assert_eq!(report.fixed, vec!["b".to_string()]);
        assert!(report.broke.is_empty());
        assert!(report.only_in_new.is_empty(), "fixes are not 'new keys'");
        assert!(report.render().contains("fixed"));
    }

    #[test]
    fn injected_fault_errors_are_tolerated_by_the_gate() {
        // Crash-injected stores legitimately hold structured `error`
        // records; only unexpected flips may fail the gate.
        let base = vec![rec("a", 1.0), rec("b", 2.0)];
        let new = vec![
            rec("a", 1.0),
            err("b", "rank 1 crashed by fault injection at 2ms"),
        ];
        let report = diff_records(&base, &new, 0.0).unwrap();
        assert!(report.passes());
        assert_eq!(report.injected_faults, vec!["b".to_string()]);
        assert!(report.broke.is_empty());
    }

    #[test]
    fn degradation_summary_scores_tools_on_slowdown_and_survival() {
        let records = vec![
            rec("bcast/p4/eth/n4/s1024", 10.0),
            rec("bcast/pvm/eth/n4/s1024", 20.0),
            perturbed("bcast/p4/eth/n4/s1024", "chaos", 1, 15.0),
            perturbed("bcast/p4/eth/n4/s1024", "chaos", 2, 25.0),
            perturbed("bcast/pvm/eth/n4/s1024", "chaos", 1, 30.0),
            {
                let mut r = err(
                    "bcast/pvm/eth/n4/s1024/crashy/seed1",
                    "rank 1 crashed by fault injection at 2ms",
                );
                r.perturb = Some("crashy".to_string());
                r.seed = Some(1);
                r
            },
            {
                let mut r = err("bcast/p4/eth/n4/s1024/crashy/seed1", "deadlock");
                r.perturb = Some("crashy".to_string());
                r.seed = Some(1);
                r
            },
        ];
        let summary = degradation_summary(&records);
        // Sorted by (perturb, tool): chaos/p4, chaos/pvm, crashy/p4,
        // crashy/pvm.
        assert_eq!(summary.len(), 4);
        let chaos_p4 = &summary[0];
        assert_eq!(
            (chaos_p4.perturb.as_str(), chaos_p4.tool.as_str()),
            ("chaos", "p4")
        );
        assert_eq!(chaos_p4.points, 2);
        assert!((chaos_p4.mean_slowdown - 2.0).abs() < 1e-12);
        assert!((chaos_p4.worst_slowdown - 2.5).abs() < 1e-12);
        assert!(chaos_p4.survived());
        let chaos_pvm = &summary[1];
        assert!((chaos_pvm.mean_slowdown - 1.5).abs() < 1e-12);
        // p4's crashy failure was NOT an injected fault: not survived.
        let crashy_p4 = &summary[2];
        assert_eq!(crashy_p4.tool, "p4");
        assert_eq!(crashy_p4.unexpected_errors, 1);
        assert!(!crashy_p4.survived());
        // PVM's was the structured injected-crash error: survived.
        let crashy_pvm = &summary[3];
        assert_eq!(crashy_pvm.crashes, 1);
        assert!(crashy_pvm.survived());
        let text = render_degradation(&summary);
        assert!(text.contains("degradation chaos/p4: 2 point(s), mean slowdown 2.00x"));
        assert!(text.contains("1 injected crash(es), survived"));
        assert!(text.contains("1 UNEXPECTED error(s)"));
    }

    #[test]
    fn non_ok_records_are_ignored() {
        let mut unsupported = rec("u", 0.0);
        unsupported.status = "unsupported".to_string();
        unsupported.mean = None;
        let base = vec![rec("a", 1.0), unsupported.clone()];
        let new = vec![rec("a", 1.0), unsupported];
        let report = diff_records(&base, &new, 0.0).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert!(report.only_in_base.is_empty());
    }
}
