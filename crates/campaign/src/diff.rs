//! Baseline comparison and regression gating.
//!
//! Two stores (see [`crate::store`]) are matched by scenario key; every
//! pair of `ok` records is compared by mean value, and points slower
//! than `baseline * (1 + threshold)` are flagged as regressions. Because
//! the simulator is deterministic, any drift at all is a behaviour
//! change — the threshold exists so intentional model recalibrations can
//! be gated loosely while refactors are gated at zero.

use crate::store::StoredRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Comparison of one scenario present in both stores.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Scenario key.
    pub key: String,
    /// Value unit.
    pub unit: String,
    /// Baseline mean.
    pub base_mean: f64,
    /// New mean.
    pub new_mean: f64,
    /// `new_mean / base_mean` (∞ if the baseline is 0 and the new value
    /// is not).
    pub ratio: f64,
    /// Whether the point regressed beyond the threshold.
    pub regressed: bool,
}

/// The full comparison of two stores.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-key comparisons for points in both stores, key-sorted.
    pub entries: Vec<DiffEntry>,
    /// Keys only present (as `ok`) in the baseline store.
    pub only_in_base: Vec<String>,
    /// Keys only present (as `ok`) in the new store.
    pub only_in_new: Vec<String>,
    /// The relative threshold used.
    pub threshold: f64,
}

impl DiffReport {
    /// Number of regressed points.
    pub fn regression_count(&self) -> usize {
        self.entries.iter().filter(|e| e.regressed).count()
    }

    /// Whether the new store passes the gate (no regressions).
    pub fn passes(&self) -> bool {
        self.regression_count() == 0
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compared {} scenario(s) at threshold {:.1}%",
            self.entries.len(),
            self.threshold * 100.0
        );
        for e in &self.entries {
            if e.regressed {
                let _ = writeln!(
                    out,
                    "REGRESSION {}: {:.4} -> {:.4} {} ({:+.1}%)",
                    e.key,
                    e.base_mean,
                    e.new_mean,
                    e.unit,
                    (e.ratio - 1.0) * 100.0
                );
            }
        }
        let improvements = self
            .entries
            .iter()
            .filter(|e| e.ratio < 1.0 - f64::EPSILON)
            .count();
        let _ = writeln!(
            out,
            "{} regression(s), {} improvement(s), {} unchanged",
            self.regression_count(),
            improvements,
            self.entries.len() - self.regression_count() - improvements
        );
        if !self.only_in_base.is_empty() {
            let _ = writeln!(out, "{} key(s) only in baseline", self.only_in_base.len());
        }
        if !self.only_in_new.is_empty() {
            let _ = writeln!(out, "{} key(s) only in new store", self.only_in_new.len());
        }
        out
    }
}

fn ok_by_key<'a>(
    records: &'a [StoredRecord],
    label: &str,
) -> Result<BTreeMap<&'a str, &'a StoredRecord>, String> {
    let mut map = BTreeMap::new();
    for r in records.iter().filter(|r| r.status == "ok") {
        // An `ok` record without a mean is a non-finite statistic
        // rendered as null (a model bug); dropping it from the
        // comparison would silently un-gate that scenario.
        if r.mean.is_none() {
            return Err(format!(
                "{label} store has an 'ok' record without a finite mean for key '{}' — \
                 non-finite statistics indicate a model bug",
                r.key
            ));
        }
        if map.insert(r.key.as_str(), r).is_some() {
            // Silently letting the last record win would let an
            // appended or re-run store mask a regression.
            return Err(format!(
                "{label} store has duplicate records for key '{}' — \
                 appended or re-run stores cannot be gated",
                r.key
            ));
        }
    }
    Ok(map)
}

/// Compares `new` against `base`, flagging points whose mean grew by
/// more than `threshold` (relative, e.g. `0.05` = 5%).
///
/// # Errors
///
/// Returns the offending scenario key if either store carries duplicate
/// `ok` records for one key (the comparison would be ambiguous) or an
/// `ok` record without a mean (a non-finite statistic — the scenario
/// would otherwise silently escape the gate).
pub fn diff_records(
    base: &[StoredRecord],
    new: &[StoredRecord],
    threshold: f64,
) -> Result<DiffReport, String> {
    let base_map = ok_by_key(base, "baseline")?;
    let new_map = ok_by_key(new, "new")?;
    let mut entries = Vec::new();
    let mut only_in_base = Vec::new();
    for (key, b) in &base_map {
        match new_map.get(key) {
            None => only_in_base.push((*key).to_string()),
            Some(n) => {
                let base_mean = b.mean.expect("filtered on mean");
                let new_mean = n.mean.expect("filtered on mean");
                let ratio = if base_mean == 0.0 {
                    if new_mean == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    new_mean / base_mean
                };
                entries.push(DiffEntry {
                    key: (*key).to_string(),
                    unit: n.unit.clone(),
                    base_mean,
                    new_mean,
                    ratio,
                    regressed: ratio > 1.0 + threshold,
                });
            }
        }
    }
    let only_in_new = new_map
        .keys()
        .filter(|k| !base_map.contains_key(**k))
        .map(|k| (*k).to_string())
        .collect();
    Ok(DiffReport {
        entries,
        only_in_base,
        only_in_new,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: &str, mean: f64) -> StoredRecord {
        StoredRecord {
            key: key.to_string(),
            status: "ok".to_string(),
            unit: "ms".to_string(),
            mean: Some(mean),
            min: Some(mean),
            max: Some(mean),
            cv: Some(0.0),
            git_sha: None,
            timestamp: None,
        }
    }

    #[test]
    fn flags_injected_slowdown() {
        let base = vec![rec("a", 10.0), rec("b", 5.0), rec("c", 1.0)];
        let mut new = base.clone();
        new[1].mean = Some(6.0); // +20% on "b"
        let report = diff_records(&base, &new, 0.10).unwrap();
        assert_eq!(report.regression_count(), 1);
        assert!(!report.passes());
        let regressed: Vec<&str> = report
            .entries
            .iter()
            .filter(|e| e.regressed)
            .map(|e| e.key.as_str())
            .collect();
        assert_eq!(regressed, vec!["b"]);
        assert!(report.render().contains("REGRESSION b"));
    }

    #[test]
    fn identical_stores_pass() {
        let base = vec![rec("a", 10.0), rec("b", 5.0)];
        let report = diff_records(&base, &base.clone(), 0.0).unwrap();
        assert!(report.passes());
        assert_eq!(report.entries.len(), 2);
    }

    #[test]
    fn threshold_tolerates_small_growth() {
        let base = vec![rec("a", 100.0)];
        let new = vec![rec("a", 104.0)];
        assert!(diff_records(&base, &new, 0.05).unwrap().passes());
        assert!(!diff_records(&base, &new, 0.01).unwrap().passes());
    }

    #[test]
    fn duplicate_keys_fail_the_diff_instead_of_masking() {
        // A re-run appended to a store: the stale fast record must not
        // shadow (or be shadowed by) the fresh slow one.
        let dup = vec![rec("a", 1.0), rec("b", 2.0), rec("a", 9.0)];
        let clean = vec![rec("a", 1.0), rec("b", 2.0)];
        let err = diff_records(&dup, &clean, 0.0).unwrap_err();
        assert!(err.contains("'a'"), "{err}");
        assert!(err.contains("baseline"), "{err}");
        let err = diff_records(&clean, &dup, 0.0).unwrap_err();
        assert!(err.contains("'a'"), "{err}");
        assert!(err.contains("new"), "{err}");
        // Duplicate keys among non-ok records are fine: they never
        // enter the comparison.
        let mut unsupported = rec("u", 0.0);
        unsupported.status = "unsupported".to_string();
        unsupported.mean = None;
        let with_dup_unsupported = vec![rec("a", 1.0), unsupported.clone(), unsupported];
        assert!(diff_records(&with_dup_unsupported, &clean, 0.0).is_ok());
    }

    #[test]
    fn ok_records_without_a_mean_fail_the_diff() {
        // A non-finite statistic renders as null; the scenario must
        // fail the gate loudly instead of vanishing from both maps.
        let mut broken = rec("a", 1.0);
        broken.mean = None;
        let clean = vec![rec("a", 1.0)];
        let err = diff_records(&clean, &[rec("a", 1.0), broken.clone()], 0.0).unwrap_err();
        assert!(err.contains("'a'"), "{err}");
        assert!(err.contains("without a finite mean"), "{err}");
        let err = diff_records(&[broken], &clean, 0.0).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
    }

    #[test]
    fn disjoint_keys_are_reported_not_compared() {
        let base = vec![rec("a", 1.0), rec("gone", 2.0)];
        let new = vec![rec("a", 1.0), rec("fresh", 3.0)];
        let report = diff_records(&base, &new, 0.0).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.only_in_base, vec!["gone".to_string()]);
        assert_eq!(report.only_in_new, vec!["fresh".to_string()]);
    }

    #[test]
    fn non_ok_records_are_ignored() {
        let mut unsupported = rec("u", 0.0);
        unsupported.status = "unsupported".to_string();
        unsupported.mean = None;
        let base = vec![rec("a", 1.0), unsupported.clone()];
        let new = vec![rec("a", 1.0), unsupported];
        let report = diff_records(&base, &new, 0.0).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert!(report.only_in_base.is_empty());
    }
}
