//! The paper's evaluation section as declared campaigns.
//!
//! Each table/figure of the paper is one named campaign — a declared
//! [`ScenarioGrid`] rather than an ad-hoc loop (DoKnowMe's "explicit,
//! reusable experiment plan"). The `pdceval` CLI lists and runs these;
//! `core::experiments` renders the same series into the paper's
//! artifacts.

use crate::grid::ScenarioGrid;
use crate::scenario::{AplApp, Kernel, PerturbRun, Scale, Scenario};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// The message sizes of the paper's Table 3, in bytes:
/// 0, 1, 2, 4, 8, 16, 32, 64 KB.
pub fn table3_sizes_bytes() -> Vec<u64> {
    [0u64, 1, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|kb| kb * 1024)
        .collect()
}

/// The vector lengths of the paper's Figure 4, in elements.
pub fn figure4_vector_sizes() -> Vec<u64> {
    vec![1_000, 10_000, 25_000, 50_000, 75_000, 100_000]
}

/// The processor counts of the paper's figures for a platform
/// (1..=8 generally, 1..=4 on the NYNET WAN).
pub fn figure_procs(platform: Platform) -> Vec<usize> {
    let max = platform.max_nodes().min(8);
    (1..=max).collect()
}

/// A named campaign: a declared scenario set with a human title.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Stable CLI name (`fig2-broadcast`, `quick`, or a spec-declared
    /// campaign slug).
    pub name: String,
    /// Human-readable description.
    pub title: String,
    /// The campaign's sweep points, in declaration order.
    pub scenarios: Vec<Scenario>,
}

fn app_kernels(scale: Scale) -> Vec<Kernel> {
    AplApp::all()
        .into_iter()
        .map(|app| Kernel::App { app, scale })
        .collect()
}

fn app_campaign(name: &str, figure: &str, platform: Platform, scale: Scale) -> Campaign {
    Campaign {
        name: name.to_string(),
        title: format!(
            "{figure}: application performance on {} ({scale:?} scale)",
            platform.name()
        ),
        scenarios: ScenarioGrid::new()
            .kernels(app_kernels(scale))
            .tools(ToolKind::builtin())
            .platforms([platform])
            .nprocs(figure_procs(platform))
            .sizes([0])
            .scenarios(),
    }
}

/// All declared campaigns, in the paper's presentation order.
///
/// Default campaigns pin [`ToolKind::builtin`] and explicit built-in
/// platforms, so loading extra specs never changes their grids (the
/// golden tests hold byte-identical across registry growth). Spec-loaded
/// models get their own campaign through [`spec_smoke`].
pub fn all(scale: Scale) -> Vec<Campaign> {
    vec![
        Campaign {
            name: "table3-sendrecv".to_string(),
            title: "Table 3: snd/rcv timing for SUN SPARCstations".to_string(),
            scenarios: ScenarioGrid::new()
                .kernels([Kernel::SendRecv { iters: 2 }])
                .tools(ToolKind::builtin())
                .platforms([
                    Platform::SUN_ETHERNET,
                    Platform::SUN_ATM_LAN,
                    Platform::SUN_ATM_WAN,
                ])
                .nprocs([2])
                .sizes(table3_sizes_bytes())
                .scenarios(),
        },
        Campaign {
            name: "fig2-broadcast".to_string(),
            title: "Figure 2: broadcast timing among 4 SUNs".to_string(),
            scenarios: ScenarioGrid::new()
                .kernels([Kernel::Broadcast])
                .tools(ToolKind::builtin())
                .platforms([Platform::SUN_ETHERNET, Platform::SUN_ATM_WAN])
                .nprocs([4])
                .sizes(table3_sizes_bytes())
                .scenarios(),
        },
        Campaign {
            name: "fig3-ring".to_string(),
            title: "Figure 3: ring communication among 4 SUNs".to_string(),
            scenarios: ScenarioGrid::new()
                .kernels([Kernel::Ring { shifts: 1 }])
                .tools(ToolKind::builtin())
                .platforms([Platform::SUN_ETHERNET, Platform::SUN_ATM_WAN])
                .nprocs([4])
                .sizes(table3_sizes_bytes())
                .scenarios(),
        },
        Campaign {
            name: "fig4-globalsum".to_string(),
            title: "Figure 4: global vector summation among 4 SUNs".to_string(),
            scenarios: ScenarioGrid::new()
                .kernels([Kernel::GlobalSum])
                .tools(ToolKind::builtin())
                .platforms([Platform::SUN_ETHERNET, Platform::SUN_ATM_WAN])
                .nprocs([4])
                .sizes(figure4_vector_sizes())
                .scenarios(),
        },
        app_campaign("fig5-apps-alpha", "Figure 5", Platform::ALPHA_FDDI, scale),
        app_campaign("fig6-apps-sp1", "Figure 6", Platform::SP1_SWITCH, scale),
        app_campaign("fig7-apps-nynet", "Figure 7", Platform::SUN_ATM_WAN, scale),
        app_campaign(
            "fig8-apps-ethernet",
            "Figure 8",
            Platform::SUN_ETHERNET,
            scale,
        ),
        quick(),
    ]
}

/// A small multi-tool, multi-platform smoke campaign: every TPL kernel
/// plus one quick application point, across three platforms and all
/// three tools, two repetitions per point. Runs in seconds; used by CI.
pub fn quick() -> Campaign {
    let platforms = [
        Platform::SUN_ETHERNET,
        Platform::SUN_ATM_LAN,
        Platform::SUN_ATM_WAN,
    ];
    let mut scenarios = ScenarioGrid::new()
        .kernels([Kernel::SendRecv { iters: 1 }])
        .tools(ToolKind::builtin())
        .platforms(platforms)
        .nprocs([2])
        .sizes([1024, 16 * 1024])
        .reps(2)
        .scenarios();
    scenarios.extend(
        ScenarioGrid::new()
            .kernels([Kernel::Broadcast, Kernel::Ring { shifts: 1 }])
            .tools(ToolKind::builtin())
            .platforms(platforms)
            .nprocs([4])
            .sizes([16 * 1024])
            .reps(2)
            .scenarios(),
    );
    scenarios.extend(
        ScenarioGrid::new()
            .kernels([Kernel::GlobalSum])
            .tools(ToolKind::builtin())
            .platforms(platforms)
            .nprocs([4])
            .sizes([10_000])
            .reps(2)
            .scenarios(),
    );
    scenarios.extend(
        ScenarioGrid::new()
            .kernels([Kernel::App {
                app: AplApp::MonteCarlo,
                scale: Scale::Quick,
            }])
            .tools(ToolKind::builtin())
            .platforms([Platform::SUN_ETHERNET])
            .nprocs([4])
            .sizes([0])
            .reps(2)
            .scenarios(),
    );
    Campaign {
        name: "quick".to_string(),
        title: "Smoke campaign: all kernels, three platforms, all tools".to_string(),
        scenarios,
    }
}

/// The platform pair that default-selector spec campaigns and
/// [`spec_smoke`] fall back to when a spec file declares no platforms
/// of its own.
fn fallback_platforms() -> Vec<Platform> {
    vec![Platform::SUN_ETHERNET, Platform::SUN_ATM_LAN]
}

/// A smoke campaign over spec-loaded models: every TPL kernel plus one
/// application point, sweeping the union of the built-in tools and
/// `loaded_tools` across `loaded_platforms` (falling back to two
/// built-in platforms when the spec declares none). This is how a tool
/// or platform defined purely as spec data runs end-to-end — the grid's
/// validity filter handles node limits and capability gaps exactly as it
/// does for the built-ins.
pub fn spec_smoke(
    loaded_tools: &[ToolKind],
    loaded_platforms: &[Platform],
    scale: Scale,
) -> Campaign {
    let mut tools: Vec<ToolKind> = ToolKind::builtin().to_vec();
    for t in loaded_tools {
        if !tools.contains(t) {
            tools.push(*t);
        }
    }
    let platforms: Vec<Platform> = if loaded_platforms.is_empty() {
        fallback_platforms()
    } else {
        loaded_platforms.to_vec()
    };
    let mut scenarios = ScenarioGrid::new()
        .kernels([Kernel::SendRecv { iters: 1 }])
        .tools(tools.clone())
        .platforms(platforms.clone())
        .nprocs([2])
        .sizes([1024, 16 * 1024])
        .reps(2)
        .scenarios();
    scenarios.extend(
        ScenarioGrid::new()
            .kernels([
                Kernel::Broadcast,
                Kernel::Ring { shifts: 1 },
                Kernel::GlobalSum,
            ])
            .tools(tools.clone())
            .platforms(platforms.clone())
            .nprocs([4, 8])
            .sizes([10_000])
            .reps(2)
            .scenarios(),
    );
    scenarios.extend(
        ScenarioGrid::new()
            .kernels([Kernel::App {
                app: AplApp::MonteCarlo,
                scale,
            }])
            .tools(tools)
            .platforms(platforms)
            .nprocs([4])
            .sizes([0])
            .reps(2)
            .scenarios(),
    );
    Campaign {
        name: "spec-smoke".to_string(),
        title: "Spec smoke: built-in + spec-loaded tools on spec-loaded platforms".to_string(),
        scenarios,
    }
}

/// A smoke campaign over *heterogeneous* platforms: every TPL kernel
/// plus one application point on each multi-group platform among
/// `loaded_platforms`, at node counts chosen to exercise the topology —
/// runs confined to the first group, runs that just fill it, and runs
/// that spill across the inter-group link. This is how a mixed cluster
/// defined purely as spec data (e.g. `examples/mixed.spec`) runs
/// end-to-end; scenario keys carry each platform's topology slug.
pub fn hetero_smoke(loaded_platforms: &[Platform], scale: Scale) -> Campaign {
    let platforms: Vec<Platform> = loaded_platforms
        .iter()
        .copied()
        .filter(|p| p.is_heterogeneous())
        .collect();
    // Node counts that probe group boundaries, per platform: the grid's
    // validity filter drops counts over a platform's limit.
    let mut nprocs: Vec<usize> = vec![2, 4];
    for p in &platforms {
        let spec = p.spec();
        let boundary = spec.topology.primary().count;
        nprocs.push(boundary); // fills the first group exactly
        nprocs.push((boundary + 4).min(spec.max_nodes)); // spills across groups
    }
    nprocs.sort_unstable();
    nprocs.dedup();
    let mut scenarios = ScenarioGrid::new()
        .kernels([Kernel::SendRecv { iters: 1 }])
        .tools(ToolKind::builtin())
        .platforms(platforms.clone())
        .nprocs(nprocs.clone())
        .sizes([16 * 1024])
        .reps(2)
        .scenarios();
    scenarios.extend(
        ScenarioGrid::new()
            .kernels([
                Kernel::Broadcast,
                Kernel::Ring { shifts: 1 },
                Kernel::GlobalSum,
            ])
            .tools(ToolKind::builtin())
            .platforms(platforms.clone())
            .nprocs(nprocs.clone())
            .sizes([10_000])
            .reps(2)
            .scenarios(),
    );
    scenarios.extend(
        ScenarioGrid::new()
            .kernels([Kernel::App {
                app: AplApp::MonteCarlo,
                scale,
            }])
            .tools(ToolKind::builtin())
            .platforms(platforms)
            .nprocs(nprocs)
            .sizes([0])
            .reps(2)
            .scenarios(),
    );
    Campaign {
        name: "hetero-smoke".to_string(),
        title: "Hetero smoke: all kernels across spec-loaded heterogeneous topologies".to_string(),
        scenarios,
    }
}

/// Looks a campaign up by CLI name.
pub fn by_name(name: &str, scale: Scale) -> Option<Campaign> {
    all(scale).into_iter().find(|c| c.name == name)
}

/// Whether `name` collides with a built-in campaign (the declared
/// defaults or the synthesized smoke campaigns) and therefore may not
/// be used by a spec-declared campaign: the built-in would shadow it
/// at lookup, silently running the wrong sweep.
pub fn is_reserved_name(name: &str) -> bool {
    reserved_names().iter().any(|n| n == name)
}

/// The campaign names spec stanzas may not shadow: the declared
/// defaults plus the synthesized smoke campaigns. Names are
/// scale-independent, so the list is built once rather than
/// re-enumerating every builtin grid per lookup.
fn reserved_names() -> &'static [String] {
    use std::sync::OnceLock;
    static NAMES: OnceLock<Vec<String>> = OnceLock::new();
    NAMES.get_or_init(|| {
        let mut names: Vec<String> = all(Scale::Quick).into_iter().map(|c| c.name).collect();
        names.push("spec-smoke".to_string());
        names.push("hetero-smoke".to_string());
        names
    })
}

/// Materializes one `[campaign]` spec stanza into a runnable
/// [`Campaign`] — the path by which a sweep declared purely as spec
/// data becomes a [`ScenarioGrid`] with the usual validity filtering.
///
/// Kernel names follow [`Kernel::parse_name`] (applications take their
/// workload scale from `scale`). The stanza's `tools` / `platforms`
/// selectors name registry slugs; when omitted they default to the
/// declaring spec's own models (`own_tools` / `own_platforms`), falling
/// back to the built-in tools and the `spec-smoke` platform pair when
/// the spec declares none.
///
/// # Errors
///
/// Returns a description of the problem: a name colliding with a
/// built-in campaign, an unknown kernel/tool/platform, or a grid whose
/// every point is invalid (nothing would run).
pub fn from_spec(
    spec: &pdceval_mpt::spec::CampaignSpec,
    own_tools: &[ToolKind],
    own_platforms: &[Platform],
    scale: Scale,
) -> Result<Campaign, String> {
    use pdceval_mpt::ModelRegistry;

    let ctx = format!("campaign '{}'", spec.slug);
    if is_reserved_name(&spec.slug) {
        return Err(format!(
            "{ctx}: the name collides with a built-in campaign (see `pdceval list`)"
        ));
    }

    let kernels: Vec<Kernel> = spec
        .kernels
        .iter()
        .map(|k| Kernel::parse_name(k, scale).ok_or_else(|| format!("{ctx}: unknown kernel '{k}'")))
        .collect::<Result<_, _>>()?;

    let registry = ModelRegistry::global();
    let tools: Vec<ToolKind> = if spec.tools.is_empty() {
        if own_tools.is_empty() {
            ToolKind::builtin().to_vec()
        } else {
            own_tools.to_vec()
        }
    } else {
        spec.tools
            .iter()
            .map(|s| {
                registry
                    .tool_by_slug(s)
                    .ok_or_else(|| format!("{ctx}: unknown tool '{s}'"))
            })
            .collect::<Result<_, _>>()?
    };
    let platforms: Vec<Platform> = if spec.platforms.is_empty() {
        if own_platforms.is_empty() {
            fallback_platforms()
        } else {
            own_platforms.to_vec()
        }
    } else {
        spec.platforms
            .iter()
            .map(|s| {
                registry
                    .platform_by_slug(s)
                    .ok_or_else(|| format!("{ctx}: unknown platform '{s}'"))
            })
            .collect::<Result<_, _>>()?
    };

    let base = ScenarioGrid::new()
        .kernels(kernels)
        .tools(tools)
        .platforms(platforms)
        .nprocs(spec.nprocs.iter().copied())
        .sizes(spec.sizes.iter().copied())
        .reps(spec.reps)
        .scenarios();
    if base.is_empty() {
        return Err(format!(
            "{ctx}: every grid point is invalid (check node counts against platform \
             limits and tool capabilities)"
        ));
    }

    // Fan the grid out over the stanza's perturbation variants. `none`
    // (and an omitted `perturb` key) is the single clean variant — no
    // seed axis, keys and execution identical to a perturbation-free
    // campaign; each named model gets one full grid copy per seed in
    // `1..=seeds`.
    let mut variants: Vec<Option<PerturbRun>> = Vec::new();
    if spec.perturbs.is_empty() {
        variants.push(None);
    } else {
        for slug in &spec.perturbs {
            if slug == "none" {
                variants.push(None);
            } else {
                let id = registry
                    .perturb_by_slug(slug)
                    .ok_or_else(|| format!("{ctx}: unknown perturb '{slug}'"))?;
                for seed in 1..=spec.seeds {
                    variants.push(Some(PerturbRun { id, seed }));
                }
            }
        }
    }
    let scenarios: Vec<Scenario> = variants
        .iter()
        .flat_map(|p| {
            base.iter().map(move |s| {
                let mut s = *s;
                s.perturb = *p;
                s
            })
        })
        .collect();
    Ok(Campaign {
        name: spec.slug.clone(),
        title: spec
            .title
            .clone()
            .unwrap_or_else(|| format!("Spec-declared campaign '{}'", spec.slug)),
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_names_are_unique() {
        let campaigns = all(Scale::Quick);
        let mut names: Vec<&str> = campaigns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), campaigns.len());
    }

    #[test]
    fn every_campaign_is_nonempty_and_valid() {
        for c in all(Scale::Quick) {
            assert!(!c.scenarios.is_empty(), "{} is empty", c.name);
            for sc in &c.scenarios {
                assert!(sc.is_valid(), "{} contains invalid {}", c.name, sc.key());
            }
        }
    }

    #[test]
    fn quick_campaign_spans_tools_and_platforms() {
        let c = quick();
        let tools: std::collections::HashSet<_> = c.scenarios.iter().map(|s| s.tool).collect();
        let platforms: std::collections::HashSet<_> =
            c.scenarios.iter().map(|s| s.platform).collect();
        assert_eq!(tools.len(), 3);
        assert_eq!(platforms.len(), 3);
        assert!(c.scenarios.len() < 80, "quick must stay quick");
    }

    #[test]
    fn hetero_smoke_sweeps_only_multi_group_platforms() {
        use pdceval_simnet::host::HostSpec;
        use pdceval_simnet::net::NetworkKind;
        use pdceval_simnet::platform::PlatformSpec;
        use pdceval_simnet::topology::{HostGroup, Topology};

        let hetero = pdceval_simnet::registry::register_platform(PlatformSpec {
            name: "Hetero Smoke Mix".to_string(),
            slug: "hetero-smoke-mix".to_string(),
            topology: Topology {
                groups: vec![
                    HostGroup {
                        name: "a".to_string(),
                        host: HostSpec::alpha_axp(),
                        count: 4,
                        link: NetworkKind::Fddi.params(),
                    },
                    HostGroup {
                        name: "b".to_string(),
                        host: HostSpec::sun_ipx(),
                        count: 8,
                        link: NetworkKind::AtmLan.params(),
                    },
                ],
                inter: Some(NetworkKind::AtmWan.params()),
            },
            max_nodes: 12,
            wan: false,
        })
        .unwrap();
        let homo = Platform::SUN_ETHERNET;

        let c = hetero_smoke(&[homo, hetero], Scale::Quick);
        assert!(!c.scenarios.is_empty());
        assert!(
            c.scenarios.iter().all(|s| s.platform == hetero),
            "homogeneous platforms must be filtered out"
        );
        // Node counts probe the group boundary: confined (4), exact
        // fill, and spilling (8) runs all appear.
        let nprocs: std::collections::HashSet<_> = c.scenarios.iter().map(|s| s.nprocs).collect();
        assert!(nprocs.contains(&4) && nprocs.contains(&8), "{nprocs:?}");
        for s in &c.scenarios {
            assert!(s.is_valid(), "{} invalid", s.key());
            assert!(s.key().contains("/4a-8b/"), "{}", s.key());
        }
    }

    fn stanza(slug: &str) -> pdceval_mpt::spec::CampaignSpec {
        pdceval_mpt::spec::CampaignSpec {
            slug: slug.to_string(),
            title: None,
            kernels: vec!["sendrecv-i2".to_string(), "globalsum".to_string()],
            nprocs: vec![2, 4],
            sizes: vec![1024],
            reps: 2,
            tools: vec![],
            platforms: vec![],
            perturbs: vec![],
            seeds: 1,
        }
    }

    #[test]
    fn spec_campaigns_materialize_with_defaults_and_filtering() {
        // No own models: built-in tools on the spec-smoke platform pair.
        let c = from_spec(&stanza("my-sweep"), &[], &[], Scale::Quick).unwrap();
        assert_eq!(c.name, "my-sweep");
        assert!(c.title.contains("my-sweep"));
        let tools: std::collections::HashSet<_> = c.scenarios.iter().map(|s| s.tool).collect();
        assert_eq!(tools.len(), 3, "defaults to the built-in tools");
        // Validity filtering unchanged: PVM has no global sum, so its
        // globalsum points are dropped.
        assert!(c
            .scenarios
            .iter()
            .all(|s| s.tool != ToolKind::PVM || s.kernel != Kernel::GlobalSum));
        assert!(c
            .scenarios
            .iter()
            .all(|s| s.kernel != Kernel::SendRecv { iters: 2 } || s.nprocs >= 2));
        assert!(c.scenarios.iter().all(|s| s.reps == 2));

        // Explicit selectors resolve registry slugs.
        let mut explicit = stanza("my-explicit");
        explicit.tools = vec!["p4".to_string()];
        explicit.platforms = vec!["sun-atm-wan".to_string()];
        let c = from_spec(&explicit, &[], &[], Scale::Quick).unwrap();
        assert!(c
            .scenarios
            .iter()
            .all(|s| s.tool == ToolKind::P4 && s.platform == Platform::SUN_ATM_WAN));

        // Own models take precedence over the fallback defaults.
        let c = from_spec(
            &stanza("my-own"),
            &[ToolKind::P4],
            &[Platform::ALPHA_FDDI],
            Scale::Quick,
        )
        .unwrap();
        assert!(c
            .scenarios
            .iter()
            .all(|s| s.tool == ToolKind::P4 && s.platform == Platform::ALPHA_FDDI));
    }

    #[test]
    fn spec_campaigns_reject_collisions_and_unknowns() {
        let err = from_spec(&stanza("quick"), &[], &[], Scale::Quick).unwrap_err();
        assert!(err.contains("built-in campaign"), "{err}");
        let err = from_spec(&stanza("spec-smoke"), &[], &[], Scale::Quick).unwrap_err();
        assert!(err.contains("built-in campaign"), "{err}");

        let mut bad = stanza("bad-tool");
        bad.tools = vec!["no-such-tool".to_string()];
        let err = from_spec(&bad, &[], &[], Scale::Quick).unwrap_err();
        assert!(err.contains("unknown tool 'no-such-tool'"), "{err}");

        let mut bad = stanza("bad-platform");
        bad.platforms = vec!["no-such-platform".to_string()];
        let err = from_spec(&bad, &[], &[], Scale::Quick).unwrap_err();
        assert!(err.contains("unknown platform"), "{err}");

        // A grid whose every point is invalid is reported, not run.
        let mut empty = stanza("all-invalid");
        empty.nprocs = vec![4096];
        let err = from_spec(&empty, &[], &[], Scale::Quick).unwrap_err();
        assert!(err.contains("invalid"), "{err}");
    }

    #[test]
    fn spec_campaigns_fan_out_over_perturbations_and_seeds() {
        use pdceval_simnet::perturb::{register_perturb, PerturbSpec};
        let mut pspec = PerturbSpec::quiet("campaign-test-chaos");
        pspec.jitter = 0.1;
        register_perturb(pspec).unwrap();

        let clean = from_spec(&stanza("fanout-clean"), &[], &[], Scale::Quick).unwrap();

        let mut perturbed = stanza("fanout-chaos");
        perturbed.perturbs = vec!["none".to_string(), "campaign-test-chaos".to_string()];
        perturbed.seeds = 2;
        let c = from_spec(&perturbed, &[], &[], Scale::Quick).unwrap();
        // One clean grid copy plus one per seed.
        assert_eq!(c.scenarios.len(), clean.scenarios.len() * 3);
        // The clean block comes first and matches the perturbation-free
        // campaign point for point (keys included).
        for (a, b) in c.scenarios.iter().zip(&clean.scenarios) {
            assert_eq!(a.perturb, None);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.key(), b.key());
        }
        let n = clean.scenarios.len();
        for (i, s) in c.scenarios[n..].iter().enumerate() {
            let seed = (i / n) as u32 + 1;
            let p = s.perturb.expect("perturbed block");
            assert_eq!(p.seed, seed);
            assert!(s
                .key()
                .ends_with(&format!("/campaign-test-chaos/seed{seed}")));
        }

        let mut bad = stanza("fanout-bad");
        bad.perturbs = vec!["no-such-perturb".to_string()];
        let err = from_spec(&bad, &[], &[], Scale::Quick).unwrap_err();
        assert!(err.contains("unknown perturb 'no-such-perturb'"), "{err}");
    }

    #[test]
    fn fig7_excludes_express() {
        let c = by_name("fig7-apps-nynet", Scale::Quick).unwrap();
        assert!(c.scenarios.iter().all(|s| s.tool != ToolKind::EXPRESS));
        assert!(c.scenarios.iter().all(|s| s.nprocs <= 4));
    }
}
