//! Declarative enumeration of campaign grids.
//!
//! A [`ScenarioGrid`] is the cross product the paper's methodology sweeps
//! — (kernel × tool × platform × processor count × size) — declared once
//! and enumerated deterministically. Invalid combinations (a tool without
//! a platform port, a node count over the platform's limit, a kernel the
//! tool does not implement) are dropped by [`ScenarioGrid::scenarios`],
//! mirroring the validity rules the runtime would enforce.

use crate::scenario::{Kernel, Scenario};
use pdceval_mpt::ToolKind;
use pdceval_simnet::platform::Platform;

/// Builder for the cross product of scenario coordinates.
///
/// # Examples
///
/// ```
/// use pdceval_campaign::grid::ScenarioGrid;
/// use pdceval_campaign::scenario::Kernel;
/// use pdceval_mpt::ToolKind;
/// use pdceval_simnet::platform::Platform;
///
/// let grid = ScenarioGrid::new()
///     .kernels([Kernel::Broadcast])
///     .tools(ToolKind::all())
///     .platforms([Platform::SUN_ETHERNET, Platform::SUN_ATM_WAN])
///     .nprocs([4])
///     .sizes([16 * 1024, 64 * 1024]);
/// // Express has no WAN port: 3 tools * 2 sizes on Ethernet plus
/// // 2 tools * 2 sizes on the WAN.
/// assert_eq!(grid.scenarios().len(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioGrid {
    kernels: Vec<Kernel>,
    tools: Vec<ToolKind>,
    platforms: Vec<Platform>,
    nprocs: Vec<usize>,
    sizes: Vec<u64>,
    reps: u32,
}

impl ScenarioGrid {
    /// Creates an empty grid (one repetition per point).
    pub fn new() -> ScenarioGrid {
        ScenarioGrid {
            reps: 1,
            ..ScenarioGrid::default()
        }
    }

    /// Sets the kernels to sweep.
    pub fn kernels(mut self, kernels: impl IntoIterator<Item = Kernel>) -> Self {
        self.kernels = kernels.into_iter().collect();
        self
    }

    /// Sets the tools to sweep.
    pub fn tools(mut self, tools: impl IntoIterator<Item = ToolKind>) -> Self {
        self.tools = tools.into_iter().collect();
        self
    }

    /// Sets the platforms to sweep.
    pub fn platforms(mut self, platforms: impl IntoIterator<Item = Platform>) -> Self {
        self.platforms = platforms.into_iter().collect();
        self
    }

    /// Sets the processor counts to sweep.
    pub fn nprocs(mut self, nprocs: impl IntoIterator<Item = usize>) -> Self {
        self.nprocs = nprocs.into_iter().collect();
        self
    }

    /// Sets the size parameters to sweep (bytes or vector elements,
    /// depending on the kernel).
    pub fn sizes(mut self, sizes: impl IntoIterator<Item = u64>) -> Self {
        self.sizes = sizes.into_iter().collect();
        self
    }

    /// Sets the repetition count per point.
    pub fn reps(mut self, reps: u32) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Enumerates every combination, including invalid ones. Order is
    /// deterministic: platform-major, then kernel, tool, nprocs, size —
    /// so points sharing a `(platform, nprocs)` harness are adjacent.
    pub fn all_combinations(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(
            self.platforms.len()
                * self.kernels.len()
                * self.tools.len()
                * self.nprocs.len()
                * self.sizes.len(),
        );
        for &platform in &self.platforms {
            for &kernel in &self.kernels {
                for &tool in &self.tools {
                    for &nprocs in &self.nprocs {
                        for &size in &self.sizes {
                            out.push(Scenario {
                                kernel,
                                tool,
                                platform,
                                nprocs,
                                size,
                                reps: self.reps,
                                perturb: None,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Enumerates the grid, keeping only scenarios that can produce a
    /// timed value (see [`Scenario::is_valid`]).
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.all_combinations()
            .into_iter()
            .filter(Scenario::is_valid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AplApp, Scale};

    #[test]
    fn enumeration_order_is_deterministic() {
        let grid = ScenarioGrid::new()
            .kernels([Kernel::Ring { shifts: 1 }])
            .tools([ToolKind::P4, ToolKind::PVM])
            .platforms([Platform::SUN_ETHERNET])
            .nprocs([2, 4])
            .sizes([0, 1024]);
        let a = grid.scenarios();
        let b = grid.scenarios();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // size is the innermost axis.
        assert_eq!(a[0].size, 0);
        assert_eq!(a[1].size, 1024);
        assert_eq!(a[0].nprocs, 2);
        assert_eq!(a[2].nprocs, 4);
    }

    #[test]
    fn invalid_points_are_filtered() {
        let grid = ScenarioGrid::new()
            .kernels([Kernel::GlobalSum])
            .tools(ToolKind::all())
            .platforms([Platform::SUN_ETHERNET, Platform::SUN_ATM_WAN])
            .nprocs([4])
            .sizes([1000]);
        let scenarios = grid.scenarios();
        // PVM dropped everywhere (no global op); Express dropped on the
        // WAN (no port): p4 + express on Ethernet, p4 on the WAN.
        assert_eq!(scenarios.len(), 3);
        assert!(scenarios.iter().all(|s| s.tool != ToolKind::PVM));
    }

    #[test]
    fn reps_default_to_one_and_clamp() {
        let grid = ScenarioGrid::new()
            .kernels([Kernel::App {
                app: AplApp::Jpeg,
                scale: Scale::Quick,
            }])
            .tools([ToolKind::P4])
            .platforms([Platform::SUN_ETHERNET])
            .nprocs([2])
            .sizes([0])
            .reps(0);
        assert_eq!(grid.scenarios()[0].reps, 1);
    }
}
