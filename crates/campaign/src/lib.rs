//! # pdceval-campaign
//!
//! Declarative scenario-sweep orchestration for the tool-evaluation
//! methodology: the paper's assessment grid — (tool × platform ×
//! kernel × processor count × message size) — expressed as first-class
//! campaigns instead of ad-hoc loops.
//!
//! * [`scenario`] — the coordinates of one sweep point and its stable
//!   string key;
//! * [`grid`] — the [`grid::ScenarioGrid`] builder enumerating campaign
//!   cross products with validity filtering;
//! * [`exec`] — kernel execution over reusable [`pdceval_mpt::SpmdHarness`]
//!   cluster skeletons;
//! * [`runner`] — parallel campaign execution with deterministic result
//!   ordering and repetition statistics;
//! * [`store`] — the JSONL results store (scenario key + git SHA +
//!   timestamp + mean/min/max/CV);
//! * [`cache`] — the content-addressed results cache (spec-content +
//!   code-fingerprint digests, byte-identical warm runs, GC);
//! * [`serve`] — the long-running query front end (`pdceval serve`):
//!   newline-delimited JSON over TCP/Unix sockets with single-flight
//!   dedup over a shared executor pool;
//! * [`diff`] — baseline comparison and regression gating;
//! * [`explain`] — virtual-time breakdowns of traced scenarios
//!   (Chrome trace export, `pdceval explain`);
//! * [`campaigns`] — the paper's tables and figures as named campaigns.
//!
//! # Example: declare, run in parallel, gate
//!
//! ```
//! use pdceval_campaign::diff::diff_records;
//! use pdceval_campaign::grid::ScenarioGrid;
//! use pdceval_campaign::runner::run_campaign;
//! use pdceval_campaign::scenario::Kernel;
//! use pdceval_campaign::store::{parse_jsonl, render_jsonl, StoreMeta};
//! use pdceval_mpt::ToolKind;
//! use pdceval_simnet::platform::Platform;
//!
//! let scenarios = ScenarioGrid::new()
//!     .kernels([Kernel::Ring { shifts: 1 }])
//!     .tools(ToolKind::all())
//!     .platforms([Platform::SUN_ATM_LAN])
//!     .nprocs([4])
//!     .sizes([4096, 16384])
//!     .scenarios();
//! let records = run_campaign(&scenarios, 4);
//! let store = render_jsonl(&records, &StoreMeta::none());
//! let report = diff_records(
//!     &parse_jsonl(&store).unwrap(),
//!     &parse_jsonl(&store).unwrap(),
//!     0.0,
//! )
//! .unwrap();
//! assert!(report.passes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod campaigns;
pub mod diff;
pub mod exec;
pub mod explain;
pub mod grid;
pub mod json;
pub mod reach;
pub mod runner;
pub mod scenario;
pub mod serve;
pub mod store;

pub use cache::{run_campaign_cached, CacheReport, CampaignCache, SingleFlight};
pub use exec::{Executor, PointOutcome, RunCapture};
pub use grid::ScenarioGrid;
pub use runner::{
    run_campaign, run_campaign_with, CampaignOptions, ExecPool, RecordStatus, RepStats,
    ScenarioDoneFn, ScenarioRecord,
};
pub use scenario::{AplApp, Kernel, PerturbRun, Scale, Scenario};
pub use serve::{ServeState, Server};
