//! Scenario keys: the coordinates of one sweep point.
//!
//! A [`Scenario`] names everything that determines one measured value of
//! the paper's evaluation grid — the kernel (a TPL communication
//! primitive or an APL application), the tool, the platform, the process
//! count, the size parameter and the repetition count. Scenarios are pure
//! data: enumerating them ([`crate::grid`]), executing them
//! ([`crate::exec`]) and storing their results ([`crate::store`]) are
//! separate concerns.

use pdceval_mpt::error::RunError;
use pdceval_mpt::runtime::SpmdConfig;
use pdceval_mpt::ToolKind;
use pdceval_simnet::perturb::PerturbId;
use pdceval_simnet::platform::Platform;
use std::fmt;

/// Workload scale: the paper's sizes, or reduced sizes for fast tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The calibrated paper-scale workloads.
    Paper,
    /// Small workloads for quick runs and tests (same shapes, less time).
    Quick,
}

impl Scale {
    /// Stable lower-case slug used in scenario keys.
    pub fn slug(&self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// The four applications of the paper's §3.3, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AplApp {
    /// 2D Fast Fourier Transform.
    Fft,
    /// JPEG compression ("JPEG Simulation" in the figures).
    Jpeg,
    /// Monte Carlo integration.
    MonteCarlo,
    /// Parallel Sorting by Regular Sampling.
    Sorting,
}

impl AplApp {
    /// All four, in the order the paper's figure panes appear.
    pub fn all() -> [AplApp; 4] {
        [
            AplApp::Fft,
            AplApp::Jpeg,
            AplApp::MonteCarlo,
            AplApp::Sorting,
        ]
    }

    /// Pane title as used in the paper's figures.
    pub fn title(&self) -> &'static str {
        match self {
            AplApp::Fft => "2D-FFT",
            AplApp::Jpeg => "JPEG Simulation",
            AplApp::MonteCarlo => "Monte Carlo Integration",
            AplApp::Sorting => "Sorting by Sampling",
        }
    }

    /// Stable lower-case slug used in scenario keys.
    pub fn slug(&self) -> &'static str {
        match self {
            AplApp::Fft => "fft",
            AplApp::Jpeg => "jpeg",
            AplApp::MonteCarlo => "montecarlo",
            AplApp::Sorting => "sorting",
        }
    }
}

impl fmt::Display for AplApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// The measured workload of a scenario: one of the paper's TPL
/// communication kernels, or one APL application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Point-to-point echo between ranks 0 and 1 (Table 3). The
    /// scenario's `size` is the message size in bytes; the value is the
    /// average one-way latency in milliseconds over `iters` round trips.
    SendRecv {
        /// Ping-pong iterations (the simulation is deterministic, so one
        /// iteration is exact; more simply average identical values).
        iters: u32,
    },
    /// Rank-0-rooted broadcast (Figure 2). `size` is bytes; the value is
    /// the completion time in milliseconds at the last receiving node.
    Broadcast,
    /// Simultaneous ring shift, "all nodes send and receive" (Figure 3).
    /// `size` is bytes; the value is per-shift completion milliseconds.
    Ring {
        /// Number of simultaneous shifts (time is reported per shift).
        shifts: u32,
    },
    /// Global vector summation (Figure 4). `size` is the vector length in
    /// elements; the value is completion milliseconds.
    GlobalSum,
    /// One SU PDABS application (Figures 5-8). `size` is unused; the
    /// value is execution time in **seconds**.
    App {
        /// The application.
        app: AplApp,
        /// Workload scale.
        scale: Scale,
    },
}

impl Kernel {
    /// Stable lower-case slug used in scenario keys. Kernel parameters
    /// that change what a point measures (echo iterations, ring shifts,
    /// app scale) are part of the slug, so differently parameterized
    /// scenarios never collide on a store/diff key.
    pub fn slug(&self) -> String {
        match self {
            Kernel::SendRecv { iters } => format!("sendrecv-i{}", iters.max(&1)),
            Kernel::Broadcast => "broadcast".to_string(),
            Kernel::Ring { shifts } => format!("ring-x{}", shifts.max(&1)),
            Kernel::GlobalSum => "globalsum".to_string(),
            Kernel::App { app, scale } => format!("{}-{}", app.slug(), scale.slug()),
        }
    }

    /// The unit of this kernel's measured value.
    pub fn unit(&self) -> &'static str {
        match self {
            Kernel::App { .. } => "s",
            _ => "ms",
        }
    }

    /// Parses a campaign kernel name — the vocabulary `[campaign]` spec
    /// stanzas use, defined once in
    /// `pdceval_mpt::spec::parse_campaign_kernel`: `sendrecv[-iN]`,
    /// `broadcast`, `ring[-xN]`, `globalsum`, and the application names
    /// `fft` / `jpeg` / `montecarlo` / `sorting`, which take their
    /// workload scale from `scale`. Bare `sendrecv` / `ring` default
    /// their parameter to 1.
    pub fn parse_name(name: &str, scale: Scale) -> Option<Kernel> {
        use pdceval_mpt::spec::{parse_campaign_kernel, CampaignKernel as Ck};
        let app = |app| Kernel::App { app, scale };
        Some(match parse_campaign_kernel(name)? {
            Ck::SendRecv(iters) => Kernel::SendRecv { iters },
            Ck::Broadcast => Kernel::Broadcast,
            Ck::Ring(shifts) => Kernel::Ring { shifts },
            Ck::GlobalSum => Kernel::GlobalSum,
            Ck::Fft => app(AplApp::Fft),
            Ck::Jpeg => app(AplApp::Jpeg),
            Ck::MonteCarlo => app(AplApp::MonteCarlo),
            Ck::Sorting => app(AplApp::Sorting),
        })
    }
}

/// Stable lower-case slug for a tool, used in scenario keys. Slugs come
/// from the tool's registered spec, so spec-loaded tools get store keys
/// the same way the built-ins do (whose slugs are string-stable:
/// `express` / `p4` / `pvm`).
pub fn tool_slug(tool: ToolKind) -> String {
    tool.slug()
}

/// Stable lower-case slug for a platform, used in scenario keys (spec
/// data; built-ins keep `sun-eth`, `sun-atm-lan`, `sun-atm-wan`,
/// `alpha-fddi`, `sp1-switch`, `sp1-eth`).
pub fn platform_slug(platform: Platform) -> String {
    platform.slug()
}

/// A perturbed variant of a sweep point: which registered perturbation
/// model applies, and which seed drives its random draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerturbRun {
    /// The registered perturbation model.
    pub id: PerturbId,
    /// The seed (campaigns fan out over `1..=seeds`).
    pub seed: u32,
}

/// One sweep point of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// The workload to measure.
    pub kernel: Kernel,
    /// The tool under test.
    pub tool: ToolKind,
    /// The testbed.
    pub platform: Platform,
    /// Number of node processes.
    pub nprocs: usize,
    /// Size parameter (bytes for message kernels, elements for
    /// [`Kernel::GlobalSum`], unused for applications).
    pub size: u64,
    /// Number of repetitions per point (statistics are computed over
    /// these in the results store).
    pub reps: u32,
    /// Optional seeded perturbation. `None` is the clean point — its key
    /// and execution are byte-identical to the pre-perturbation model.
    pub perturb: Option<PerturbRun>,
}

impl Scenario {
    /// The stable identity of this point: equal scenarios (ignoring
    /// `reps`) render equal keys, which is what baseline comparison
    /// matches on.
    ///
    /// Heterogeneous platforms contribute an extra topology segment
    /// (their group mix, e.g. `8fast-24slow`) right after the platform
    /// slug, so two registered mixes of the same hosts never collide and
    /// a remixed platform reads as a new key. Homogeneous keys — all
    /// built-ins — are exactly what they always were.
    /// Perturbed points append a `/{perturb}/seed{N}` segment after the
    /// size, so a perturbed sweep and its clean baseline coexist in one
    /// store; clean keys — every pre-perturbation key — are unchanged.
    pub fn key(&self) -> String {
        let kernel = self.kernel.slug();
        let tool = tool_slug(self.tool);
        let platform = platform_slug(self.platform);
        let mut key = match self.platform.spec().topology.hetero_slug() {
            None => format!("{kernel}/{tool}/{platform}/n{}/s{}", self.nprocs, self.size),
            Some(topo) => format!(
                "{kernel}/{tool}/{platform}/{topo}/n{}/s{}",
                self.nprocs, self.size
            ),
        };
        if let Some(p) = &self.perturb {
            key.push_str(&format!("/{}/seed{}", p.id.slug(), p.seed));
        }
        key
    }

    /// Checks this scenario against platform node limits and tool ports,
    /// exactly as [`SpmdConfig::validate`] would at run time.
    ///
    /// # Errors
    ///
    /// As [`SpmdConfig::validate`].
    pub fn validate(&self) -> Result<(), RunError> {
        SpmdConfig::new(self.platform, self.tool, self.nprocs).validate()
    }

    /// Whether the scenario can produce a timed value: the run
    /// configuration is valid *and* the tool implements the kernel (PVM
    /// has no global-sum primitive, so its global-sum points are
    /// enumerable but yield no timing — grids drop them) *and* the
    /// kernel's shape fits the node count (the echo kernel needs a
    /// second rank to talk to).
    pub fn is_valid(&self) -> bool {
        if self.validate().is_err() {
            return false;
        }
        match self.kernel {
            Kernel::GlobalSum => self.tool.supports_global_ops(),
            Kernel::SendRecv { .. } => self.nprocs >= 2,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(kernel: Kernel, tool: ToolKind, platform: Platform, nprocs: usize) -> Scenario {
        Scenario {
            kernel,
            tool,
            platform,
            nprocs,
            size: 1024,
            reps: 1,
            perturb: None,
        }
    }

    #[test]
    fn perturbed_keys_append_model_and_seed() {
        use pdceval_simnet::perturb::{register_perturb, PerturbSpec};
        let mut spec = PerturbSpec::quiet("key-test-jitter");
        spec.jitter = 0.2;
        let id = register_perturb(spec).unwrap();
        let mut s = sc(Kernel::Broadcast, ToolKind::P4, Platform::SUN_ETHERNET, 4);
        assert_eq!(s.key(), "broadcast/p4/sun-eth/n4/s1024");
        s.perturb = Some(PerturbRun { id, seed: 3 });
        assert_eq!(
            s.key(),
            "broadcast/p4/sun-eth/n4/s1024/key-test-jitter/seed3"
        );
    }

    #[test]
    fn keys_are_stable_and_unique_across_coordinates() {
        let a = sc(Kernel::Broadcast, ToolKind::P4, Platform::SUN_ETHERNET, 4);
        assert_eq!(a.key(), "broadcast/p4/sun-eth/n4/s1024");
        let b = sc(Kernel::Broadcast, ToolKind::PVM, Platform::SUN_ETHERNET, 4);
        assert_ne!(a.key(), b.key());
        let c = sc(
            Kernel::App {
                app: AplApp::Jpeg,
                scale: Scale::Quick,
            },
            ToolKind::P4,
            Platform::ALPHA_FDDI,
            8,
        );
        assert_eq!(c.key(), "jpeg-quick/p4/alpha-fddi/n8/s1024");
    }

    #[test]
    fn kernel_parameters_are_part_of_the_key() {
        // Ring shifts and echo iterations change what a point measures,
        // so they must not collide on one store/diff key.
        let r1 = sc(
            Kernel::Ring { shifts: 1 },
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            4,
        );
        let r4 = sc(
            Kernel::Ring { shifts: 4 },
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            4,
        );
        assert_eq!(r1.key(), "ring-x1/p4/sun-eth/n4/s1024");
        assert_ne!(r1.key(), r4.key());
        let s1 = sc(
            Kernel::SendRecv { iters: 1 },
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            2,
        );
        let s2 = sc(
            Kernel::SendRecv { iters: 2 },
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            2,
        );
        assert_ne!(s1.key(), s2.key());
        // The executor clamps iters/shifts to >= 1; the slug does too,
        // so a clamped scenario and its literal form share a key.
        assert_eq!(
            sc(
                Kernel::SendRecv { iters: 0 },
                ToolKind::P4,
                Platform::SUN_ETHERNET,
                2
            )
            .key(),
            s1.key()
        );
    }

    #[test]
    fn validity_mirrors_run_time_rules() {
        // Express has no WAN port.
        assert!(!sc(
            Kernel::Ring { shifts: 1 },
            ToolKind::EXPRESS,
            Platform::SUN_ATM_WAN,
            4
        )
        .is_valid());
        // PVM has no global sum.
        assert!(!sc(Kernel::GlobalSum, ToolKind::PVM, Platform::SUN_ETHERNET, 4).is_valid());
        // Too many nodes for NYNET.
        assert!(!sc(Kernel::Broadcast, ToolKind::P4, Platform::SUN_ATM_WAN, 8).is_valid());
        assert!(sc(Kernel::Broadcast, ToolKind::P4, Platform::SUN_ATM_WAN, 4).is_valid());
        // The echo kernel needs a peer rank.
        assert!(!sc(
            Kernel::SendRecv { iters: 1 },
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            1
        )
        .is_valid());
        assert!(sc(
            Kernel::SendRecv { iters: 1 },
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            2
        )
        .is_valid());
    }

    #[test]
    fn heterogeneous_platforms_key_their_topology() {
        use pdceval_simnet::host::HostSpec;
        use pdceval_simnet::net::NetworkKind;
        use pdceval_simnet::platform::PlatformSpec;
        use pdceval_simnet::topology::{HostGroup, Topology};

        let spec = PlatformSpec {
            name: "Key Test Mix".to_string(),
            slug: "key-test-mix".to_string(),
            topology: Topology {
                groups: vec![
                    HostGroup {
                        name: "fast".to_string(),
                        host: HostSpec::alpha_axp(),
                        count: 2,
                        link: NetworkKind::Fddi.params(),
                    },
                    HostGroup {
                        name: "slow".to_string(),
                        host: HostSpec::sun_elc(),
                        count: 6,
                        link: NetworkKind::Ethernet.params(),
                    },
                ],
                inter: Some(NetworkKind::AtmWan.params()),
            },
            max_nodes: 8,
            wan: true,
        };
        let platform = pdceval_simnet::registry::register_platform(spec).unwrap();
        let key = sc(Kernel::Broadcast, ToolKind::P4, platform, 4).key();
        assert_eq!(key, "broadcast/p4/key-test-mix/2fast-6slow/n4/s1024");
    }

    #[test]
    fn kernel_names_parse_and_agree_with_the_spec_vocabulary() {
        use pdceval_mpt::spec::is_campaign_kernel;

        assert_eq!(
            Kernel::parse_name("sendrecv", Scale::Quick),
            Some(Kernel::SendRecv { iters: 1 })
        );
        assert_eq!(
            Kernel::parse_name("sendrecv-i3", Scale::Quick),
            Some(Kernel::SendRecv { iters: 3 })
        );
        assert_eq!(
            Kernel::parse_name("ring-x4", Scale::Quick),
            Some(Kernel::Ring { shifts: 4 })
        );
        assert_eq!(
            Kernel::parse_name("montecarlo", Scale::Paper),
            Some(Kernel::App {
                app: AplApp::MonteCarlo,
                scale: Scale::Paper
            })
        );
        // Every kernel's own key slug parses back to itself (apps add a
        // scale segment, so they are keyed, not parsed).
        for k in [
            Kernel::SendRecv { iters: 2 },
            Kernel::Broadcast,
            Kernel::Ring { shifts: 1 },
            Kernel::GlobalSum,
        ] {
            assert_eq!(Kernel::parse_name(&k.slug(), Scale::Quick), Some(k));
        }
        // The two vocabularies — what the spec parser admits and what
        // materialization understands — must agree.
        for name in [
            "sendrecv",
            "sendrecv-i2",
            "broadcast",
            "ring",
            "ring-x9",
            "globalsum",
            "fft",
            "jpeg",
            "montecarlo",
            "sorting",
            "",
            "warp",
            "sendrecv-i",
            "sendrecv-i0",
            "ring-i2",
            "ringx2",
            "montecarlo-quick",
            "sendrecv-i+5",
        ] {
            assert_eq!(
                is_campaign_kernel(name),
                Kernel::parse_name(name, Scale::Quick).is_some(),
                "vocabulary drift on '{name}'"
            );
        }
    }

    #[test]
    fn kernel_units() {
        assert_eq!(Kernel::Broadcast.unit(), "ms");
        assert_eq!(
            Kernel::App {
                app: AplApp::Fft,
                scale: Scale::Paper
            }
            .unit(),
            "s"
        );
    }
}
