//! The content-addressed campaign results cache.
//!
//! The simulator is deterministic: a scenario's record is a pure
//! function of (a) the scenario itself, (b) the registered model specs
//! it references, and (c) the code that interprets them. The cache
//! exploits that by addressing every [`ScenarioRecord`] with a digest
//! over exactly those three inputs — see [`scenario_digest`] — so
//! `pdceval run` executes only the points whose digest has never been
//! seen and splices cached records back in deterministic grid order.
//! A warm store is **byte-identical** to the cold store that populated
//! the cache: each entry pins the provenance
//! ([`crate::store::RecordProvenance`]) of the run that computed it.
//!
//! # Invalidation
//!
//! Anything that could change a result changes the digest:
//!
//! * the scenario key (kernel + parameters, tool, platform + topology
//!   mix, nprocs, size, perturbation + seed) and its repetition count;
//! * the canonical stanza rendering of the tool, platform and
//!   perturbation specs the scenario references (editing any observable
//!   spec field — a latency, a port rule, a loss rate — re-keys every
//!   scenario using it, and *only* those);
//! * the code fingerprint: an FNV-1a hash of the running executable
//!   ([`code_fingerprint`]), so a rebuild — even from a dirty tree the
//!   git SHA cannot see — starts a fresh bucket.
//!
//! # Disk layout
//!
//! ```text
//! <dir>/MANIFEST.json            {"version": 1, "generation": N}
//! <dir>/<fingerprint>.jsonl      one bucket per code fingerprint
//! ```
//!
//! Buckets are append-only JSONL (flat objects, same dialect as the
//! results store); duplicate digests resolve last-wins at load. The
//! manifest's generation counts cache-writing runs; entries are stamped
//! with the generation that wrote them, which is what `gc --keep N`
//! prunes against. Cache hits never refresh an entry's generation.
//!
//! Traced runs (`--trace-dir`) bypass the cache entirely: a hit cannot
//! re-produce trace files, and counter-bearing stores would otherwise
//! lose their counter fields on warm runs.

use crate::json::{escape, parse_object, Json};
use crate::runner::{run_campaign_with, CampaignOptions, RecordStatus, RepStats, ScenarioRecord};
use crate::scenario::Scenario;
use crate::store::{Appender, RecordProvenance, StoreMeta};
use pdceval_mpt::hash::{fnv1a_64, hex16, Fnv64};
use pdceval_mpt::ModelRegistry;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, OnceLock};

/// Default cache directory used by the CLI.
pub const DEFAULT_CACHE_DIR: &str = "target/campaign/cache";

/// Cache format version stamped into the manifest.
const CACHE_VERSION: u64 = 1;

/// The manifest file name.
const MANIFEST: &str = "MANIFEST.json";

static FINGERPRINT: OnceLock<u64> = OnceLock::new();

/// The running executable's content fingerprint, computed **once per
/// invocation** (hashing a multi-megabyte binary per scenario would
/// dwarf the cache's savings) and shared by every digest.
///
/// Hashing the binary itself — rather than trusting the git SHA — means
/// a rebuild from a dirty tree invalidates correctly: same SHA,
/// different code, different bucket. When the executable cannot be
/// read back (some exotic deployments), the git SHA stands in; failing
/// that, a constant (the cache then only distinguishes specs and
/// scenarios, never code — still sound within one build, stale across
/// rebuilds, which is why the fallback chain is ordered this way).
pub fn code_fingerprint() -> u64 {
    *FINGERPRINT.get_or_init(|| {
        let exe_hash = std::env::current_exe()
            .ok()
            .and_then(|p| std::fs::read(p).ok())
            .map(|bytes| fnv1a_64(&bytes));
        match exe_hash {
            Some(h) => h,
            None => fnv1a_64(
                crate::store::git_sha()
                    .unwrap_or_else(|| "unknown".to_string())
                    .as_bytes(),
            ),
        }
    })
}

/// The content digest addressing one scenario's record.
///
/// Mixes, as delimited fields: the scenario key, the repetition count
/// (the key deliberately ignores `reps`, but a 3-rep mean can differ
/// from a 1-rep mean in the last ulp), the content hashes of the tool,
/// platform and (when present) perturbation specs the scenario
/// references, and the code fingerprint. Registering *unrelated* specs
/// never re-keys a scenario — only edits to the specs it actually uses
/// do.
pub fn scenario_digest(sc: &Scenario) -> u64 {
    let reg = ModelRegistry::global();
    let mut h = Fnv64::new();
    h.write_str(&sc.key());
    h.write_delimited(&u64::from(sc.reps).to_le_bytes());
    h.write_delimited(&reg.tool_hash(sc.tool).to_le_bytes());
    h.write_delimited(&reg.platform_hash(sc.platform).to_le_bytes());
    if let Some(p) = &sc.perturb {
        h.write_delimited(&reg.perturb_hash(p.id).to_le_bytes());
    }
    h.write_delimited(&code_fingerprint().to_le_bytes());
    h.finish()
}

/// One cached result: everything needed to reconstruct the record
/// byte-for-byte given the scenario it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The scenario key (collision guard: a digest match with a
    /// different key is treated as a miss).
    pub key: String,
    /// Execution status.
    pub status: RecordStatus,
    /// Repetition statistics, for `ok` entries. Non-finite components
    /// round-trip through `null` exactly as the store renders them.
    pub stats: Option<RepStats>,
    /// Failure / unsupported detail, for non-`ok` entries.
    pub detail: Option<String>,
    /// Provenance of the run that computed the entry.
    pub provenance: RecordProvenance,
    /// Cache generation that wrote the entry.
    pub generation: u64,
}

impl CacheEntry {
    /// Reconstructs the full record for `sc` (which must be the
    /// scenario this entry was keyed from).
    pub fn to_record(&self, sc: &Scenario) -> ScenarioRecord {
        ScenarioRecord {
            scenario: *sc,
            status: self.status,
            stats: self.stats,
            detail: self.detail.clone(),
            counters: None,
            provenance: Some(self.provenance.clone()),
        }
    }
}

fn render_opt_num(out: &mut String, value: Option<f64>) {
    match value {
        Some(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        _ => out.push_str("null"),
    }
}

fn render_opt_str(out: &mut String, value: Option<&str>) {
    match value {
        Some(s) => {
            let _ = write!(out, "\"{}\"", escape(s));
        }
        None => out.push_str("null"),
    }
}

/// Renders one cache line (no trailing newline).
fn render_entry(digest: u64, e: &CacheEntry) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(
        out,
        "{{\"digest\": \"{}\", \"key\": \"{}\", \"status\": \"{}\"",
        hex16(digest),
        escape(&e.key),
        e.status.slug(),
    );
    out.push_str(", \"mean\": ");
    render_opt_num(&mut out, e.stats.map(|s| s.mean));
    out.push_str(", \"min\": ");
    render_opt_num(&mut out, e.stats.map(|s| s.min));
    out.push_str(", \"max\": ");
    render_opt_num(&mut out, e.stats.map(|s| s.max));
    out.push_str(", \"cv\": ");
    render_opt_num(&mut out, e.stats.map(|s| s.cv));
    out.push_str(", \"detail\": ");
    render_opt_str(&mut out, e.detail.as_deref());
    out.push_str(", \"git_sha\": ");
    render_opt_str(&mut out, e.provenance.git_sha.as_deref());
    out.push_str(", \"timestamp\": ");
    match e.provenance.timestamp {
        Some(t) => {
            let _ = write!(out, "{t}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ", \"generation\": {}}}", e.generation);
    out
}

/// Parses one cache line back into `(digest, entry)`.
fn parse_entry(line: &str) -> Result<(u64, CacheEntry), String> {
    let pairs = parse_object(line)?;
    let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let str_field = |k: &str| -> Result<String, String> {
        get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field '{k}'"))
    };
    let num_field = |k: &str| get(k).and_then(Json::as_f64);
    let digest =
        u64::from_str_radix(&str_field("digest")?, 16).map_err(|e| format!("bad digest: {e}"))?;
    let status = match str_field("status")?.as_str() {
        "ok" => RecordStatus::Ok,
        "unsupported" => RecordStatus::Unsupported,
        "error" => RecordStatus::Error,
        other => return Err(format!("unknown status '{other}'")),
    };
    // `ok` records always carry stats; null components were non-finite
    // values, which NaN re-renders as null — byte-stable either way.
    let stats = (status == RecordStatus::Ok).then(|| RepStats {
        mean: num_field("mean").unwrap_or(f64::NAN),
        min: num_field("min").unwrap_or(f64::NAN),
        max: num_field("max").unwrap_or(f64::NAN),
        cv: num_field("cv").unwrap_or(f64::NAN),
    });
    Ok((
        digest,
        CacheEntry {
            key: str_field("key")?,
            status,
            stats,
            detail: get("detail").and_then(Json::as_str).map(str::to_string),
            provenance: RecordProvenance {
                git_sha: get("git_sha").and_then(Json::as_str).map(str::to_string),
                timestamp: num_field("timestamp").map(|t| t as u64),
            },
            generation: num_field("generation").unwrap_or(0.0) as u64,
        },
    ))
}

/// Aggregate statistics over one bucket file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketStats {
    /// The bucket's code fingerprint (file stem).
    pub fingerprint: String,
    /// Total lines in the file (appends, including superseded ones).
    pub lines: usize,
    /// Distinct digests (live entries after last-wins dedup).
    pub live: usize,
    /// File size in bytes.
    pub bytes: u64,
    /// Whether this is the running binary's bucket.
    pub current: bool,
}

/// Aggregate statistics over a cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Manifest generation counter (cache-writing runs so far).
    pub generation: u64,
    /// Per-bucket breakdown, current bucket first.
    pub buckets: Vec<BucketStats>,
}

impl CacheStats {
    /// Total live entries across buckets.
    pub fn live(&self) -> usize {
        self.buckets.iter().map(|b| b.live).sum()
    }

    /// Total bytes across buckets.
    pub fn bytes(&self) -> u64 {
        self.buckets.iter().map(|b| b.bytes).sum()
    }

    /// Renders the stats as one flat JSON object (the `--json` output
    /// of `pdceval cache stats`, uploaded as a CI artifact).
    pub fn render_json(&self) -> String {
        let current = self.buckets.iter().find(|b| b.current);
        format!(
            "{{\"version\": {CACHE_VERSION}, \"generation\": {}, \"buckets\": {}, \
             \"entries\": {}, \"bytes\": {}, \"current_fingerprint\": \"{}\", \
             \"current_entries\": {}}}",
            self.generation,
            self.buckets.len(),
            self.live(),
            self.bytes(),
            hex16(code_fingerprint()),
            current.map(|b| b.live).unwrap_or(0),
        )
    }

    /// Renders the stats as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "generation {} | {} bucket(s) | {} live entr{} | {} byte(s)\n",
            self.generation,
            self.buckets.len(),
            self.live(),
            if self.live() == 1 { "y" } else { "ies" },
            self.bytes(),
        );
        for b in &self.buckets {
            let _ = writeln!(
                out,
                "  {}{}: {} live / {} line(s), {} byte(s)",
                b.fingerprint,
                if b.current { " (current)" } else { " (stale)" },
                b.live,
                b.lines,
                b.bytes,
            );
        }
        out
    }
}

/// What `gc` removed and kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Stale-fingerprint bucket files deleted.
    pub stale_buckets_removed: usize,
    /// Entries dropped from the current bucket (old generations plus
    /// superseded duplicate lines compacted away).
    pub entries_dropped: usize,
    /// Live entries kept in the current bucket.
    pub entries_kept: usize,
    /// Bytes reclaimed across the sweep and the compaction.
    pub bytes_reclaimed: u64,
}

/// The on-disk content-addressed cache, loaded for the current code
/// fingerprint's bucket.
#[derive(Debug)]
pub struct CampaignCache {
    dir: PathBuf,
    generation: u64,
    /// Set once this instance has bumped the manifest for its first
    /// write; hit-only runs never touch the generation counter.
    run_started: bool,
    entries: HashMap<u64, CacheEntry>,
    appender: Option<Appender>,
}

impl CampaignCache {
    /// Opens (creating if needed) the cache at `dir` and loads the
    /// current fingerprint's bucket.
    ///
    /// # Errors
    ///
    /// Returns a description of any I/O or format problem.
    pub fn open(dir: &Path) -> Result<CampaignCache, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        let generation = read_manifest(dir)?;
        let mut entries = HashMap::new();
        let bucket = bucket_path(dir, code_fingerprint());
        if bucket.exists() {
            let text = std::fs::read_to_string(&bucket)
                .map_err(|e| format!("cannot read {}: {e}", bucket.display()))?;
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                // Tolerate torn or foreign lines (a killed run's partial
                // append): a skipped line is just a future miss.
                if let Ok((digest, entry)) = parse_entry(line) {
                    entries.insert(digest, entry);
                }
            }
        }
        Ok(CampaignCache {
            dir: dir.to_path_buf(),
            generation,
            run_started: false,
            entries,
            appender: None,
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live entries loaded for the current fingerprint.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the current bucket holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The manifest's generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up the cached record for `sc`, reconstructed with its
    /// original provenance. Hits do not refresh the entry's generation.
    pub fn lookup(&self, sc: &Scenario) -> Option<ScenarioRecord> {
        let entry = self.entries.get(&scenario_digest(sc))?;
        // 64-bit digests make collisions vanishingly rare, not
        // impossible; the stored key breaks ties safely (miss).
        (entry.key == sc.key()).then(|| entry.to_record(sc))
    }

    /// Finds a cached record by scenario key alone (the `serve` `query`
    /// op). Key lookups cannot reconstruct the scenario coordinates, so
    /// the rendered store line is returned instead of a record.
    pub fn find_by_key(&self, key: &str) -> Option<&CacheEntry> {
        self.entries.values().find(|e| e.key == key)
    }

    /// Inserts one freshly executed record. The entry's provenance is
    /// the record's own (for re-inserts of cached records) or `meta`'s
    /// stamp; its generation is this run's.
    ///
    /// # Errors
    ///
    /// Returns a description of any I/O problem.
    pub fn insert(&mut self, record: &ScenarioRecord, meta: &StoreMeta) -> Result<(), String> {
        if !self.run_started {
            // First write of this invocation: this run gets its own
            // generation number, persisted before any entry references
            // it.
            self.generation += 1;
            write_manifest(&self.dir, self.generation)?;
            self.run_started = true;
        }
        let digest = scenario_digest(&record.scenario);
        let entry = CacheEntry {
            key: record.scenario.key(),
            status: record.status,
            stats: record.stats,
            detail: record.detail.clone(),
            provenance: record.provenance.clone().unwrap_or(RecordProvenance {
                git_sha: meta.git_sha.clone(),
                timestamp: meta.timestamp,
            }),
            generation: self.generation,
        };
        if self.appender.is_none() {
            self.appender = Some(
                Appender::open(&bucket_path(&self.dir, code_fingerprint()))
                    .map_err(|e| format!("cannot open cache bucket: {e}"))?,
            );
        }
        self.appender
            .as_mut()
            .expect("appender just opened")
            .append_line(&render_entry(digest, &entry))
            .map_err(|e| format!("cannot append cache entry: {e}"))?;
        self.entries.insert(digest, entry);
        Ok(())
    }

    /// Flushes buffered appends to disk.
    ///
    /// # Errors
    ///
    /// Returns a description of any I/O problem.
    pub fn flush(&mut self) -> Result<(), String> {
        if let Some(a) = self.appender.as_mut() {
            a.flush().map_err(|e| format!("cannot flush cache: {e}"))?;
        }
        Ok(())
    }

    /// Scans the cache directory for aggregate statistics.
    ///
    /// # Errors
    ///
    /// Returns a description of any I/O problem.
    pub fn stats(&self) -> Result<CacheStats, String> {
        let current = hex16(code_fingerprint());
        let mut buckets = Vec::new();
        for path in bucket_files(&self.dir)? {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string();
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let mut digests = std::collections::HashSet::new();
            let mut lines = 0usize;
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                lines += 1;
                if let Ok((d, _)) = parse_entry(line) {
                    digests.insert(d);
                }
            }
            buckets.push(BucketStats {
                current: stem == current,
                fingerprint: stem,
                lines,
                live: digests.len(),
                bytes: text.len() as u64,
            });
        }
        buckets.sort_by_key(|b| (!b.current, b.fingerprint.clone()));
        Ok(CacheStats {
            generation: self.generation,
            buckets,
        })
    }

    /// Garbage-collects the cache: deletes every stale-fingerprint
    /// bucket (a rebuild's old results can never hit again), and
    /// compacts the current bucket — dropping superseded duplicate
    /// lines, plus entries older than `keep` generations when given
    /// (`keep = Some(0)` keeps only the latest writing generation).
    ///
    /// # Errors
    ///
    /// Returns a description of any I/O problem.
    pub fn gc(&mut self, keep: Option<u64>) -> Result<GcReport, String> {
        self.appender = None; // close the bucket before rewriting it
        let mut report = GcReport::default();
        let current = bucket_path(&self.dir, code_fingerprint());
        for path in bucket_files(&self.dir)? {
            if path == current {
                continue;
            }
            report.bytes_reclaimed += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            std::fs::remove_file(&path)
                .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
            report.stale_buckets_removed += 1;
        }
        let before = std::fs::metadata(&current).map(|m| m.len()).unwrap_or(0);
        let lines_before = if current.exists() {
            std::fs::read_to_string(&current)
                .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count())
                .unwrap_or(0)
        } else {
            0
        };
        if let Some(keep) = keep {
            let floor = self.generation.saturating_sub(keep);
            self.entries.retain(|_, e| e.generation >= floor);
        }
        // Compact: rewrite the live map in digest order (deterministic
        // bytes for the CI `cmp` after gc).
        let mut live: Vec<(&u64, &CacheEntry)> = self.entries.iter().collect();
        live.sort_by_key(|(d, _)| **d);
        let mut text = String::new();
        for (d, e) in &live {
            text.push_str(&render_entry(**d, e));
            text.push('\n');
        }
        if current.exists() || !text.is_empty() {
            std::fs::write(&current, &text)
                .map_err(|e| format!("cannot rewrite {}: {e}", current.display()))?;
        }
        report.entries_kept = live.len();
        report.entries_dropped = lines_before.saturating_sub(live.len());
        report.bytes_reclaimed += before.saturating_sub(text.len() as u64);
        Ok(report)
    }

    /// Deletes every bucket and the manifest, returning the number of
    /// files removed.
    ///
    /// # Errors
    ///
    /// Returns a description of any I/O problem.
    pub fn clear(&mut self) -> Result<usize, String> {
        self.appender = None;
        let mut removed = 0usize;
        for path in bucket_files(&self.dir)? {
            std::fs::remove_file(&path)
                .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
            removed += 1;
        }
        let manifest = self.dir.join(MANIFEST);
        if manifest.exists() {
            std::fs::remove_file(&manifest)
                .map_err(|e| format!("cannot remove {}: {e}", manifest.display()))?;
            removed += 1;
        }
        self.entries.clear();
        self.generation = 0;
        self.run_started = false;
        Ok(removed)
    }
}

fn bucket_path(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("{}.jsonl", hex16(fingerprint)))
}

fn bucket_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(format!("cannot read cache dir {}: {e}", dir.display())),
    };
    for entry in rd {
        let entry = entry.map_err(|e| format!("cannot read cache dir: {e}"))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("jsonl") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn read_manifest(dir: &Path) -> Result<u64, String> {
    let path = dir.join(MANIFEST);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let pairs = parse_object(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
    let get = |k: &str| {
        pairs
            .iter()
            .find(|(key, _)| key == k)
            .and_then(|(_, v)| v.as_f64())
    };
    let version = get("version").unwrap_or(0.0) as u64;
    if version != CACHE_VERSION {
        return Err(format!(
            "{}: cache format version {version} (this build expects {CACHE_VERSION}) — run \
             `pdceval cache clear`",
            path.display()
        ));
    }
    Ok(get("generation").unwrap_or(0.0) as u64)
}

fn write_manifest(dir: &Path, generation: u64) -> Result<(), String> {
    let path = dir.join(MANIFEST);
    std::fs::write(
        &path,
        format!("{{\"version\": {CACHE_VERSION}, \"generation\": {generation}}}\n"),
    )
    .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Hit/miss accounting of one cached campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheReport {
    /// Scenarios served from the cache.
    pub hits: usize,
    /// Scenarios executed (and inserted).
    pub misses: usize,
}

/// [`run_campaign_with`] layered over the cache: looks up every
/// scenario, executes only the misses (in parallel, with `opts`
/// observability intact), inserts the fresh records, and splices cached
/// records back in deterministic grid order. The returned records are
/// byte-identical — via [`RecordProvenance`] pinning — to what a cold
/// run over the same grid would produce.
pub fn run_campaign_cached(
    scenarios: &[Scenario],
    workers: usize,
    opts: &CampaignOptions<'_>,
    cache: &mut CampaignCache,
    meta: &StoreMeta,
) -> (Vec<ScenarioRecord>, CacheReport) {
    let mut slots: Vec<Option<ScenarioRecord>> = scenarios.iter().map(|_| None).collect();
    let mut miss_idx = Vec::new();
    let mut miss_scenarios = Vec::new();
    for (i, sc) in scenarios.iter().enumerate() {
        match cache.lookup(sc) {
            Some(record) => slots[i] = Some(record),
            None => {
                miss_idx.push(i);
                miss_scenarios.push(*sc);
            }
        }
    }
    let report = CacheReport {
        hits: scenarios.len() - miss_idx.len(),
        misses: miss_idx.len(),
    };
    let executed = run_campaign_with(&miss_scenarios, workers, opts);
    for (i, record) in miss_idx.into_iter().zip(executed) {
        if let Err(e) = cache.insert(&record, meta) {
            eprintln!("warning: {e}");
        }
        slots[i] = Some(record);
    }
    if let Err(e) = cache.flush() {
        eprintln!("warning: {e}");
    }
    (
        slots
            .into_iter()
            .map(|s| s.expect("every slot is a hit or an executed miss"))
            .collect(),
        report,
    )
}

/// Per-digest single-flight deduplication for concurrent front ends.
///
/// When several `serve` connections request the same uncached scenario
/// simultaneously, exactly one (the leader) executes it; the rest block
/// on the flight and receive the leader's record. Distinct digests
/// never serialize against each other.
#[derive(Debug, Default)]
pub struct SingleFlight {
    inflight: Mutex<HashMap<u64, std::sync::Arc<Flight>>>,
}

#[derive(Debug, Default)]
struct Flight {
    result: Mutex<Option<ScenarioRecord>>,
    done: Condvar,
}

/// How a [`SingleFlight::run`] call obtained its record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// This call executed the scenario.
    Led,
    /// This call waited on another call's execution.
    Joined,
}

impl SingleFlight {
    /// A fresh deduplicator with no flights.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Runs `compute` for `digest` unless an identical flight is
    /// already in progress, in which case this call blocks and returns
    /// the leader's record.
    pub fn run(
        &self,
        digest: u64,
        compute: impl FnOnce() -> ScenarioRecord,
    ) -> (ScenarioRecord, FlightOutcome) {
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().expect("single-flight poisoned");
            match inflight.get(&digest) {
                Some(f) => (f.clone(), false),
                None => {
                    let f = std::sync::Arc::new(Flight::default());
                    inflight.insert(digest, f.clone());
                    (f, true)
                }
            }
        };
        if leader {
            let record = compute();
            *flight.result.lock().expect("flight poisoned") = Some(record.clone());
            flight.done.notify_all();
            self.inflight
                .lock()
                .expect("single-flight poisoned")
                .remove(&digest);
            (record, FlightOutcome::Led)
        } else {
            let mut result = flight.result.lock().expect("flight poisoned");
            while result.is_none() {
                result = flight.done.wait(result).expect("flight poisoned");
            }
            (
                result.clone().expect("flight resolved while held"),
                FlightOutcome::Joined,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ScenarioGrid;
    use crate::scenario::Kernel;
    use crate::store::render_jsonl;
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pdceval-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid() -> Vec<Scenario> {
        ScenarioGrid::new()
            .kernels([Kernel::Ring { shifts: 1 }, Kernel::Broadcast])
            .tools([ToolKind::P4, ToolKind::PVM])
            .platforms([Platform::SUN_ETHERNET])
            .nprocs([4])
            .sizes([0, 4096])
            .reps(2)
            .scenarios()
    }

    fn meta(tag: u64) -> StoreMeta {
        StoreMeta {
            git_sha: Some(format!("sha{tag:09}")),
            timestamp: Some(1_700_000_000 + tag),
            emit_counters: false,
        }
    }

    #[test]
    fn digests_are_per_scenario_and_collision_guarded() {
        let grid = small_grid();
        let digests: std::collections::HashSet<u64> = grid.iter().map(scenario_digest).collect();
        assert_eq!(
            digests.len(),
            grid.len(),
            "digest collision in a small grid"
        );
        // reps participates: same key, different digest.
        let mut more_reps = grid[0];
        more_reps.reps += 1;
        assert_eq!(more_reps.key(), grid[0].key());
        assert_ne!(scenario_digest(&more_reps), scenario_digest(&grid[0]));
    }

    #[test]
    fn entries_round_trip_through_their_line_rendering() {
        let entries = [
            CacheEntry {
                key: "ring-x1/p4/sun-eth/n4/s4096".to_string(),
                status: RecordStatus::Ok,
                stats: Some(RepStats {
                    mean: 3.25,
                    min: 3.25,
                    max: 3.25,
                    cv: 0.0,
                }),
                detail: None,
                provenance: RecordProvenance {
                    git_sha: Some("abc".to_string()),
                    timestamp: Some(1_700_000_000),
                },
                generation: 3,
            },
            CacheEntry {
                key: "globalsum/pvm/sun-eth/n4/s1000".to_string(),
                status: RecordStatus::Unsupported,
                stats: None,
                detail: Some("PVM does not support \"global sum\"".to_string()),
                provenance: RecordProvenance::default(),
                generation: 1,
            },
        ];
        for e in &entries {
            let line = render_entry(0xdead_beef, e);
            let (d, back) = parse_entry(&line).unwrap();
            assert_eq!(d, 0xdead_beef);
            assert_eq!(&back, e);
            // And the rendering is a fixpoint.
            assert_eq!(render_entry(d, &back), line);
        }
    }

    #[test]
    fn non_finite_stats_are_byte_stable_through_the_cache() {
        let e = CacheEntry {
            key: "k".to_string(),
            status: RecordStatus::Ok,
            stats: Some(RepStats {
                mean: f64::NAN,
                min: f64::INFINITY,
                max: 1.5,
                cv: f64::NAN,
            }),
            detail: None,
            provenance: RecordProvenance::default(),
            generation: 1,
        };
        let line = render_entry(7, &e);
        let (_, back) = parse_entry(&line).unwrap();
        // NaN != NaN, so compare via re-rendering.
        assert_eq!(render_entry(7, &back), line);
    }

    #[test]
    fn warm_runs_are_byte_identical_to_cold_runs() {
        let dir = temp_dir("warm");
        let grid = small_grid();
        let opts = CampaignOptions::default();

        let mut cache = CampaignCache::open(&dir).unwrap();
        let cold_meta = meta(1);
        let (cold, r) = run_campaign_cached(&grid, 2, &opts, &mut cache, &cold_meta);
        assert_eq!((r.hits, r.misses), (0, grid.len()));
        let cold_store = render_jsonl(&cold, &cold_meta);
        drop(cache);

        // Fresh open, different store stamp: all hits, identical bytes.
        let mut cache = CampaignCache::open(&dir).unwrap();
        let warm_meta = meta(2);
        let (warm, r) = run_campaign_cached(&grid, 2, &opts, &mut cache, &warm_meta);
        assert_eq!((r.hits, r.misses), (grid.len(), 0));
        assert_eq!(render_jsonl(&warm, &warm_meta), cold_store);
        // Hit-only runs never bump the generation.
        assert_eq!(cache.generation(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mixed_runs_splice_hits_and_misses_in_grid_order() {
        let dir = temp_dir("mixed");
        let grid = small_grid();
        let opts = CampaignOptions::default();
        let cold_meta = meta(1);

        // Warm only half the grid (every other point).
        let half: Vec<Scenario> = grid.iter().copied().step_by(2).collect();
        let mut cache = CampaignCache::open(&dir).unwrap();
        let (_, r) = run_campaign_cached(&half, 1, &opts, &mut cache, &cold_meta);
        assert_eq!(r.misses, half.len());
        drop(cache);

        let mut cache = CampaignCache::open(&dir).unwrap();
        let mixed_meta = meta(2);
        let (mixed, r) = run_campaign_cached(&grid, 2, &opts, &mut cache, &mixed_meta);
        assert_eq!((r.hits, r.misses), (half.len(), grid.len() - half.len()));
        // Order and values match a cold run exactly; bytes differ only
        // where fresh records take the new store stamp — which is what
        // a cold run under `mixed_meta` would also produce, except the
        // spliced hits carry their original provenance.
        let direct = crate::runner::run_campaign(&grid, 2);
        for (m, d) in mixed.iter().zip(&direct) {
            assert_eq!(m.scenario, d.scenario);
            assert_eq!(m.status, d.status);
            assert_eq!(m.stats, d.stats);
        }
        // A further full warm run is byte-stable against itself.
        drop(cache);
        let mut cache = CampaignCache::open(&dir).unwrap();
        let (warm, r) = run_campaign_cached(&grid, 1, &opts, &mut cache, &meta(3));
        assert_eq!((r.hits, r.misses), (grid.len(), 0));
        assert_eq!(
            render_jsonl(&warm, &meta(4)),
            render_jsonl(&mixed, &mixed_meta)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_sweeps_stale_buckets_and_compacts_generations() {
        let dir = temp_dir("gc");
        let grid = small_grid();
        let mut cache = CampaignCache::open(&dir).unwrap();
        let (_, _) =
            run_campaign_cached(&grid, 1, &CampaignOptions::default(), &mut cache, &meta(1));
        // Plant a stale bucket from a fictitious old build.
        let stale = bucket_path(&dir, 0x1234_5678_9abc_def0);
        std::fs::write(&stale, "{\"digest\": \"00000000000000aa\", \"key\": \"old\", \"status\": \"ok\", \"mean\": 1, \"min\": 1, \"max\": 1, \"cv\": 0, \"detail\": null, \"git_sha\": null, \"timestamp\": null, \"generation\": 1}\n").unwrap();
        let report = cache.gc(None).unwrap();
        assert_eq!(report.stale_buckets_removed, 1);
        assert!(!stale.exists());
        assert_eq!(report.entries_kept, grid.len());
        // Everything still hits after gc.
        drop(cache);
        let cache = CampaignCache::open(&dir).unwrap();
        assert_eq!(cache.len(), grid.len());
        assert!(grid.iter().all(|sc| cache.lookup(sc).is_some()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keep_drops_old_generations() {
        let dir = temp_dir("gc-keep");
        let grid = small_grid();
        let (old_half, new_half) = grid.split_at(grid.len() / 2);
        let opts = CampaignOptions::default();
        // Generation 1 writes the first half; generation 2 the second.
        let mut cache = CampaignCache::open(&dir).unwrap();
        run_campaign_cached(old_half, 1, &opts, &mut cache, &meta(1));
        drop(cache);
        let mut cache = CampaignCache::open(&dir).unwrap();
        run_campaign_cached(new_half, 1, &opts, &mut cache, &meta(2));
        assert_eq!(cache.generation(), 2);
        let report = cache.gc(Some(0)).unwrap();
        assert_eq!(report.entries_dropped, old_half.len());
        assert_eq!(report.entries_kept, new_half.len());
        assert!(new_half.iter().all(|sc| cache.lookup(sc).is_some()));
        assert!(old_half.iter().all(|sc| cache.lookup(sc).is_none()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_everything() {
        let dir = temp_dir("clear");
        let grid = small_grid();
        let mut cache = CampaignCache::open(&dir).unwrap();
        run_campaign_cached(&grid, 1, &CampaignOptions::default(), &mut cache, &meta(1));
        cache.flush().unwrap();
        let removed = cache.clear().unwrap();
        assert_eq!(removed, 2, "one bucket + one manifest");
        assert!(cache.is_empty());
        assert_eq!(cache.generation(), 0);
        assert_eq!(bucket_files(&dir).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_flight_executes_once_per_digest() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let flight = SingleFlight::new();
        let computes = AtomicUsize::new(0);
        let record = crate::runner::run_campaign(&small_grid()[..1], 1).remove(0);
        let outcomes: Vec<FlightOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (flight, computes, record) = (&flight, &computes, &record);
                    scope.spawn(move || {
                        let (r, outcome) = flight.run(42, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for
                            // followers to pile up.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            record.clone()
                        });
                        assert_eq!(&r, record);
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // At least one led; nobody computed twice concurrently. (After
        // a flight resolves, a *later* call may lead again — that is a
        // cache-layer concern, not single-flight's.)
        let led = outcomes
            .iter()
            .filter(|o| **o == FlightOutcome::Led)
            .count();
        assert_eq!(led, computes.load(Ordering::SeqCst));
        assert!(led >= 1);
    }
}
