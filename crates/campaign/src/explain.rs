//! Virtual-time breakdowns of traced scenarios: where did the time go?
//!
//! A traced campaign run (`pdceval run --trace-dir DIR`) leaves two
//! files per completed scenario in `DIR`, named after the scenario key
//! with `/` flattened to `_`:
//!
//! * `<key>.trace.json` — Chrome trace-event JSON of the per-rank
//!   timelines, loadable in Perfetto / `chrome://tracing`;
//! * `<key>.explain.jsonl` — a flat JSONL summary: one scenario line
//!   (elapsed, critical-path rank, engine counters, fault tally), one
//!   line per rank (compute / blocked / network split), one line per
//!   link class (bytes, fragments).
//!
//! `pdceval explain <key>` renders the summary as text and, for a
//! perturbed key, diffs it against its clean twin's summary when that
//! file exists — answering "what did the chaos actually cost".

use crate::diff::clean_key_of;
use crate::exec::RunCapture;
use crate::json::{escape, parse_object, Json};
use crate::runner::ScenarioRecord;
use pdceval_simnet::trace::LinkClassTotal;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Flattens a scenario key into a filename stem (`/` → `_`).
pub fn sanitize_key(key: &str) -> String {
    key.replace('/', "_")
}

/// The trace-file path pair for one scenario key under `dir`.
pub fn trace_paths(dir: &Path, key: &str) -> (PathBuf, PathBuf) {
    let stem = sanitize_key(key);
    (
        dir.join(format!("{stem}.trace.json")),
        dir.join(format!("{stem}.explain.jsonl")),
    )
}

/// Writes a completed scenario's Chrome trace and explain summary into
/// `dir`, creating it if needed. A capture without a sink (tracing was
/// off) writes nothing.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_scenario_trace(
    dir: &Path,
    record: &ScenarioRecord,
    cap: &RunCapture,
) -> std::io::Result<()> {
    let Some(sink) = &cap.sink else { return Ok(()) };
    let key = record.scenario.key();
    std::fs::create_dir_all(dir)?;
    let (trace_path, explain_path) = trace_paths(dir, &key);
    let sink = sink.lock().expect("trace sink poisoned");
    std::fs::write(&trace_path, sink.render_chrome(&key))?;
    let summary = sink.summary(&cap.rank_finish);
    let mut out = String::with_capacity(1024);
    let elapsed_us = cap
        .rank_finish
        .iter()
        .map(|d| d.as_micros_f64())
        .fold(0.0, f64::max);
    let critical = cap
        .rank_finish
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finish times comparable"))
        .map(|(r, _)| r);
    let c = &cap.counters;
    let _ = write!(
        out,
        "{{\"key\": \"{}\", \"status\": \"{}\", \"elapsed_us\": {}, \"critical_rank\": ",
        escape(&key),
        record.status.slug(),
        fmt_f64(elapsed_us),
    );
    match critical {
        Some(r) => {
            let _ = write!(out, "{r}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ", \"events_scheduled\": {}, \"peak_queue_depth\": {}, \"direct_handoffs\": {}, \
         \"inline_resumes\": {}, \"mailbox_fast_path_hits\": {}, \"messages_delivered\": {}, \
         \"wire_bytes\": {}, \"retransmits\": {}, \"jitter_events\": {}, \"jitter_us\": {}, \
         \"stragglers\": {}",
        c.events_scheduled,
        c.peak_queue_depth,
        c.direct_handoffs,
        c.inline_resumes,
        c.mailbox_fast_path_hits,
        c.messages_delivered,
        c.wire_bytes,
        summary.retransmits,
        summary.jitter_events,
        fmt_f64(summary.jitter_total.as_micros_f64()),
        count_stragglers(&sink),
    );
    match summary.crash {
        Some((rank, at)) => {
            let _ = write!(
                out,
                ", \"crash_rank\": {rank}, \"crash_us\": {}",
                fmt_f64((at - pdceval_simnet::time::SimTime::ZERO).as_micros_f64())
            );
        }
        None => out.push_str(", \"crash_rank\": null, \"crash_us\": null"),
    }
    out.push_str("}\n");
    for r in &summary.ranks {
        let _ = writeln!(
            out,
            "{{\"rank\": {}, \"compute_us\": {}, \"blocked_us\": {}, \"network_us\": {}, \
             \"finish_us\": {}}}",
            r.rank,
            fmt_f64(r.compute.as_micros_f64()),
            fmt_f64(r.blocked.as_micros_f64()),
            fmt_f64(r.network.as_micros_f64()),
            fmt_f64(r.finish.as_micros_f64()),
        );
    }
    for l in &summary.links {
        let _ = writeln!(
            out,
            "{{\"link\": \"{}\", \"bytes\": {}, \"fragments\": {}}}",
            escape(&l.class),
            l.bytes,
            l.fragments
        );
    }
    std::fs::write(&explain_path, out)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn count_stragglers(sink: &pdceval_simnet::trace::TraceSink) -> usize {
    (0..sink.nranks())
        .filter(|&r| {
            sink.rank_events(r)
                .iter()
                .any(|e| matches!(e, pdceval_simnet::trace::TraceEvent::Straggler { .. }))
        })
        .count()
}

/// One rank's virtual-time split as read back from an explain summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRank {
    /// Rank index.
    pub rank: usize,
    /// Time inside compute spans (µs).
    pub compute_us: f64,
    /// Time blocked in receive waits (µs).
    pub blocked_us: f64,
    /// Time inside send spans (µs).
    pub network_us: f64,
    /// Completion time (µs).
    pub finish_us: f64,
}

/// A parsed `<key>.explain.jsonl` file.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// The scenario key.
    pub key: String,
    /// Record status slug.
    pub status: String,
    /// Run completion time (µs, virtual).
    pub elapsed_us: f64,
    /// The rank that finished last.
    pub critical_rank: Option<usize>,
    /// Events pushed onto the engine's queue.
    pub events_scheduled: u64,
    /// High-water mark of the event queue.
    pub peak_queue_depth: u64,
    /// Direct scheduler baton handoffs.
    pub direct_handoffs: u64,
    /// Wakeups resolved without a baton transfer.
    pub inline_resumes: u64,
    /// Deliveries that matched a waiting receiver immediately.
    pub mailbox_fast_path_hits: u64,
    /// Messages delivered end-to-end.
    pub messages_delivered: u64,
    /// Payload bytes crossing links.
    pub wire_bytes: u64,
    /// Injected retransmit attempts.
    pub retransmits: u64,
    /// Injected jitter events.
    pub jitter_events: u64,
    /// Total injected jitter (µs).
    pub jitter_us: f64,
    /// Ranks running under a straggler factor.
    pub stragglers: u64,
    /// Injected crash, as `(rank, at_us)`.
    pub crash: Option<(usize, f64)>,
    /// Per-rank splits, by rank.
    pub ranks: Vec<ExplainRank>,
    /// Per-link-class traffic totals.
    pub links: Vec<LinkClassTotal>,
}

/// Parses an explain summary back from its JSONL text.
///
/// # Errors
///
/// Returns a description of the first malformed or missing piece.
pub fn parse_explain(text: &str) -> Result<ExplainReport, String> {
    let mut report: Option<ExplainReport> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let get = |k: &str| pairs.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let num = |k: &str| get(k).and_then(Json::as_f64);
        let int = |k: &str| num(k).map(|v| v as u64);
        if let Some(key) = get("key").and_then(Json::as_str) {
            report = Some(ExplainReport {
                key: key.to_string(),
                status: get("status")
                    .and_then(Json::as_str)
                    .unwrap_or("ok")
                    .to_string(),
                elapsed_us: num("elapsed_us").unwrap_or(0.0),
                critical_rank: int("critical_rank").map(|r| r as usize),
                events_scheduled: int("events_scheduled").unwrap_or(0),
                peak_queue_depth: int("peak_queue_depth").unwrap_or(0),
                direct_handoffs: int("direct_handoffs").unwrap_or(0),
                inline_resumes: int("inline_resumes").unwrap_or(0),
                mailbox_fast_path_hits: int("mailbox_fast_path_hits").unwrap_or(0),
                messages_delivered: int("messages_delivered").unwrap_or(0),
                wire_bytes: int("wire_bytes").unwrap_or(0),
                retransmits: int("retransmits").unwrap_or(0),
                jitter_events: int("jitter_events").unwrap_or(0),
                jitter_us: num("jitter_us").unwrap_or(0.0),
                stragglers: int("stragglers").unwrap_or(0),
                crash: int("crash_rank").map(|r| (r as usize, num("crash_us").unwrap_or(0.0))),
                ranks: Vec::new(),
                links: Vec::new(),
            });
        } else if let Some(rank) = int("rank") {
            let r = report
                .as_mut()
                .ok_or_else(|| format!("line {}: rank line before scenario line", lineno + 1))?;
            r.ranks.push(ExplainRank {
                rank: rank as usize,
                compute_us: num("compute_us").unwrap_or(0.0),
                blocked_us: num("blocked_us").unwrap_or(0.0),
                network_us: num("network_us").unwrap_or(0.0),
                finish_us: num("finish_us").unwrap_or(0.0),
            });
        } else if let Some(link) = get("link").and_then(Json::as_str) {
            let r = report
                .as_mut()
                .ok_or_else(|| format!("line {}: link line before scenario line", lineno + 1))?;
            r.links.push(LinkClassTotal {
                class: link.to_string(),
                bytes: int("bytes").unwrap_or(0),
                fragments: int("fragments").unwrap_or(0),
            });
        } else {
            return Err(format!("line {}: unrecognized explain line", lineno + 1));
        }
    }
    report.ok_or_else(|| "no scenario line in explain file".to_string())
}

/// Loads and parses `<dir>/<key>.explain.jsonl`.
///
/// # Errors
///
/// Returns the I/O or parse problem as a string.
pub fn load_explain(dir: &Path, key: &str) -> Result<ExplainReport, String> {
    let (_, path) = trace_paths(dir, key);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_explain(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn ms(us: f64) -> String {
    format!("{:.3} ms", us / 1000.0)
}

fn pct(part: f64, whole: f64) -> String {
    if whole > 0.0 {
        format!("{:.0}%", 100.0 * part / whole)
    } else {
        "-".to_string()
    }
}

/// Renders a report — and optionally its clean twin for comparison —
/// as the text breakdown `pdceval explain` prints.
pub fn render_explain_text(report: &ExplainReport, clean: Option<&ExplainReport>) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "{}  (status {})", report.key, report.status);
    match report.critical_rank {
        Some(r) => {
            let _ = writeln!(
                out,
                "  elapsed {}  (critical path: rank {r})",
                ms(report.elapsed_us)
            );
        }
        None => {
            let _ = writeln!(out, "  elapsed {}", ms(report.elapsed_us));
        }
    }
    if !report.ranks.is_empty() {
        let _ = writeln!(out, "  per-rank virtual time:");
        for r in &report.ranks {
            let f = r.finish_us;
            let _ = writeln!(
                out,
                "    rank {:>2}: compute {} ({}) | blocked {} ({}) | network {} ({})  [finish {}]",
                r.rank,
                ms(r.compute_us),
                pct(r.compute_us, f),
                ms(r.blocked_us),
                pct(r.blocked_us, f),
                ms(r.network_us),
                pct(r.network_us, f),
                ms(f),
            );
        }
    }
    if !report.links.is_empty() {
        let _ = writeln!(out, "  link traffic (top classes by bytes):");
        let mut links = report.links.clone();
        links.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.class.cmp(&b.class)));
        for l in &links {
            let _ = writeln!(
                out,
                "    {:<12} {:>12} bytes in {} fragments",
                l.class, l.bytes, l.fragments
            );
        }
    }
    let crashes = usize::from(report.crash.is_some());
    let _ = writeln!(
        out,
        "  injected faults: {} retransmits, {} jitter events (+{}), {} straggler ranks, {} crashes",
        report.retransmits,
        report.jitter_events,
        ms(report.jitter_us),
        report.stragglers,
        crashes,
    );
    if let Some((rank, at)) = report.crash {
        let _ = writeln!(out, "    rank {rank} crashed at {}", ms(at));
    }
    let _ = writeln!(
        out,
        "  engine: {} events scheduled (peak queue {}), {} direct handoffs, {} inline resumes, \
         {} mailbox fast-path hits, {} messages ({} wire bytes)",
        report.events_scheduled,
        report.peak_queue_depth,
        report.direct_handoffs,
        report.inline_resumes,
        report.mailbox_fast_path_hits,
        report.messages_delivered,
        report.wire_bytes,
    );
    if let Some(c) = clean {
        let _ = writeln!(out, "  vs clean {}:", c.key);
        let ratio = if c.elapsed_us > 0.0 {
            format!("{:.2}x", report.elapsed_us / c.elapsed_us)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "    elapsed {} vs {}  ({ratio})",
            ms(report.elapsed_us),
            ms(c.elapsed_us)
        );
        let sum = |rs: &[ExplainRank], f: fn(&ExplainRank) -> f64| rs.iter().map(f).sum::<f64>();
        let d_blocked = sum(&report.ranks, |r| r.blocked_us) - sum(&c.ranks, |r| r.blocked_us);
        let d_network = sum(&report.ranks, |r| r.network_us) - sum(&c.ranks, |r| r.network_us);
        let _ = writeln!(
            out,
            "    blocked {:+.3} ms, network {:+.3} ms across ranks",
            d_blocked / 1000.0,
            d_network / 1000.0
        );
        let _ = writeln!(
            out,
            "    faults {:+} retransmits, {:+} jitter events",
            report.retransmits as i64 - c.retransmits as i64,
            report.jitter_events as i64 - c.jitter_events as i64,
        );
    }
    out
}

/// Loads `key`'s explain report from `dir` and renders the text
/// breakdown. For a perturbed key the clean twin
/// ([`clean_key_of`]) is loaded too, when its summary exists,
/// and the report is diffed against it.
///
/// # Errors
///
/// Returns the problem as a string when `key`'s summary is missing or
/// malformed (a missing clean twin is not an error).
pub fn explain_key(dir: &Path, key: &str) -> Result<String, String> {
    let report = load_explain(dir, key)?;
    let clean = key
        .contains("/seed")
        .then(|| clean_key_of(key))
        .filter(|ck| *ck != key)
        .and_then(|ck| load_explain(dir, ck).ok());
    Ok(render_explain_text(&report, clean.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_campaign_with, CampaignOptions, RecordStatus};
    use crate::scenario::{Kernel, Scenario};
    use pdceval_mpt::ToolKind;
    use pdceval_simnet::platform::Platform;

    fn scenario(perturbed: bool) -> Scenario {
        let perturb = perturbed.then(|| {
            use pdceval_simnet::perturb::{register_perturb, PerturbSpec};
            let mut spec = PerturbSpec::quiet("explain-test-jitter");
            spec.jitter = 0.5;
            spec.congestion = 0.5;
            let id = register_perturb(spec).unwrap_or_else(|_| {
                pdceval_simnet::perturb::find_perturb("explain-test-jitter").unwrap()
            });
            crate::scenario::PerturbRun { id, seed: 3 }
        });
        Scenario {
            kernel: Kernel::Ring { shifts: 2 },
            tool: ToolKind::P4,
            platform: Platform::SUN_ETHERNET,
            nprocs: 4,
            size: 4096,
            reps: 1,
            perturb,
        }
    }

    #[test]
    fn traced_campaign_writes_parseable_summaries_and_explains_them() {
        let dir = std::env::temp_dir().join("pdceval-explain-test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenarios = vec![scenario(false), scenario(true)];
        let opts = CampaignOptions {
            trace_dir: Some(&dir),
            on_scenario_done: None,
        };
        let records = run_campaign_with(&scenarios, 1, &opts);
        assert!(records.iter().all(|r| r.status == RecordStatus::Ok));

        let clean_key = scenarios[0].key();
        let chaos_key = scenarios[1].key();
        // Both trace files exist and look like Chrome traces.
        for key in [&clean_key, &chaos_key] {
            let (trace, _) = trace_paths(&dir, key);
            let text = std::fs::read_to_string(&trace).unwrap();
            assert!(text.starts_with("{\"traceEvents\""), "{key}");
        }
        let report = load_explain(&dir, &chaos_key).unwrap();
        assert_eq!(report.key, chaos_key);
        assert_eq!(report.ranks.len(), 4);
        assert!(!report.links.is_empty());
        assert!(report.jitter_events > 0, "chaos run should record jitter");

        // The perturbed key auto-diffs against its clean twin.
        let text = explain_key(&dir, &chaos_key).unwrap();
        assert!(text.contains("vs clean"), "{text}");
        assert!(text.contains("per-rank virtual time"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_round_trips_through_text() {
        let report = ExplainReport {
            key: "k/t/p/n2/s1".to_string(),
            status: "ok".to_string(),
            elapsed_us: 1500.0,
            critical_rank: Some(1),
            events_scheduled: 10,
            peak_queue_depth: 3,
            direct_handoffs: 4,
            inline_resumes: 5,
            mailbox_fast_path_hits: 2,
            messages_delivered: 6,
            wire_bytes: 4096,
            retransmits: 1,
            jitter_events: 2,
            jitter_us: 30.0,
            stragglers: 0,
            crash: Some((1, 900.0)),
            ranks: vec![ExplainRank {
                rank: 0,
                compute_us: 100.0,
                blocked_us: 200.0,
                network_us: 300.0,
                finish_us: 1500.0,
            }],
            links: vec![LinkClassTotal {
                class: "ether".to_string(),
                bytes: 4096,
                fragments: 4,
            }],
        };
        let text = render_explain_text(&report, None);
        assert!(text.contains("rank 1 crashed"), "{text}");
        assert!(text.contains("ether"), "{text}");
    }

    #[test]
    fn sanitized_keys_are_filesystem_safe() {
        assert_eq!(
            sanitize_key("ring/p4/sun-eth/n4/s4096/chaos/seed1"),
            "ring_p4_sun-eth_n4_s4096_chaos_seed1"
        );
    }
}
