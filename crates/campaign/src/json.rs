//! Minimal JSON support for the results store.
//!
//! The build environment has no crates.io access, so there is no serde;
//! campaign records are flat JSON objects (strings, numbers, booleans,
//! null — no nesting), which this module emits and parses directly.

use std::fmt::Write as _;

/// A JSON scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
}

impl Json {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object (`{"k": v, ...}`) into its key/value
/// pairs, preserving order.
///
/// # Errors
///
/// Returns a description of the first syntax problem (including nested
/// objects or arrays, which the store never produces).
pub fn parse_object(line: &str) -> Result<Vec<(String, Json)>, String> {
    let mut p = Parser {
        chars: line.char_indices().peekable(),
        src: line,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.eat('}') {
        p.expect_end()?;
        return Ok(pairs);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.parse_value()?;
        pairs.push((key, value));
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect('}')?;
        p.expect_end()?;
        return Ok(pairs);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            None => Ok(()),
            Some((i, c)) => Err(format!("trailing content at byte {i}: '{c}'")),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let code = self.hex4()?;
                        match code {
                            // High surrogate: must be followed by an
                            // escaped low surrogate; the pair combines
                            // into one supplementary-plane char.
                            0xD800..=0xDBFF => {
                                if !(self.eat('\\') && self.eat('u')) {
                                    return Err(format!(
                                        "unpaired high surrogate \\u{code:04x} (expected a \
                                         \\uDC00-\\uDFFF low surrogate escape)"
                                    ));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "unpaired high surrogate \\u{code:04x} (followed by \
                                         \\u{low:04x}, not a low surrogate)"
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .expect("surrogate pairs combine to valid chars"),
                                );
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "unpaired low surrogate \\u{code:04x} (a low surrogate \
                                     must follow a \\uD800-\\uDBFF high surrogate)"
                                ))
                            }
                            _ => out.push(
                                char::from_u32(code)
                                    .expect("non-surrogate BMP code points are chars"),
                            ),
                        }
                    }
                    Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                    None => return Err("truncated escape".to_string()),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    /// The four hex digits of a `\uXXXX` escape (the `\u` already
    /// consumed).
    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let (i, c) = self
                .chars
                .next()
                .ok_or_else(|| "truncated \\u escape".to_string())?;
            code = code * 16
                + c.to_digit(16)
                    .ok_or_else(|| format!("bad \\u digit at byte {i}"))?;
        }
        Ok(code)
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(Json::Str(self.parse_string()?)),
            Some((_, 't')) => self.parse_word("true", Json::Bool(true)),
            Some((_, 'f')) => self.parse_word("false", Json::Bool(false)),
            Some((_, 'n')) => self.parse_word("null", Json::Null),
            Some((_, c)) if *c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some((i, c)) => Err(format!("unsupported value starting with '{c}' at byte {i}")),
            None => Err("expected a value, found end of input".to_string()),
        }
    }

    fn parse_word(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("malformed literal (expected '{word}')")),
            }
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.chars.peek().map(|(i, _)| *i).unwrap_or(0);
        let mut end = start;
        while let Some((i, c)) = self.chars.peek().copied() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.src[start..end]
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{}': {e}", &self.src[start..end]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_flat_objects() {
        let line = r#"{"key": "a/b", "n": 4, "mean": 1.25, "ok": true, "sha": null}"#;
        let pairs = parse_object(line).unwrap();
        assert_eq!(pairs[0], ("key".to_string(), Json::Str("a/b".to_string())));
        assert_eq!(pairs[1].1.as_f64(), Some(4.0));
        assert_eq!(pairs[2].1.as_f64(), Some(1.25));
        assert_eq!(pairs[3].1, Json::Bool(true));
        assert_eq!(pairs[4].1, Json::Null);
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let line = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let pairs = parse_object(&line).unwrap();
        assert_eq!(pairs[0].1.as_str(), Some(nasty));
    }

    #[test]
    fn surrogate_pair_escapes_combine() {
        // "😀" (U+1F600) escaped the way other JSON writers emit it.
        let pairs = parse_object(r#"{"k": "\ud83d\ude00"}"#).unwrap();
        assert_eq!(pairs[0].1.as_str(), Some("\u{1f600}"));
        // Mixed with a BMP escape and literal text.
        let pairs = parse_object(r#"{"k": "a\u0041\ud83d\ude00z"}"#).unwrap();
        assert_eq!(pairs[0].1.as_str(), Some("aA\u{1f600}z"));
    }

    #[test]
    fn unpaired_surrogates_are_rejected_with_context() {
        for (line, needle) in [
            (r#"{"k": "\ud83d"}"#, "unpaired high surrogate"),
            (r#"{"k": "\ud83dx"}"#, "unpaired high surrogate"),
            (r#"{"k": "\ud83d\u0041"}"#, "not a low surrogate"),
            (r#"{"k": "\ude00"}"#, "unpaired low surrogate"),
        ] {
            let err = parse_object(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a": }"#).is_err());
        assert!(parse_object(r#"{"a": [1]}"#).is_err());
        assert!(parse_object(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_object(r#"{"a": 1e}"#).is_err());
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object("  { }  ").unwrap().is_empty());
    }

    #[test]
    fn scientific_numbers_parse() {
        let pairs = parse_object(r#"{"v": 1.5e-3}"#).unwrap();
        assert!((pairs[0].1.as_f64().unwrap() - 0.0015).abs() < 1e-12);
    }
}
