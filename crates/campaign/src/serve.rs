//! `pdceval serve`: a long-running campaign-results service.
//!
//! The CLI's one-shot `run` pays full price every invocation: process
//! start, registry setup, cold harness caches. `serve` keeps all of it
//! warm behind a socket — one [`CampaignCache`], one bounded
//! [`ExecPool`] of executors, one [`SingleFlight`] table — and answers
//! newline-delimited JSON requests from any number of concurrent
//! clients (thread-per-connection; total simulation concurrency is
//! bounded by the pool, not the client count).
//!
//! # Protocol
//!
//! One flat JSON object per line in, one or more flat JSON objects per
//! line out (the store dialect — [`crate::json`] — which has no nested
//! values; list-valued fields are space-separated strings). Ops:
//!
//! ```text
//! {"op": "ping"}
//! {"op": "run", "campaign": "quick"}
//! {"op": "sweep", "kernels": "ring broadcast", "tools": "p4 pvm",
//!  "platforms": "sun-eth", "nprocs": "2 4", "sizes": "0 4096", "reps": "2"}
//! {"op": "query", "key": "ring-x1/p4/sun-eth/n4/s4096"}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! `run` and `sweep` respond with one results-store line per scenario
//! (identical bytes to what `pdceval run` would write for the same
//! point) followed by a summary line
//! `{"done": true, "points": N, "hits": H, "executed": E, "joined": J}`.
//! Scenarios already cached are **hits**; uncached ones are executed
//! once — if two clients race on the same scenario, one **executes**
//! and the other **joins** the in-flight execution. Errors come back as
//! `{"error": "..."}` without closing the connection.

use crate::cache::{scenario_digest, CampaignCache, FlightOutcome, SingleFlight};
use crate::campaigns::Campaign;
use crate::json::{escape, parse_object, Json};
use crate::runner::{ExecPool, ScenarioRecord};
use crate::scenario::{Kernel, Scale, Scenario};
use crate::store::{render_record, StoreMeta};
use pdceval_mpt::ModelRegistry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the accept loop polls the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Everything a connection needs, shared by all of them.
#[derive(Debug)]
pub struct ServeState {
    cache: Mutex<CampaignCache>,
    flight: SingleFlight,
    pool: ExecPool,
    campaigns: Vec<Campaign>,
    scale: Scale,
    meta: StoreMeta,
    shutdown: AtomicBool,
    requests: AtomicU64,
}

impl ServeState {
    /// Builds the shared state: an opened cache, `workers` pooled
    /// executors, and the campaigns `run` can name.
    pub fn new(
        cache: CampaignCache,
        workers: usize,
        campaigns: Vec<Campaign>,
        scale: Scale,
        meta: StoreMeta,
    ) -> ServeState {
        ServeState {
            cache: Mutex::new(cache),
            flight: SingleFlight::new(),
            pool: ExecPool::new(workers),
            campaigns,
            scale,
            meta,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
        }
    }

    /// Requests shutdown: the accept loop exits after its next poll and
    /// connections close after their current request.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Total scenario executions since start (cache hits excluded).
    pub fn executed_total(&self) -> u64 {
        self.pool.runs_completed()
    }
}

/// Serves one connection: reads request lines, writes response lines,
/// returns when the peer closes or shutdown lands.
///
/// # Errors
///
/// Returns the first I/O error on the connection.
pub fn handle_connection(
    state: &ServeState,
    reader: impl Read,
    mut writer: impl Write,
) -> std::io::Result<()> {
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        for response in handle_request(state, &line) {
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        if state.shutting_down() {
            break;
        }
    }
    Ok(())
}

fn err_line(msg: &str) -> Vec<String> {
    vec![format!("{{\"error\": \"{}\"}}", escape(msg))]
}

/// Handles one request line, producing the response lines.
pub fn handle_request(state: &ServeState, line: &str) -> Vec<String> {
    let pairs = match parse_object(line) {
        Ok(p) => p,
        Err(e) => return err_line(&format!("bad request: {e}")),
    };
    let get = |k: &str| {
        pairs
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v): &(String, Json)| v)
    };
    let str_of = |k: &str| get(k).and_then(Json::as_str);
    match str_of("op") {
        Some("ping") => vec![format!(
            "{{\"ok\": true, \"op\": \"ping\", \"fingerprint\": \"{}\"}}",
            pdceval_mpt::hash::hex16(crate::cache::code_fingerprint())
        )],
        Some("shutdown") => {
            state.request_shutdown();
            vec!["{\"ok\": true, \"op\": \"shutdown\"}".to_string()]
        }
        Some("stats") => {
            let cache = state.cache.lock().expect("serve cache poisoned");
            match cache.stats() {
                Ok(s) => {
                    // Splice serve-level counters into the stats object.
                    let base = s.render_json();
                    let base = base.trim_end_matches('}');
                    vec![format!(
                        "{base}, \"executed_total\": {}, \"requests\": {}}}",
                        state.executed_total(),
                        state.requests.load(Ordering::Relaxed),
                    )]
                }
                Err(e) => err_line(&e),
            }
        }
        Some("query") => {
            let Some(key) = str_of("key") else {
                return err_line("query needs a \"key\" field");
            };
            let cache = state.cache.lock().expect("serve cache poisoned");
            match cache.find_by_key(key) {
                Some(e) => vec![format!(
                    "{{\"key\": \"{}\", \"status\": \"{}\", \"mean\": {}, \"generation\": {}}}",
                    escape(&e.key),
                    e.status.slug(),
                    e.stats
                        .map(|s| s.mean)
                        .filter(|m| m.is_finite())
                        .map(|m| m.to_string())
                        .unwrap_or_else(|| "null".to_string()),
                    e.generation,
                )],
                None => err_line(&format!("no cached record for key '{key}'")),
            }
        }
        Some("run") => {
            let Some(name) = str_of("campaign") else {
                return err_line("run needs a \"campaign\" field");
            };
            let Some(campaign) = state.campaigns.iter().find(|c| c.name == name) else {
                return err_line(&format!("unknown campaign '{name}'"));
            };
            run_scenarios(state, &campaign.scenarios)
        }
        Some("sweep") => match sweep_scenarios(state, &pairs) {
            Ok(scenarios) => run_scenarios(state, &scenarios),
            Err(e) => err_line(&e),
        },
        Some(other) => err_line(&format!("unknown op '{other}'")),
        None => err_line("request needs an \"op\" field"),
    }
}

/// Builds an ad-hoc grid from a sweep request's space-separated fields.
fn sweep_scenarios(state: &ServeState, pairs: &[(String, Json)]) -> Result<Vec<Scenario>, String> {
    let str_of = |k: &str| {
        pairs
            .iter()
            .find(|(key, _)| key == k)
            .and_then(|(_, v)| v.as_str())
    };
    let registry = ModelRegistry::global();
    let kernels: Vec<Kernel> = str_of("kernels")
        .ok_or("sweep needs a \"kernels\" field (e.g. \"ring broadcast\")")?
        .split_whitespace()
        .map(|name| {
            Kernel::parse_name(name, state.scale).ok_or_else(|| format!("unknown kernel '{name}'"))
        })
        .collect::<Result<_, _>>()?;
    let tools = match str_of("tools") {
        None => pdceval_mpt::ToolKind::builtin().to_vec(),
        Some(raw) => raw
            .split_whitespace()
            .map(|slug| {
                registry
                    .tools()
                    .into_iter()
                    .find(|t| t.slug() == slug)
                    .ok_or_else(|| format!("unknown tool '{slug}'"))
            })
            .collect::<Result<_, _>>()?,
    };
    let platforms: Vec<pdceval_simnet::platform::Platform> = str_of("platforms")
        .ok_or("sweep needs a \"platforms\" field (e.g. \"sun-eth\")")?
        .split_whitespace()
        .map(|slug| {
            registry
                .platforms()
                .into_iter()
                .find(|p| p.slug() == slug)
                .ok_or_else(|| format!("unknown platform '{slug}'"))
        })
        .collect::<Result<_, _>>()?;
    let nums = |field: &str, default: &str| -> Result<Vec<u64>, String> {
        str_of(field)
            .unwrap_or(default)
            .split_whitespace()
            .map(|n| n.parse().map_err(|_| format!("bad {field} entry '{n}'")))
            .collect()
    };
    let nprocs = nums("nprocs", "4")?;
    let sizes = nums("sizes", "0")?;
    let reps: u32 = str_of("reps")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad \"reps\" value".to_string())?;
    let scenarios = crate::grid::ScenarioGrid::new()
        .kernels(kernels)
        .tools(tools)
        .platforms(platforms)
        .nprocs(nprocs.iter().map(|&n| n as usize))
        .sizes(sizes)
        .reps(reps)
        .scenarios();
    if scenarios.is_empty() {
        return Err("sweep matches no valid scenario".to_string());
    }
    Ok(scenarios)
}

/// Runs a scenario list through cache → single-flight → pool, and
/// renders the response lines in grid order.
fn run_scenarios(state: &ServeState, scenarios: &[Scenario]) -> Vec<String> {
    let mut slots: Vec<Option<ScenarioRecord>> = scenarios.iter().map(|_| None).collect();
    let mut hits = 0usize;
    let mut misses = Vec::new();
    {
        let cache = state.cache.lock().expect("serve cache poisoned");
        for (i, sc) in scenarios.iter().enumerate() {
            match cache.lookup(sc) {
                Some(r) => {
                    slots[i] = Some(r);
                    hits += 1;
                }
                None => misses.push(i),
            }
        }
    }
    let mut executed = 0usize;
    let mut joined = 0usize;
    // Misses run concurrently; the pool bounds simulation parallelism
    // and the flight table dedups races with other connections.
    let outcomes: Vec<(usize, ScenarioRecord, FlightOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = misses
            .iter()
            .map(|&i| {
                let sc = &scenarios[i];
                scope.spawn(move || {
                    let digest = scenario_digest(sc);
                    let (record, outcome) = state.flight.run(digest, || {
                        let record = state.pool.run_point(sc);
                        let mut cache = state.cache.lock().expect("serve cache poisoned");
                        if let Err(e) = cache.insert(&record, &state.meta) {
                            eprintln!("warning: {e}");
                        }
                        record
                    });
                    (i, record, outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .collect()
    });
    for (i, record, outcome) in outcomes {
        match outcome {
            FlightOutcome::Led => executed += 1,
            FlightOutcome::Joined => joined += 1,
        }
        slots[i] = Some(record);
    }
    {
        let mut cache = state.cache.lock().expect("serve cache poisoned");
        if let Err(e) = cache.flush() {
            eprintln!("warning: {e}");
        }
    }
    let mut out: Vec<String> = slots
        .into_iter()
        .map(|s| {
            render_record(
                &s.expect("every slot is a hit or an executed miss"),
                &state.meta,
            )
        })
        .collect();
    out.push(format!(
        "{{\"done\": true, \"points\": {}, \"hits\": {hits}, \"executed\": {executed}, \
         \"joined\": {joined}}}",
        scenarios.len(),
    ));
    out
}

/// The listening server: one accept loop, thread-per-connection.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServeState>,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    unix: Option<(std::os::unix::net::UnixListener, std::path::PathBuf)>,
}

impl Server {
    /// Wraps shared state into an unbound server.
    pub fn new(state: Arc<ServeState>) -> Server {
        Server {
            state,
            tcp: None,
            #[cfg(unix)]
            unix: None,
        }
    }

    /// The shared state (for shutdown or inspection from another
    /// thread).
    pub fn state(&self) -> Arc<ServeState> {
        self.state.clone()
    }

    /// Binds a TCP listener, returning the bound address (use port 0
    /// for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns any bind error.
    pub fn bind_tcp(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        self.tcp = Some(listener);
        Ok(local)
    }

    /// Binds a Unix-domain socket listener at `path` (removing any
    /// stale socket file first). The file is removed again when
    /// [`Server::run`] exits.
    ///
    /// # Errors
    ///
    /// Returns any bind error.
    #[cfg(unix)]
    pub fn bind_unix(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        self.unix = Some((listener, path.to_path_buf()));
        Ok(())
    }

    /// Runs the accept loop until shutdown is requested (by a client's
    /// `shutdown` op or [`ServeState::request_shutdown`]), then joins
    /// every connection thread.
    ///
    /// # Errors
    ///
    /// Returns a setup I/O error; per-connection errors only end their
    /// own connection.
    pub fn run(self) -> std::io::Result<()> {
        if let Some(l) = &self.tcp {
            l.set_nonblocking(true)?;
        }
        #[cfg(unix)]
        if let Some((l, _)) = &self.unix {
            l.set_nonblocking(true)?;
        }
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.shutting_down() {
            let mut accepted = false;
            if let Some(listener) = &self.tcp {
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted = true;
                        stream.set_nonblocking(false)?;
                        let state = self.state.clone();
                        let read = stream.try_clone()?;
                        conns.push(std::thread::spawn(move || {
                            if let Err(e) = handle_connection(&state, read, stream) {
                                eprintln!("serve: connection error: {e}");
                            }
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => eprintln!("serve: accept error: {e}"),
                }
            }
            #[cfg(unix)]
            if let Some((listener, _)) = &self.unix {
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted = true;
                        stream.set_nonblocking(false)?;
                        let state = self.state.clone();
                        let read = stream.try_clone()?;
                        conns.push(std::thread::spawn(move || {
                            if let Err(e) = handle_connection(&state, read, stream) {
                                eprintln!("serve: connection error: {e}");
                            }
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => eprintln!("serve: accept error: {e}"),
                }
            }
            if !accepted {
                std::thread::sleep(ACCEPT_POLL);
            }
        }
        for handle in conns {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let Some((_, path)) = &self.unix {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}
