//! Scenario execution: the kernels behind every campaign point.
//!
//! An [`Executor`] owns a cache of [`SpmdHarness`] skeletons keyed by
//! `(platform, nprocs)`, so consecutive points of a sweep reuse the
//! simulated cluster (fabric, hosts, stack/daemon resources) instead of
//! rebuilding it — the per-point setup elimination the ROADMAP's
//! `SpmdHarness` follow-on asked for. Execution is deterministic:
//! identical scenarios produce bit-identical values, with or without
//! harness reuse, on any executor.

use crate::scenario::{AplApp, Kernel, Scale, Scenario};
use bytes::Bytes;
use pdceval_apps::fft::Fft2d;
use pdceval_apps::jpeg::JpegCompression;
use pdceval_apps::monte_carlo::MonteCarlo;
use pdceval_apps::psrs::PsrsSort;
use pdceval_apps::workload::Workload;
use pdceval_mpt::error::{RunError, ToolError};
use pdceval_mpt::node::Node;
use pdceval_mpt::runtime::{SpmdHarness, SpmdOutcome};
use pdceval_mpt::ToolKind;
use pdceval_simnet::perturb::PerturbConfig;
use pdceval_simnet::platform::Platform;
use pdceval_simnet::time::SimDuration;
use pdceval_simnet::trace::{CounterSummary, TraceSink};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The measured outcome of one scenario execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// A timed value, in the kernel's unit ([`Kernel::unit`]).
    Value(f64),
    /// The tool does not implement the kernel (PVM's missing global sum —
    /// "Not Available" in the paper's Table 1).
    Unsupported(ToolError),
}

impl PointOutcome {
    /// The timed value, if the point was supported.
    pub fn value(&self) -> Option<f64> {
        match self {
            PointOutcome::Value(v) => Some(*v),
            PointOutcome::Unsupported(_) => None,
        }
    }
}

/// What one scenario execution left behind for observability: the
/// engine counters, per-rank completion times, and — for traced runs —
/// the recorded per-rank timelines. Purely passive: captures exist
/// whether or not anyone reads them, and the measured values are
/// byte-identical either way.
#[derive(Debug, Clone)]
pub struct RunCapture {
    /// Engine and fabric counters of the run.
    pub counters: CounterSummary,
    /// Per-rank completion times (virtual).
    pub rank_finish: Vec<SimDuration>,
    /// The trace sink, when the executor ran with tracing enabled.
    pub sink: Option<Arc<Mutex<TraceSink>>>,
}

/// Executes scenarios, caching one [`SpmdHarness`] per
/// `(platform, nprocs)` pair for skeleton reuse across sweep points.
#[derive(Debug, Default)]
pub struct Executor {
    harnesses: HashMap<(Platform, usize), SpmdHarness>,
    tracing: bool,
    last_capture: Option<RunCapture>,
}

/// Upper bound on cached skeletons per executor. One-shot sweeps never
/// get near it; it exists for resident processes (`pdceval serve`)
/// where clients keep submitting new `(platform, nprocs)` combinations
/// and the cache would otherwise grow for the life of the server.
/// Eviction clears the whole map — skeletons are cheap to rebuild, and
/// reuse or not never changes a measured value.
const HARNESS_CACHE_MAX: usize = 32;

impl Executor {
    /// Creates an executor with an empty harness cache.
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Number of distinct cluster skeletons built so far.
    pub fn harness_count(&self) -> usize {
        self.harnesses.len()
    }

    /// Attaches a fresh [`TraceSink`] to every subsequent run (off by
    /// default). Tracing is record-only and does not change any
    /// measured value.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The capture left by the most recent successful [`Executor::run`],
    /// if any.
    pub fn last_capture(&self) -> Option<&RunCapture> {
        self.last_capture.as_ref()
    }

    /// Takes ownership of the most recent capture, leaving `None`.
    pub fn take_capture(&mut self) -> Option<RunCapture> {
        self.last_capture.take()
    }

    /// Runs one scenario once and returns its measured outcome.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the scenario is invalid for the platform
    /// (sizes, missing tool port) or the simulation fails. A kernel the
    /// tool does not implement is reported as
    /// [`PointOutcome::Unsupported`], not as an error.
    pub fn run(&mut self, sc: &Scenario) -> Result<PointOutcome, RunError> {
        self.last_capture = None;
        sc.validate()?;
        if let Kernel::GlobalSum = sc.kernel {
            if !sc.tool.supports_global_ops() {
                return Ok(PointOutcome::Unsupported(ToolError::Unsupported {
                    tool: sc.tool,
                    op: "global sum",
                }));
            }
        }
        let slot = (sc.platform, sc.nprocs);
        if !self.harnesses.contains_key(&slot) && self.harnesses.len() >= HARNESS_CACHE_MAX {
            self.harnesses.clear();
        }
        let harness = match self.harnesses.entry(slot) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(SpmdHarness::new(sc.platform, sc.nprocs)?)
            }
        };
        let pcfg = sc.perturb.map(|p| PerturbConfig {
            spec: p.id.spec(),
            seed: p.seed,
        });
        let mut rt = RunCtx {
            harness,
            tool: sc.tool,
            perturb: pcfg.as_ref(),
            trace: self.tracing.then(|| TraceSink::shared(sc.nprocs)),
            capture: None,
        };
        let value = match sc.kernel {
            Kernel::SendRecv { iters } => send_recv(&mut rt, sc.size, iters)?,
            Kernel::Broadcast => broadcast(&mut rt, sc.size)?,
            Kernel::Ring { shifts } => ring(&mut rt, sc.size, shifts)?,
            Kernel::GlobalSum => global_sum(&mut rt, sc.size)?,
            Kernel::App { app, scale } => application(&mut rt, app, scale)?,
        };
        let capture = rt.capture;
        self.last_capture = capture;
        Ok(PointOutcome::Value(value))
    }

    /// Runs a series of scenarios in order, returning their outcomes.
    ///
    /// # Errors
    ///
    /// Returns the first [`RunError`] encountered.
    pub fn run_series(&mut self, scenarios: &[Scenario]) -> Result<Vec<PointOutcome>, RunError> {
        scenarios.iter().map(|sc| self.run(sc)).collect()
    }
}

/// One scenario's execution context: the harness plus everything a
/// kernel's single SPMD run needs (tool, perturbation, optional trace
/// sink), and a slot for the capture the run leaves behind.
struct RunCtx<'a> {
    harness: &'a mut SpmdHarness,
    tool: ToolKind,
    perturb: Option<&'a PerturbConfig>,
    trace: Option<Arc<Mutex<TraceSink>>>,
    capture: Option<RunCapture>,
}

impl RunCtx<'_> {
    /// Runs the SPMD point, recording trace events when a sink is
    /// attached, and snapshots the run's counters into the capture slot.
    fn run<T, F>(&mut self, f: F) -> Result<SpmdOutcome<T>, RunError>
    where
        T: Send + 'static,
        F: Fn(&mut Node<'_>) -> T + Send + Sync + 'static,
    {
        let out =
            self.harness
                .run_perturbed_traced(self.tool, self.perturb, self.trace.clone(), f)?;
        let counters = match &self.trace {
            // The sink knows per-link-class traffic and retransmits on
            // top of the engine's own counters.
            Some(s) => s
                .lock()
                .expect("trace sink poisoned")
                .counter_summary(&out.sim),
            None => CounterSummary::from_sim(&out.sim),
        };
        self.capture = Some(RunCapture {
            counters,
            rank_finish: out.rank_finish.clone(),
            sink: self.trace.clone(),
        });
        Ok(out)
    }
}

/// Point-to-point echo: ranks 0 and 1 ping-pong a `bytes`-sized message
/// `iters` times; the value is the average one-way latency in ms.
fn send_recv(rt: &mut RunCtx<'_>, bytes: u64, iters: u32) -> Result<f64, RunError> {
    let iters = iters.max(1);
    let bytes = bytes as usize;
    let out = rt.run(move |node| {
        if node.rank() > 1 {
            return 0.0;
        }
        let payload = Bytes::from(vec![0u8; bytes]);
        let start = node.now();
        for i in 0..iters {
            let tag = i; // distinct per iteration for clarity
            if node.rank() == 0 {
                node.send(1, tag, payload.clone()).expect("send failed");
                let _ = node.recv(Some(1), Some(tag)).expect("recv failed");
            } else {
                let _ = node.recv(Some(0), Some(tag)).expect("recv failed");
                node.send(0, tag, payload.clone()).expect("send failed");
            }
        }
        (node.now() - start).as_millis_f64()
    })?;
    // Rank 0's elapsed time covers the full round trips.
    Ok(out.results[0] / (2.0 * iters as f64))
}

/// Rank-0-rooted broadcast; the value is the completion time (ms) at the
/// last node holding the payload.
fn broadcast(rt: &mut RunCtx<'_>, bytes: u64) -> Result<f64, RunError> {
    let bytes = bytes as usize;
    let out = rt.run(move |node| {
        let data = if node.rank() == 0 {
            Bytes::from(vec![0u8; bytes])
        } else {
            Bytes::new()
        };
        let got = node.broadcast(0, data).expect("broadcast failed");
        assert_eq!(got.len(), bytes, "broadcast payload corrupted");
        node.now().as_millis_f64()
    })?;
    Ok(out.results.iter().cloned().fold(0.0, f64::max))
}

/// Simultaneous ring shift; the value is per-shift completion ms at the
/// instant the last node has both sent and received.
fn ring(rt: &mut RunCtx<'_>, bytes: u64, shifts: u32) -> Result<f64, RunError> {
    let shifts = shifts.max(1);
    let bytes = bytes as usize;
    let nprocs = rt.harness.nprocs();
    let out = rt.run(move |node| {
        let mut data = Bytes::from(vec![node.rank() as u8; bytes]);
        for _ in 0..shifts {
            data = node.ring_shift(data).expect("ring shift failed");
        }
        // After `shifts` shifts the payload originated `shifts` ranks
        // upstream.
        if bytes > 0 {
            let origin = (node.rank() + nprocs - (shifts as usize % nprocs)) % nprocs;
            assert_eq!(data[0] as usize, origin, "ring payload misrouted");
        }
        node.now().as_millis_f64()
    })?;
    let done = out.results.iter().cloned().fold(0.0, f64::max);
    Ok(done / shifts as f64)
}

/// Global vector summation over `n`-element integer vectors; the value is
/// completion ms at the last node.
fn global_sum(rt: &mut RunCtx<'_>, n: u64) -> Result<f64, RunError> {
    let nprocs = rt.harness.nprocs() as i32;
    let out = rt.run(move |node| {
        let mine: Vec<i32> = (0..n as i32).map(|i| i + node.rank() as i32).collect();
        let sum = node.global_sum_i32(&mine).expect("global sum failed");
        // Element 0 must be the sum of all ranks' first elements.
        let expect: i32 = (0..nprocs).sum();
        assert_eq!(sum[0], expect, "global sum incorrect");
        node.now().as_millis_f64()
    })?;
    Ok(out.results.iter().cloned().fold(0.0, f64::max))
}

/// One SU PDABS application; the value is execution time in **seconds**
/// (the unit of the paper's Figures 5-8).
fn application(rt: &mut RunCtx<'_>, app: AplApp, scale: Scale) -> Result<f64, RunError> {
    fn run_one<W: Workload>(rt: &mut RunCtx<'_>, w: W) -> Result<f64, RunError> {
        let out = rt.run(move |node| {
            w.run(node);
        })?;
        Ok(out.elapsed.as_secs_f64())
    }
    match (app, scale) {
        (AplApp::Jpeg, Scale::Paper) => run_one(rt, JpegCompression::paper()),
        (AplApp::Jpeg, Scale::Quick) => run_one(
            rt,
            JpegCompression {
                width: 128,
                height: 128,
                seed: 9,
            },
        ),
        (AplApp::Fft, Scale::Paper) => run_one(rt, Fft2d::paper()),
        (AplApp::Fft, Scale::Quick) => run_one(rt, Fft2d { n: 32, seed: 5 }),
        (AplApp::MonteCarlo, Scale::Paper) => run_one(rt, MonteCarlo::paper()),
        (AplApp::MonteCarlo, Scale::Quick) => run_one(
            rt,
            MonteCarlo {
                samples: 50_000,
                seed: 77,
            },
        ),
        (AplApp::Sorting, Scale::Paper) => run_one(rt, PsrsSort::paper()),
        (AplApp::Sorting, Scale::Quick) => run_one(
            rt,
            PsrsSort {
                keys: 20_000,
                seed: 11,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(
        kernel: Kernel,
        tool: ToolKind,
        platform: Platform,
        nprocs: usize,
        size: u64,
    ) -> Scenario {
        Scenario {
            kernel,
            tool,
            platform,
            nprocs,
            size,
            reps: 1,
            perturb: None,
        }
    }

    #[test]
    fn executor_reuses_harnesses_across_points() {
        let mut exec = Executor::new();
        let scenarios = [
            sc(
                Kernel::Broadcast,
                ToolKind::P4,
                Platform::SUN_ETHERNET,
                4,
                1024,
            ),
            sc(
                Kernel::Broadcast,
                ToolKind::PVM,
                Platform::SUN_ETHERNET,
                4,
                1024,
            ),
            sc(
                Kernel::Ring { shifts: 1 },
                ToolKind::P4,
                Platform::SUN_ETHERNET,
                4,
                1024,
            ),
        ];
        let out = exec.run_series(&scenarios).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.value().is_some()));
        // One platform, one nprocs: one skeleton for all three points.
        assert_eq!(exec.harness_count(), 1);
    }

    #[test]
    fn harness_cache_is_bounded_for_resident_executors() {
        let mut exec = Executor::new();
        // More distinct (platform, nprocs) pairs than the cache holds —
        // the serve workload shape. The cache must stay bounded and the
        // post-eviction value must match a fresh executor's.
        let mut pairs = 0;
        for platform in Platform::all() {
            for n in 2..=platform.spec().max_nodes.min(16) {
                let point = sc(Kernel::Broadcast, ToolKind::P4, platform, n, 64);
                exec.run(&point).unwrap();
                assert!(exec.harness_count() <= HARNESS_CACHE_MAX);
                pairs += 1;
            }
        }
        assert!(pairs > HARNESS_CACHE_MAX, "test must overflow the cache");
        let point = sc(
            Kernel::Broadcast,
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            2,
            64,
        );
        assert_eq!(
            exec.run(&point).unwrap(),
            Executor::new().run(&point).unwrap()
        );
    }

    #[test]
    fn execution_is_deterministic_across_executors() {
        let point = sc(
            Kernel::SendRecv { iters: 2 },
            ToolKind::PVM,
            Platform::SUN_ATM_LAN,
            2,
            4096,
        );
        let a = Executor::new().run(&point).unwrap();
        let b = Executor::new().run(&point).unwrap();
        assert_eq!(a, b);
        // And re-running on a warm harness gives the same value.
        let mut exec = Executor::new();
        let c = exec.run(&point).unwrap();
        let d = exec.run(&point).unwrap();
        assert_eq!(c, d);
        assert_eq!(a, c);
    }

    #[test]
    fn perturbed_points_are_deterministic_and_slower() {
        use crate::scenario::PerturbRun;
        use pdceval_simnet::perturb::{register_perturb, PerturbSpec};
        let mut pspec = PerturbSpec::quiet("exec-test-jitter");
        pspec.jitter = 0.5;
        pspec.congestion = 0.5;
        let id = register_perturb(pspec).unwrap();
        let clean = sc(
            Kernel::Broadcast,
            ToolKind::P4,
            Platform::SUN_ETHERNET,
            4,
            16 * 1024,
        );
        let mut jittered = clean;
        jittered.perturb = Some(PerturbRun { id, seed: 1 });
        let mut exec = Executor::new();
        let c = exec.run(&clean).unwrap().value().unwrap();
        let a = exec.run(&jittered).unwrap().value().unwrap();
        let b = exec.run(&jittered).unwrap().value().unwrap();
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert!(a > c, "jitter+congestion must slow the point ({a} vs {c})");
        // The clean point is untouched by interleaved perturbed runs.
        assert_eq!(exec.run(&clean).unwrap().value().unwrap(), c);
    }

    #[test]
    fn pvm_global_sum_reports_unsupported() {
        let out = Executor::new()
            .run(&sc(
                Kernel::GlobalSum,
                ToolKind::PVM,
                Platform::SUN_ETHERNET,
                4,
                1000,
            ))
            .unwrap();
        assert!(matches!(out, PointOutcome::Unsupported(_)));
    }

    #[test]
    fn invalid_scenarios_error() {
        let err = Executor::new()
            .run(&sc(
                Kernel::Broadcast,
                ToolKind::EXPRESS,
                Platform::SUN_ATM_WAN,
                4,
                1024,
            ))
            .unwrap_err();
        assert!(matches!(err, RunError::PlatformUnsupported { .. }));
    }

    #[test]
    fn app_point_returns_seconds() {
        let out = Executor::new()
            .run(&sc(
                Kernel::App {
                    app: AplApp::MonteCarlo,
                    scale: Scale::Quick,
                },
                ToolKind::P4,
                Platform::ALPHA_FDDI,
                4,
                0,
            ))
            .unwrap();
        let v = out.value().unwrap();
        assert!(v > 0.0 && v < 60.0, "implausible app time {v}");
    }
}
