//! Fixture sweep for the lint pass: every lint class has a triggering
//! fixture and a clean twin, and the shipped example specs stay clean.

use pdceval_check::lint::lint_text;
use pdceval_mpt::diag::{exit_code, Diag, Severity};

fn lint_fixture(name: &str) -> Vec<Diag> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    lint_text(name, &text)
}

fn codes(diags: &[Diag]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// Each `(trigger fixture, expected codes)` pair must produce exactly
/// those diagnostics, and its `*_clean.spec` twin none at all.
#[test]
fn every_lint_class_has_a_trigger_and_a_clean_twin() {
    let cases: [(&str, &[&str]); 8] = [
        ("dead_model", &["L0102", "L0103"]),
        ("unsat_grid", &["L0201"]),
        ("capacity", &["L0202"]),
        ("crash_unreachable", &["L0301"]),
        ("trivial_seeds", &["L0302"]),
        ("collision", &["L0401"]),
        ("shadow", &["L0402", "L0403"]),
        ("units", &["L0501"]),
    ];
    for (name, expected) in cases {
        let diags = lint_fixture(&format!("{name}.spec"));
        assert_eq!(
            codes(&diags),
            *expected,
            "{name}.spec: unexpected diagnostics {:#?}",
            diags.iter().map(Diag::render).collect::<Vec<_>>()
        );
        let clean = lint_fixture(&format!("{name}_clean.spec"));
        assert!(
            clean.is_empty(),
            "{name}_clean.spec should lint clean, got {:#?}",
            clean.iter().map(Diag::render).collect::<Vec<_>>()
        );
    }
}

/// The shipped example specs are the reference corpus — they must
/// never regress into lint findings.
#[test]
fn example_specs_lint_clean() {
    for example in ["modern.spec", "mixed.spec"] {
        let path = format!("{}/../../examples/{example}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).expect("example readable");
        let diags = lint_text(example, &text);
        assert!(
            diags.is_empty(),
            "{example} should lint clean, got {:#?}",
            diags.iter().map(Diag::render).collect::<Vec<_>>()
        );
    }
}

/// A file that fails to parse produces the single L0001 error with the
/// source line attached, and gates with exit code 2.
#[test]
fn parse_failure_is_one_located_error() {
    let diags = lint_text("broken.spec", "[tool broken]\nname = X\nbogus_line\n");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "L0001");
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(diags[0].line, Some(3));
    assert_eq!(exit_code(&diags, false), 2);
}

/// Diagnostics carry the stanza header's line so `render` output is
/// clickable, and the exit-code contract holds across the fixture set.
#[test]
fn findings_are_located_and_gate_correctly() {
    let diags = lint_fixture("crash_unreachable.spec");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file.as_deref(), Some("crash_unreachable.spec"));
    // The [perturb doom] header in the fixture.
    assert_eq!(diags[0].line, Some(4));
    assert_eq!(exit_code(&diags, false), 0, "warnings pass by default");
    assert_eq!(exit_code(&diags, true), 1, "warnings gate under deny");
    let errors = lint_fixture("unsat_grid.spec");
    assert_eq!(exit_code(&errors, false), 2, "errors always gate");
}
