//! An executable model of the engine's direct-handoff scheduling
//! protocol.
//!
//! The production engine ([`pdceval_simnet`]) runs each simulated
//! process on a pooled OS thread; exactly one thread runs at a time,
//! holding the *baton* (exclusive ownership of the simulation core).
//! The baton is transferred through two primitives only — the
//! [`SyncPark`] latch and the [`SyncSlot`] resume slot — so the whole
//! cross-thread protocol can be modeled by treating every latch/slot
//! operation as one atomic step and everything executed *under* the
//! baton as one atomic step per advance-loop iteration.
//!
//! [`Model`] is that model: a deterministic state machine per thread
//! (ranks plus the main thread) over a shared world whose park cells and
//! resume slots implement the very [`SyncPark`]/[`SyncSlot`] traits the
//! production scheduler runs on. The explorer ([`crate::explore`])
//! enumerates interleavings by choosing which enabled thread steps next;
//! [`Mutation`]s re-introduce historic bug classes (lost wakeup,
//! dormant-count off-by-one, stale waiting flags) that the explorer must
//! catch.
//!
//! What the model covers, mirroring `simnet::engine`:
//!
//! * the wait-resume loop: check the resume slot, then spin/park on the
//!   latch ([`Phase::Wait`] / [`Phase::Park`]);
//! * direct handoff: deposit a resume, then wake the target
//!   ([`Phase::PutResume`] / [`Phase::Wake`]);
//! * the advance loop: runnable queue, event queue with virtual time,
//!   engine-level deadlock detection, completion detection via
//!   `unfinished == 0 && dormant_inflight == 0`;
//! * lazy ranks: dormant until first delivery, materialized with a
//!   `Start` resume, each in-flight dormant-bound message holding the
//!   run open;
//! * teardown: aborting blocked ranks, the live-worker count, and the
//!   final join.

use pdceval_simnet::syncpoint::{SyncPark, SyncSlot};
use std::cell::Cell;
use std::collections::VecDeque;

/// Message delivery latency in model time units.
const LATENCY: u64 = 1;

/// A seeded protocol bug for mutation testing: the explorer must find a
/// violation under every non-[`Mutation::None`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The correct protocol.
    None,
    /// `deposit_and_wake` wakes the owner but forgets the token — the
    /// classic lost wakeup. A worker that re-checks and parks again
    /// sleeps forever; manifests as a protocol-level deadlock.
    LostWakeup,
    /// The send path forgets to count a dormant-bound message into
    /// `dormant_inflight`, while delivery still decrements — the counter
    /// underflows (the engine guards this with a `debug_assert!`).
    DormantUndercount,
    /// Dormant-bound messages are not counted at all (neither increment
    /// nor decrement): completion detection closes the run while a
    /// delivery to a never-materialized rank is still in flight.
    DormantUncounted,
    /// Delivery to a waiting receiver forgets to clear the waiting flag,
    /// so a later delivery resumes the rank a second time — a stale
    /// resume / double-resume hazard.
    StaleWaiting,
}

impl Mutation {
    /// Every seeded mutant (for mutation-test sweeps).
    pub fn all_mutants() -> [Mutation; 4] {
        [
            Mutation::LostWakeup,
            Mutation::DormantUndercount,
            Mutation::DormantUncounted,
            Mutation::StaleWaiting,
        ]
    }
}

/// One scripted action of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Send one message to `dst` (non-blocking, delivered after
    /// [`LATENCY`]).
    Send(usize),
    /// Receive one message (any source), blocking until delivery.
    Recv,
}

/// A small scheduler model: per-rank scripts plus laziness flags.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Display name (used in reports and test output).
    pub name: String,
    /// Per-rank action scripts; a rank finishes after its last action.
    pub scripts: Vec<Vec<Action>>,
    /// Ranks registered via `spawn_lazy`: dormant until first delivery.
    pub lazy: Vec<bool>,
    /// The seeded bug, if any.
    pub mutation: Mutation,
}

impl ModelSpec {
    /// The same model with a seeded mutation.
    #[must_use]
    pub fn with_mutation(mut self, mutation: Mutation) -> ModelSpec {
        self.mutation = mutation;
        self
    }

    fn ranks(&self) -> usize {
        self.scripts.len()
    }
}

/// A resume value handed through a [`SyncSlot`], mirroring
/// `engine::ResumeKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// First activation of a rank.
    Start,
    /// A received message from `src` (the engine's fast-path delivery).
    Msg(usize),
    /// Teardown: unwind the rank's job.
    Abort,
}

fn encode_resume(r: Resume) -> u64 {
    match r {
        Resume::Abort => 0,
        Resume::Start => 1,
        Resume::Msg(src) => 2 + src as u64,
    }
}

/// The model's park latch: the same [`SyncPark`] contract the production
/// `ParkCell` implements, over explored state instead of atomics.
#[derive(Debug, Clone, Default)]
pub struct ModelPark {
    token: Cell<bool>,
    /// Whether the owner is OS-parked (blocked; not steppable until a
    /// wake clears this).
    parked: Cell<bool>,
    /// Seeded [`Mutation::LostWakeup`]: wake without depositing.
    lose_token: Cell<bool>,
}

impl SyncPark for ModelPark {
    fn try_consume(&self) -> bool {
        self.token.replace(false)
    }

    fn deposit_and_wake(&self) {
        if !self.lose_token.get() {
            self.token.set(true);
        }
        self.parked.set(false);
    }
}

/// The model's resume slot: the same [`SyncSlot`] contract the
/// production `HandoffSlot` implements.
#[derive(Debug, Clone, Default)]
pub struct ModelSlot {
    full: Cell<bool>,
    value: Cell<Option<Resume>>,
}

impl SyncSlot<Resume> for ModelSlot {
    fn deposit(&self, v: Resume) -> bool {
        let clean = !self.full.get();
        self.value.set(Some(v));
        self.full.set(true);
        clean
    }

    fn withdraw(&self) -> Option<Resume> {
        if self.full.get() {
            self.full.set(false);
            self.value.take()
        } else {
            None
        }
    }
}

/// A protocol violation found by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// No thread can make progress and the run has not terminated —
    /// a lost wakeup or equivalent protocol-level deadlock.
    Deadlock {
        /// Human-readable descriptions of the stuck threads.
        blocked: Vec<String>,
    },
    /// A resume was deposited into a slot that still held one
    /// (double resume).
    SlotClobbered {
        /// The rank whose slot was clobbered.
        rank: usize,
    },
    /// A resume was delivered to a rank that cannot accept it (finished,
    /// retired, or of the wrong kind for what the rank awaits).
    BadResume {
        /// The rank that was mis-resumed.
        rank: usize,
        /// What happened.
        detail: String,
    },
    /// The run completed while work remained: undelivered messages in
    /// flight or scripts never executed (completion-detection race).
    PrematureCompletion {
        /// What was left behind.
        detail: String,
    },
    /// `dormant_inflight` went negative (the engine `debug_assert!`s
    /// against exactly this).
    CounterUnderflow,
    /// The model engine reported a simulation deadlock on a
    /// deadlock-free script — completion detection gone wrong.
    FalseDeadlock,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Deadlock { blocked } => {
                write!(f, "protocol deadlock; stuck: {}", blocked.join(", "))
            }
            Violation::SlotClobbered { rank } => {
                write!(f, "double resume: rank {rank}'s slot clobbered")
            }
            Violation::BadResume { rank, detail } => {
                write!(f, "bad resume to rank {rank}: {detail}")
            }
            Violation::PrematureCompletion { detail } => {
                write!(f, "premature completion: {detail}")
            }
            Violation::CounterUnderflow => write!(f, "dormant-inflight counter underflow"),
            Violation::FalseDeadlock => {
                write!(f, "engine reported deadlock on a deadlock-free script")
            }
        }
    }
}

/// What a thread does after its current advance loop hands the baton
/// off (the continuation after `advance` returns in the real engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum After {
    /// A blocked worker returns to its wait-resume loop; on `Msg` it
    /// continues its script after the blocking action at `pc`.
    WaitResume { pc: usize },
    /// A finishing worker retires (releases its pooled thread).
    Retire,
    /// Main returns from the boot advance and waits for `done`.
    MainWait,
    /// Main continues tearing down ranks from `next`.
    MainAbort { next: usize },
}

/// Per-thread control state. Threads `0..ranks` are rank workers;
/// thread `ranks` is main.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Wait-resume loop: next step checks the resume slot.
    Wait { start: bool, pc: usize },
    /// Inside the latch's park loop (after a failed slot check). When
    /// `parked` is set on the latch the thread is unsteppable.
    Park { start: bool, pc: usize },
    /// Running the script at `pc`.
    Run { pc: usize },
    /// Driving the advance loop (holds the baton).
    Adv { after: After },
    /// Depositing a resume into `pid`'s slot (first half of a handoff).
    PutResume {
        pid: usize,
        resume: Resume,
        after: After,
    },
    /// Waking `pid` (second half of a handoff).
    Wake { pid: usize, after: After },
    /// Waking main after `finish_run`.
    WakeMain { after: After },
    /// Releasing the worker: decrement `live`, wake main if last.
    Retire,
    /// Thread finished (or never existed, for unmaterialized ranks).
    Gone,
    /// Main: push eager ranks runnable, then drive the boot advance.
    MainBoot,
    /// Main: check `done`, else park.
    MainWait,
    /// Main: in the park loop awaiting `done`.
    MainPark,
    /// Main: teardown — abort still-running ranks starting at `next`.
    MainAbort { next: usize },
    /// Main: await `live == 0`.
    MainJoin,
    /// Main: in the park loop awaiting the last retire.
    MainJoinPark,
    /// Main finished; the run is over when every thread is Gone.
    MainGone,
}

/// Mirror of the engine's `ProcState`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Dormant,
    Live,
    Blocked,
    Finished,
    Aborted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Deliver {
        dst: usize,
        src: usize,
        counted: bool,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum End {
    Ok,
    Deadlock,
}

/// The shared world guarded by the baton, mirroring `engine::Core`.
#[derive(Debug, Clone)]
struct Core {
    runnable: VecDeque<(usize, Resume)>,
    pstate: Vec<PState>,
    mailbox: Vec<VecDeque<usize>>,
    waiting: Vec<bool>,
    /// Pending events, kept sorted by `(time, seq)`.
    queue: Vec<(u64, u64, Ev)>,
    clock: u64,
    seq: u64,
    unfinished: usize,
    dormant_inflight: i64,
    end: Option<End>,
}

impl Core {
    fn all_finished(&self) -> bool {
        self.unfinished == 0 && self.dormant_inflight == 0
    }

    fn push_event(&mut self, time: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        let pos = self
            .queue
            .iter()
            .position(|&(t, s, _)| (t, s) > (time, seq))
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, (time, seq, ev));
    }

    fn pop_event(&mut self) -> Option<(u64, Ev)> {
        if self.queue.is_empty() {
            None
        } else {
            let (t, _, ev) = self.queue.remove(0);
            Some((t, ev))
        }
    }
}

/// One explorable state of the protocol. Cloning is cheap enough for
/// DFS over small models; [`Model::encode`] provides an exact state key
/// for memoization.
#[derive(Debug, Clone)]
pub struct Model {
    spec: ModelSpec,
    parks: Vec<ModelPark>, // 0..ranks = workers, ranks = main
    slots: Vec<ModelSlot>, // per rank
    phases: Vec<Phase>,    // 0..ranks = workers, ranks = main
    core: Core,
    done: bool,
    live: usize,
    /// Messages ever sent to each rank (for terminal-state checks).
    sent_to: Vec<usize>,
}

impl Model {
    /// Builds the initial state: eager ranks have spawned worker threads
    /// awaiting their `Start` resume, lazy ranks are dormant, main is
    /// about to boot the run.
    pub fn new(spec: ModelSpec) -> Model {
        let n = spec.ranks();
        assert!(n >= 1, "model needs at least one rank");
        assert_eq!(spec.lazy.len(), n, "lazy flags must cover every rank");
        let lose = spec.mutation == Mutation::LostWakeup;
        let parks: Vec<ModelPark> = (0..=n)
            .map(|_| {
                let p = ModelPark::default();
                p.lose_token.set(lose);
                p
            })
            .collect();
        let mut phases = Vec::with_capacity(n + 1);
        let mut pstate = Vec::with_capacity(n);
        let mut live = 0;
        for r in 0..n {
            if spec.lazy[r] {
                phases.push(Phase::Gone); // no thread until materialized
                pstate.push(PState::Dormant);
            } else {
                phases.push(Phase::Wait { start: true, pc: 0 });
                pstate.push(PState::Live);
                live += 1;
            }
        }
        phases.push(Phase::MainBoot);
        let unfinished = pstate.iter().filter(|&&s| s == PState::Live).count();
        Model {
            parks,
            slots: (0..n).map(|_| ModelSlot::default()).collect(),
            phases,
            core: Core {
                runnable: VecDeque::new(),
                pstate,
                mailbox: (0..n).map(|_| VecDeque::new()).collect(),
                waiting: vec![false; n],
                queue: Vec::new(),
                clock: 0,
                seq: 0,
                unfinished,
                dormant_inflight: 0,
                end: None,
            },
            done: false,
            live,
            sent_to: vec![0; n],
            spec,
        }
    }

    /// The model's spec.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    fn ranks(&self) -> usize {
        self.spec.ranks()
    }

    fn main_tid(&self) -> usize {
        self.ranks()
    }

    /// Thread ids that can currently take a step.
    pub fn enabled(&self) -> Vec<usize> {
        (0..=self.ranks())
            .filter(|&tid| self.thread_enabled(tid))
            .collect()
    }

    fn thread_enabled(&self, tid: usize) -> bool {
        match &self.phases[tid] {
            Phase::Gone | Phase::MainGone => false,
            Phase::Park { .. } | Phase::MainPark | Phase::MainJoinPark => {
                !self.parks[tid].parked.get()
            }
            _ => true,
        }
    }

    /// Whether every thread has finished (the run is over).
    pub fn terminal(&self) -> bool {
        self.phases
            .iter()
            .all(|p| matches!(p, Phase::Gone | Phase::MainGone))
    }

    /// Validates a terminal state: the run must have ended cleanly with
    /// every messaged rank's script fully executed and nothing left in
    /// flight.
    ///
    /// # Errors
    ///
    /// Returns the violation when the terminal state is inconsistent.
    pub fn check_terminal(&self) -> Result<(), Violation> {
        match &self.core.end {
            Some(End::Ok) => {}
            Some(End::Deadlock) => return Err(Violation::FalseDeadlock),
            None => {
                return Err(Violation::PrematureCompletion {
                    detail: "all threads exited without finish_run".to_string(),
                })
            }
        }
        // The real engine declares completion as soon as
        // `unfinished == 0 && dormant_inflight == 0`; a delivery still in
        // flight toward a *finished* rank is then legitimately abandoned.
        // A delivery still in flight toward a *dormant* rank is not — it
        // would have materialized the rank and extended the run, so its
        // presence at completion means the dormant-inflight accounting
        // lost it.
        let lost = self
            .core
            .queue
            .iter()
            .filter(|&&(_, _, Ev::Deliver { dst, .. })| self.core.pstate[dst] == PState::Dormant)
            .count();
        if lost > 0 {
            return Err(Violation::PrematureCompletion {
                detail: format!("{lost} delivery(ies) to dormant ranks still queued at completion"),
            });
        }
        for r in 0..self.ranks() {
            let ran = self.core.pstate[r] == PState::Finished;
            if self.spec.lazy[r] && self.sent_to[r] == 0 {
                continue; // untouched lazy rank: legitimately never ran
            }
            if !ran {
                return Err(Violation::PrematureCompletion {
                    detail: format!("rank {r} never completed its script"),
                });
            }
        }
        Ok(())
    }

    /// Descriptions of unsteppable, unfinished threads (for deadlock
    /// reports).
    pub fn blocked_threads(&self) -> Vec<String> {
        (0..=self.ranks())
            .filter(|&tid| !self.thread_enabled(tid))
            .filter(|&tid| !matches!(self.phases[tid], Phase::Gone | Phase::MainGone))
            .map(|tid| {
                if tid == self.main_tid() {
                    format!("main({:?})", self.phases[tid])
                } else {
                    format!("rank{tid}({:?})", self.phases[tid])
                }
            })
            .collect()
    }

    /// Executes one atomic step of thread `tid`. The caller must only
    /// step enabled threads.
    ///
    /// # Errors
    ///
    /// Returns the protocol violation the step exposed, if any.
    pub fn step(&mut self, tid: usize) -> Result<(), Violation> {
        debug_assert!(self.thread_enabled(tid), "stepping a disabled thread");
        let phase = self.phases[tid].clone();
        match phase {
            // -- worker wait/park ------------------------------------------------
            Phase::Wait { start, pc } => {
                if let Some(resume) = self.slots[tid].withdraw() {
                    self.dispatch_resume(tid, resume, start, pc)?;
                } else {
                    self.phases[tid] = Phase::Park { start, pc };
                }
            }
            Phase::Park { start, pc } => {
                if self.parks[tid].try_consume() {
                    self.phases[tid] = Phase::Wait { start, pc };
                } else {
                    // No token: the OS thread blocks. Only a wake makes
                    // this thread steppable again.
                    self.parks[tid].parked.set(true);
                }
            }

            // -- worker script --------------------------------------------------
            Phase::Run { pc } => self.run_action(tid, pc),

            // -- advance loop (baton holder) ------------------------------------
            Phase::Adv { after } => self.advance(tid, after)?,
            Phase::PutResume { pid, resume, after } => {
                if matches!(
                    self.core.pstate[pid],
                    PState::Finished | PState::Aborted | PState::Dormant
                ) || matches!(self.phases[pid], Phase::Gone | Phase::Retire)
                {
                    return Err(Violation::BadResume {
                        rank: pid,
                        detail: format!(
                            "resume {resume:?} handed to a rank in state {:?}",
                            self.core.pstate[pid]
                        ),
                    });
                }
                if !self.slots[pid].deposit(resume) {
                    return Err(Violation::SlotClobbered { rank: pid });
                }
                self.phases[tid] = Phase::Wake { pid, after };
            }
            Phase::Wake { pid, after } => {
                self.parks[pid].deposit_and_wake();
                self.phases[tid] = self.continue_after(tid, after);
            }
            Phase::WakeMain { after } => {
                let main = self.main_tid();
                self.parks[main].deposit_and_wake();
                self.phases[tid] = self.continue_after(tid, after);
            }
            Phase::Retire => {
                self.live -= 1;
                if self.live == 0 {
                    let main = self.main_tid();
                    self.parks[main].deposit_and_wake();
                }
                self.phases[tid] = Phase::Gone;
            }

            // -- main -----------------------------------------------------------
            Phase::MainBoot => {
                for r in 0..self.ranks() {
                    if !self.spec.lazy[r] {
                        self.core.runnable.push_back((r, Resume::Start));
                    }
                }
                self.phases[tid] = Phase::Adv {
                    after: After::MainWait,
                };
            }
            Phase::MainWait => {
                if self.done {
                    self.phases[tid] = Phase::MainAbort { next: 0 };
                } else {
                    self.phases[tid] = Phase::MainPark;
                }
            }
            Phase::MainPark => {
                if self.parks[tid].try_consume() {
                    self.phases[tid] = Phase::MainWait;
                } else {
                    self.parks[tid].parked.set(true);
                }
            }
            Phase::MainAbort { next } => {
                match (next..self.ranks())
                    .find(|&r| matches!(self.core.pstate[r], PState::Live | PState::Blocked))
                {
                    Some(r) => {
                        self.phases[tid] = Phase::PutResume {
                            pid: r,
                            resume: Resume::Abort,
                            after: After::MainAbort { next: r + 1 },
                        };
                    }
                    None => self.phases[tid] = Phase::MainJoin,
                }
            }
            Phase::MainJoin => {
                if self.live == 0 {
                    self.phases[tid] = Phase::MainGone;
                } else {
                    self.phases[tid] = Phase::MainJoinPark;
                }
            }
            Phase::MainJoinPark => {
                if self.parks[tid].try_consume() {
                    self.phases[tid] = Phase::MainJoin;
                } else {
                    self.parks[tid].parked.set(true);
                }
            }

            Phase::Gone | Phase::MainGone => unreachable!("stepped a finished thread"),
        }
        Ok(())
    }

    /// A worker took `resume` out of its slot (or was resumed inline).
    fn dispatch_resume(
        &mut self,
        tid: usize,
        resume: Resume,
        start: bool,
        pc: usize,
    ) -> Result<(), Violation> {
        match (resume, start) {
            (Resume::Abort, _) => {
                // Unwind: the rank's job ends without completing.
                self.core.pstate[tid] = PState::Aborted;
                self.phases[tid] = Phase::Retire;
            }
            (Resume::Start, true) => {
                self.phases[tid] = Phase::Run { pc: 0 };
            }
            (Resume::Msg(_), false) => {
                // The blocking recv at `pc` completes with the handed
                // message; continue after it.
                self.core.pstate[tid] = PState::Live;
                self.phases[tid] = Phase::Run { pc: pc + 1 };
            }
            (got, _) => {
                return Err(Violation::BadResume {
                    rank: tid,
                    detail: format!(
                        "awaiting {} but got {got:?}",
                        if start { "Start" } else { "Msg" }
                    ),
                });
            }
        }
        Ok(())
    }

    /// Executes the script action at `pc` (the worker holds the baton).
    fn run_action(&mut self, tid: usize, pc: usize) {
        let script = &self.spec.scripts[tid];
        if pc >= script.len() {
            // Script done: finish the rank, then drive the event loop.
            self.core.pstate[tid] = PState::Finished;
            self.core.unfinished -= 1;
            self.phases[tid] = Phase::Adv {
                after: After::Retire,
            };
            return;
        }
        match script[pc] {
            Action::Send(dst) => {
                let to_dormant = self.core.pstate[dst] == PState::Dormant;
                let counted = to_dormant
                    && !matches!(
                        self.spec.mutation,
                        Mutation::DormantUndercount | Mutation::DormantUncounted
                    );
                if counted {
                    self.core.dormant_inflight += 1;
                }
                // DormantUndercount: delivery still decrements (the
                // pending's `to_dormant` flag is set) even though the
                // send never incremented.
                let decrements = to_dormant && self.spec.mutation != Mutation::DormantUncounted;
                self.sent_to[dst] += 1;
                let at = self.core.clock + LATENCY;
                self.core.push_event(
                    at,
                    Ev::Deliver {
                        dst,
                        src: tid,
                        counted: decrements,
                    },
                );
                self.phases[tid] = Phase::Run { pc: pc + 1 };
            }
            Action::Recv => {
                if let Some(_src) = self.core.mailbox[tid].pop_front() {
                    self.phases[tid] = Phase::Run { pc: pc + 1 };
                } else {
                    self.core.waiting[tid] = true;
                    self.core.pstate[tid] = PState::Blocked;
                    self.phases[tid] = Phase::Adv {
                        after: After::WaitResume { pc },
                    };
                }
            }
        }
    }

    /// One iteration of the engine's advance loop (baton held by `tid`).
    fn advance(&mut self, tid: usize, after: After) -> Result<(), Violation> {
        if let Some((pid, resume)) = self.core.runnable.pop_front() {
            if pid == tid {
                // Inline resume: the engine short-circuits a handoff to
                // the thread already driving the loop. Only legal while
                // that thread is blocked in a receive.
                return match after {
                    After::WaitResume { pc } => self.dispatch_resume(tid, resume, false, pc),
                    _ => Err(Violation::BadResume {
                        rank: tid,
                        detail: format!("inline {resume:?} outside a blocking wait"),
                    }),
                };
            }
            self.phases[tid] = Phase::PutResume { pid, resume, after };
            return Ok(());
        }
        if self.core.all_finished() {
            self.core.end = Some(End::Ok);
            self.done = true;
            self.phases[tid] = Phase::WakeMain { after };
            return Ok(());
        }
        if let Some((time, ev)) = self.core.pop_event() {
            self.core.clock = time;
            return self.dispatch_event(ev);
        }
        // Nothing runnable, nothing queued, not finished: the engine
        // reports a simulation deadlock.
        self.core.end = Some(End::Deadlock);
        self.done = true;
        self.phases[tid] = Phase::WakeMain { after };
        Ok(())
    }

    /// Delivers an event (still under the baton, same atomic step).
    fn dispatch_event(&mut self, ev: Ev) -> Result<(), Violation> {
        let Ev::Deliver { dst, src, counted } = ev;
        if counted {
            self.core.dormant_inflight -= 1;
            if self.core.dormant_inflight < 0 {
                return Err(Violation::CounterUnderflow);
            }
        }
        if self.core.pstate[dst] == PState::Dormant {
            // Materialize: the rank leases a worker thread and becomes
            // runnable with a Start resume; the message lands in its
            // fresh mailbox.
            self.core.pstate[dst] = PState::Live;
            self.core.unfinished += 1;
            self.live += 1;
            self.phases[dst] = Phase::Wait { start: true, pc: 0 };
            self.core.runnable.push_back((dst, Resume::Start));
            self.core.mailbox[dst].push_back(src);
            return Ok(());
        }
        if self.core.waiting[dst] {
            // Fast path: hand the message straight to the blocked
            // receiver as its resume.
            if self.spec.mutation != Mutation::StaleWaiting {
                self.core.waiting[dst] = false;
            }
            self.core.runnable.push_back((dst, Resume::Msg(src)));
            return Ok(());
        }
        self.core.mailbox[dst].push_back(src);
        Ok(())
    }

    fn continue_after(&self, tid: usize, after: After) -> Phase {
        match after {
            After::WaitResume { pc } => Phase::Wait { start: false, pc },
            After::Retire => Phase::Retire,
            After::MainWait => {
                debug_assert_eq!(tid, self.main_tid());
                Phase::MainWait
            }
            After::MainAbort { next } => Phase::MainAbort { next },
        }
    }

    /// Exact state encoding for explorer memoization: two states with
    /// equal encodings behave identically forever.
    pub fn encode(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(64);
        for p in &self.parks {
            out.push(u64::from(p.token.get()) | (u64::from(p.parked.get()) << 1));
        }
        for s in &self.slots {
            out.push(match (s.full.get(), s.value.get()) {
                (false, _) => u64::MAX,
                (true, Some(r)) => encode_resume(r),
                (true, None) => u64::MAX - 1,
            });
        }
        for ph in &self.phases {
            encode_phase(ph, &mut out);
        }
        let c = &self.core;
        out.push(c.runnable.len() as u64);
        for &(pid, r) in &c.runnable {
            out.push(((pid as u64) << 8) | encode_resume(r));
        }
        for &s in &c.pstate {
            out.push(s as u64);
        }
        for mb in &c.mailbox {
            out.push(mb.len() as u64);
            for &src in mb {
                out.push(src as u64);
            }
        }
        for &w in &c.waiting {
            out.push(u64::from(w));
        }
        out.push(c.queue.len() as u64);
        for &(t, s, ev) in &c.queue {
            let Ev::Deliver { dst, src, counted } = ev;
            out.push(t);
            out.push(s);
            out.push(((dst as u64) << 32) | ((src as u64) << 1) | u64::from(counted));
        }
        out.push(c.clock);
        out.push(c.unfinished as u64);
        out.push(c.dormant_inflight as u64);
        out.push(match c.end {
            None => 0,
            Some(End::Ok) => 1,
            Some(End::Deadlock) => 2,
        });
        out.push(u64::from(self.done));
        out.push(self.live as u64);
        for &s in &self.sent_to {
            out.push(s as u64);
        }
        out
    }
}

fn encode_after(a: After, out: &mut Vec<u64>) {
    match a {
        After::WaitResume { pc } => {
            out.push(0);
            out.push(pc as u64);
        }
        After::Retire => out.push(1),
        After::MainWait => out.push(2),
        After::MainAbort { next } => {
            out.push(3);
            out.push(next as u64);
        }
    }
}

fn encode_phase(p: &Phase, out: &mut Vec<u64>) {
    match p {
        Phase::Wait { start, pc } => {
            out.push(0);
            out.push(u64::from(*start));
            out.push(*pc as u64);
        }
        Phase::Park { start, pc } => {
            out.push(1);
            out.push(u64::from(*start));
            out.push(*pc as u64);
        }
        Phase::Run { pc } => {
            out.push(2);
            out.push(*pc as u64);
        }
        Phase::Adv { after } => {
            out.push(3);
            encode_after(*after, out);
        }
        Phase::PutResume { pid, resume, after } => {
            out.push(4);
            out.push(*pid as u64);
            out.push(encode_resume(*resume));
            encode_after(*after, out);
        }
        Phase::Wake { pid, after } => {
            out.push(5);
            out.push(*pid as u64);
            encode_after(*after, out);
        }
        Phase::WakeMain { after } => {
            out.push(6);
            encode_after(*after, out);
        }
        Phase::Retire => out.push(7),
        Phase::Gone => out.push(8),
        Phase::MainBoot => out.push(9),
        Phase::MainWait => out.push(10),
        Phase::MainPark => out.push(11),
        Phase::MainAbort { next } => {
            out.push(12);
            out.push(*next as u64);
        }
        Phase::MainJoin => out.push(13),
        Phase::MainJoinPark => out.push(14),
        Phase::MainGone => out.push(15),
    }
}

// ---------------------------------------------------------------------------
// The small-model library
// ---------------------------------------------------------------------------

fn eager(name: &str, scripts: Vec<Vec<Action>>) -> ModelSpec {
    let n = scripts.len();
    ModelSpec {
        name: name.to_string(),
        scripts,
        lazy: vec![false; n],
        mutation: Mutation::None,
    }
}

/// Two eager ranks echoing one message (the paper's send/recv kernel).
pub fn pingpong() -> ModelSpec {
    eager(
        "pingpong",
        vec![
            vec![Action::Send(1), Action::Recv],
            vec![Action::Recv, Action::Send(0)],
        ],
    )
}

/// `n` eager ranks in a ring: everyone sends right, then receives (the
/// simultaneous-shift kernel).
pub fn ring(n: usize) -> ModelSpec {
    let scripts = (0..n)
        .map(|r| vec![Action::Send((r + 1) % n), Action::Recv])
        .collect();
    eager(&format!("ring{n}"), scripts)
}

/// A double-send into a one-message receiver, with a straggler pair
/// keeping the run open (gather-style root contention; the
/// stale-waiting / double-resume hazard lives here). Rank 0 consumes
/// only the first of rank 1's two messages and finishes; the second
/// delivery then pops while ranks 2–3 still hold the run open, so it
/// must buffer — a stale `waiting` flag instead resumes the finished
/// rank 0.
pub fn fanin() -> ModelSpec {
    eager(
        "fanin4",
        vec![
            vec![Action::Recv],
            vec![Action::Send(0), Action::Send(0)],
            vec![Action::Recv],
            vec![Action::Send(2)],
        ],
    )
}

/// An eager root echoing through two lazy ranks and back: exercises
/// dormant materialization chains and the dormant-inflight hold-open
/// accounting (the root's blocking receive keeps the run open while
/// dormant-bound deliveries are in flight).
pub fn lazy_relay() -> ModelSpec {
    ModelSpec {
        name: "lazy-relay".to_string(),
        scripts: vec![
            vec![Action::Send(1), Action::Recv],
            vec![Action::Recv, Action::Send(2)],
            vec![Action::Recv, Action::Send(0)],
        ],
        lazy: vec![false, true, true],
        mutation: Mutation::None,
    }
}

/// An eager root fanning out to five lazy leaves (one never messaged —
/// it must stay dormant and cost nothing).
pub fn lazy_fan() -> ModelSpec {
    ModelSpec {
        name: "lazy-fan6".to_string(),
        scripts: vec![
            vec![
                Action::Send(1),
                Action::Send(2),
                Action::Send(3),
                Action::Send(4),
            ],
            vec![Action::Recv],
            vec![Action::Recv],
            vec![Action::Recv],
            vec![Action::Recv],
            vec![Action::Recv], // rank 5: never messaged, stays dormant
        ],
        lazy: vec![false, true, true, true, true, true],
        mutation: Mutation::None,
    }
}

/// The library of small models the exhaustive explorer sweeps: 2–4
/// workers eager, up to 6 ranks with lazy materialization.
pub fn small_models() -> Vec<ModelSpec> {
    vec![
        pingpong(),
        ring(3),
        ring(4),
        fanin(),
        lazy_relay(),
        lazy_fan(),
    ]
}
