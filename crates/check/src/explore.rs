//! DPOR-lite interleaving exploration over scheduler models.
//!
//! [`explore`] enumerates *every* reachable interleaving of a
//! [`Model`]'s threads by depth-first search over the choice of which
//! enabled thread steps next, memoized on the exact state encoding
//! ([`Model::encode`]) so the search walks the state graph rather than
//! the (exponentially larger) schedule tree. The partial-order
//! reduction is structural rather than computed: everything executed
//! under the baton is already collapsed into single atomic steps by the
//! model, so only genuinely concurrent operations (latch and slot
//! accesses) branch.
//!
//! [`fuzz`] complements exhaustion with bounded random schedules — the
//! same state space walked with a seeded xorshift scheduler, thousands
//! of schedules per run, for models too large to exhaust.
//!
//! Both report the first [`Violation`] found together with the schedule
//! (sequence of thread ids) that reproduces it.

use crate::model::{Model, ModelSpec, Violation};
use std::collections::HashSet;

/// Exploration bounds. Defaults are sized for the small-model library:
/// exhaustion completes in well under a second per model.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum schedule depth (steps along one path) before the path is
    /// abandoned as truncated.
    pub max_depth: usize,
    /// Maximum distinct states to visit before the search is truncated.
    pub max_states: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_depth: 4_096,
            max_states: 1_000_000,
        }
    }
}

/// A violation plus the schedule that reproduces it: step the model's
/// threads in `schedule` order from the initial state.
#[derive(Debug, Clone)]
pub struct Found {
    /// What went wrong.
    pub violation: Violation,
    /// Thread ids, in step order, from the initial state to the
    /// violating step.
    pub schedule: Vec<usize>,
}

/// Exploration outcome.
#[derive(Debug, Clone)]
pub struct Report {
    /// Model name.
    pub model: String,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed (including revisits).
    pub transitions: u64,
    /// The first violation found, if any.
    pub violation: Option<Found>,
    /// Whether a bound cut the search short (a clean truncated report
    /// does NOT prove the model correct).
    pub truncated: bool,
}

impl Report {
    /// True when the search finished with no violation and no
    /// truncation.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

struct Frame {
    model: Model,
    choices: Vec<usize>,
    next: usize,
}

/// Exhaustively explores every interleaving of `spec` within `cfg`'s
/// bounds.
pub fn explore(spec: &ModelSpec, cfg: &Config) -> Report {
    let mut report = Report {
        model: spec.name.clone(),
        states: 0,
        transitions: 0,
        violation: None,
        truncated: false,
    };
    let root = Model::new(spec.clone());
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    visited.insert(root.encode());
    report.states = 1;
    let choices = root.enabled();
    if choices.is_empty() {
        report.violation = Some(Found {
            violation: Violation::Deadlock {
                blocked: root.blocked_threads(),
            },
            schedule: Vec::new(),
        });
        return report;
    }
    let mut stack = vec![Frame {
        model: root,
        choices,
        next: 0,
    }];

    while let Some(frame) = stack.last_mut() {
        if frame.next >= frame.choices.len() {
            stack.pop();
            continue;
        }
        let tid = frame.choices[frame.next];
        frame.next += 1;
        let mut m = frame.model.clone();
        report.transitions += 1;
        let schedule = |stack: &[Frame]| -> Vec<usize> {
            // Each frame's `choices[next - 1]` is the step that led to
            // the NEXT frame's model; for the top frame it is the step
            // just taken — together, the full path from the root.
            stack.iter().map(|f| f.choices[f.next - 1]).collect()
        };
        if let Err(violation) = m.step(tid) {
            report.violation = Some(Found {
                violation,
                schedule: schedule(&stack),
            });
            return report;
        }
        if m.terminal() {
            if let Err(violation) = m.check_terminal() {
                report.violation = Some(Found {
                    violation,
                    schedule: schedule(&stack),
                });
                return report;
            }
            continue;
        }
        if !visited.insert(m.encode()) {
            continue; // Reached a state already fully explored.
        }
        report.states += 1;
        if report.states >= cfg.max_states {
            report.truncated = true;
            continue;
        }
        let choices = m.enabled();
        if choices.is_empty() {
            report.violation = Some(Found {
                violation: Violation::Deadlock {
                    blocked: m.blocked_threads(),
                },
                schedule: schedule(&stack),
            });
            return report;
        }
        if stack.len() >= cfg.max_depth {
            report.truncated = true;
            continue;
        }
        stack.push(Frame {
            model: m,
            choices,
            next: 0,
        });
    }
    report
}

/// A tiny splitmix64 PRNG for schedule selection (self-contained; the
/// fuzzer must not depend on the engine's perturbation RNG it is meant
/// to check around).
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runs `schedules` seeded random interleavings of `spec`, each up to
/// `cfg.max_depth` steps. Complements [`explore`]: same model, same
/// violation detection, randomized rather than exhaustive coverage.
pub fn fuzz(spec: &ModelSpec, seed: u64, schedules: u32, cfg: &Config) -> Report {
    let mut report = Report {
        model: spec.name.clone(),
        states: 0,
        transitions: 0,
        violation: None,
        truncated: false,
    };
    for round in 0..schedules {
        let mut rng = SplitMix64(seed ^ (0x5bd1_e995u64.wrapping_mul(u64::from(round) + 1)));
        let mut m = Model::new(spec.clone());
        let mut schedule: Vec<usize> = Vec::new();
        loop {
            if m.terminal() {
                if let Err(violation) = m.check_terminal() {
                    report.violation = Some(Found {
                        violation,
                        schedule,
                    });
                    return report;
                }
                break;
            }
            let enabled = m.enabled();
            if enabled.is_empty() {
                report.violation = Some(Found {
                    violation: Violation::Deadlock {
                        blocked: m.blocked_threads(),
                    },
                    schedule,
                });
                return report;
            }
            if schedule.len() >= cfg.max_depth {
                report.truncated = true;
                break;
            }
            let tid = enabled[(rng.next() % enabled.len() as u64) as usize];
            schedule.push(tid);
            report.transitions += 1;
            if let Err(violation) = m.step(tid) {
                report.violation = Some(Found {
                    violation,
                    schedule,
                });
                return report;
            }
        }
        report.states += 1; // One completed schedule per round.
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{small_models, Mutation};

    /// Replays a reported schedule on a fresh model and returns the
    /// violation it reproduces (stepping error, empty-enabled deadlock,
    /// or terminal-check failure).
    fn replay(spec: &ModelSpec, schedule: &[usize]) -> Option<Violation> {
        let mut m = Model::new(spec.clone());
        for &tid in schedule {
            if let Err(v) = m.step(tid) {
                return Some(v);
            }
        }
        if m.terminal() {
            return m.check_terminal().err();
        }
        if m.enabled().is_empty() {
            return Some(Violation::Deadlock {
                blocked: m.blocked_threads(),
            });
        }
        None
    }

    #[test]
    fn clean_models_verify_exhaustively() {
        let cfg = Config::default();
        for spec in small_models() {
            let report = explore(&spec, &cfg);
            assert!(
                report.verified(),
                "{}: expected clean exhaustive sweep, got {:?} (truncated={})",
                report.model,
                report.violation.map(|f| f.violation),
                report.truncated
            );
            assert!(report.states > 1, "{}: search did not move", spec.name);
        }
    }

    #[test]
    fn lost_wakeup_mutant_deadlocks() {
        let spec = crate::model::pingpong().with_mutation(Mutation::LostWakeup);
        let report = explore(&spec, &Config::default());
        let found = report.violation.expect("lost wakeup must be caught");
        assert!(
            matches!(found.violation, Violation::Deadlock { .. }),
            "expected a deadlock, got {}",
            found.violation
        );
        assert_eq!(replay(&spec, &found.schedule), Some(found.violation));
    }

    #[test]
    fn dormant_undercount_mutant_underflows_the_counter() {
        let spec = crate::model::lazy_relay().with_mutation(Mutation::DormantUndercount);
        let report = explore(&spec, &Config::default());
        let found = report.violation.expect("dormant undercount must be caught");
        assert!(
            matches!(
                found.violation,
                Violation::CounterUnderflow | Violation::PrematureCompletion { .. }
            ),
            "expected a counter underflow, got {}",
            found.violation
        );
        assert_eq!(replay(&spec, &found.schedule), Some(found.violation));
    }

    #[test]
    fn dormant_uncounted_mutant_completes_prematurely() {
        let spec = crate::model::lazy_fan().with_mutation(Mutation::DormantUncounted);
        let report = explore(&spec, &Config::default());
        let found = report.violation.expect("uncounted dormant must be caught");
        assert!(
            matches!(found.violation, Violation::PrematureCompletion { .. }),
            "expected premature completion, got {}",
            found.violation
        );
        assert_eq!(replay(&spec, &found.schedule), Some(found.violation));
    }

    #[test]
    fn stale_waiting_mutant_double_resumes() {
        let spec = crate::model::fanin().with_mutation(Mutation::StaleWaiting);
        let report = explore(&spec, &Config::default());
        let found = report.violation.expect("stale waiting must be caught");
        assert!(
            matches!(
                found.violation,
                Violation::BadResume { .. } | Violation::SlotClobbered { .. }
            ),
            "expected a double resume, got {}",
            found.violation
        );
        assert_eq!(replay(&spec, &found.schedule), Some(found.violation));
    }

    #[test]
    fn every_mutant_is_caught_on_at_least_one_model() {
        let cfg = Config::default();
        for mutation in Mutation::all_mutants() {
            let caught = small_models().into_iter().any(|m| {
                explore(&m.with_mutation(mutation), &cfg)
                    .violation
                    .is_some()
            });
            assert!(
                caught,
                "mutant {mutation:?} survived the whole model library"
            );
        }
    }

    #[test]
    fn fuzz_is_clean_on_correct_models_and_catches_the_lost_wakeup() {
        let cfg = Config::default();
        for spec in small_models() {
            let report = fuzz(&spec, 0xC0FFEE, 200, &cfg);
            assert!(
                report.violation.is_none(),
                "{}: fuzz found a spurious violation",
                spec.name
            );
            assert_eq!(report.states, 200, "{}: schedules truncated", spec.name);
        }
        let mutant = crate::model::pingpong().with_mutation(Mutation::LostWakeup);
        let report = fuzz(&mutant, 0xC0FFEE, 2_000, &cfg);
        let found = report
            .violation
            .expect("fuzz must trip over the lost wakeup");
        assert_eq!(replay(&mutant, &found.schedule), Some(found.violation));
    }
}
