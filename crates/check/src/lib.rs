//! `pdceval-check` — static analysis for the evaluation pipeline.
//!
//! Two prongs, both aimed at the same goal: *prove* the properties the
//! engine's correctness rests on instead of assuming them.
//!
//! 1. **Scheduler model checking** ([`model`], [`explore`]). The
//!    direct-handoff pooled scheduler in `pdceval-simnet` relies on a
//!    handful of lock-free synchronization points (the one-token park
//!    latch, the single-value handoff slot, the dormant-inflight
//!    counter). Those are abstracted behind the `syncpoint` traits;
//!    here we re-implement them over explored, clonable state and drive
//!    a DPOR-lite exhaustive interleaving search over small worker/rank
//!    models, detecting deadlocks, lost wakeups, double resumes, and
//!    completion-detection races. Seeded mutations
//!    ([`model::Mutation`]) prove the explorer actually catches the bug
//!    classes it claims to.
//!
//! 2. **Spec/campaign linting ([`lint`]).** A whole-registry static
//!    analyzer over parsed spec files: dead models, unsatisfiable
//!    campaign grids, capacity mismatches, never-firing perturbation
//!    stanzas, slug collisions, and suspicious unit magnitudes. Every
//!    finding is a [`pdceval_mpt::diag::Diag`] with a stable code — the
//!    index lives in [`pdceval_mpt::diag`]'s module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod lint;
pub mod model;
