//! `pdceval lint` — a whole-registry static analyzer over spec files.
//!
//! Where `pdceval validate` checks that a file *parses* and its models
//! are internally consistent, the lint pass reasons about what the file
//! would *do*: which declared models can never run, which campaign
//! grids are statically empty, which perturbation stanzas can never
//! fire, and which calibrations look like unit mistakes. Every finding
//! is a [`Diag`] with a stable code — the index lives in
//! [`pdceval_mpt::diag`]'s module docs.
//!
//! The analyzer never registers anything: it resolves selectors the
//! same way loading would (file-declared models first, then the global
//! registry's built-ins) but purely by inspection, so linting a broken
//! file cannot poison the process-global registry.

use pdceval_campaign::campaigns::is_reserved_name;
use pdceval_campaign::reach::static_reach;
use pdceval_mpt::diag::Diag;
use pdceval_mpt::spec::{parse_spec, CampaignSpec, PortPolicy, SpecFile, ToolSpec};
use pdceval_mpt::{ModelRegistry, ToolKind};
use pdceval_simnet::net::LinkParams;
use pdceval_simnet::perturb::PerturbSpec;
use pdceval_simnet::platform::{Platform, PlatformSpec};
use std::collections::{BTreeMap, HashSet};

/// Lints a spec file: parses `text` and runs every lint class over it.
/// `path` is used for diagnostic locations only — the file is never
/// registered or executed.
pub fn lint_text(path: &str, text: &str) -> Vec<Diag> {
    let file = match parse_spec(text) {
        Ok(f) => f,
        Err(e) => {
            let line = (e.line > 0).then_some(e.line);
            return vec![Diag::error("L0001", e.message).at(path, line)];
        }
    };
    let lines = stanza_lines(text);
    let at = |d: Diag, kind: &str, slug: &str| -> Diag {
        let line = lines.get(&(kind.to_string(), slug.to_string())).copied();
        d.at(path, line)
    };

    let mut diags: Vec<Diag> = Vec::new();
    for (d, kind, slug) in selector_warnings_keyed(&file) {
        diags.push(at(d, kind, &slug));
    }
    for (d, kind, slug) in dead_models(&file) {
        diags.push(at(d, kind, &slug));
    }
    for (d, slug) in grid_reach(&file) {
        diags.push(at(d, "campaign", &slug));
    }
    for (d, slug) in perturb_stanzas(&file) {
        diags.push(at(d, "perturb", &slug));
    }
    for (d, kind, slug) in collisions(&file) {
        diags.push(at(d, kind, &slug));
    }
    for (d, slug) in unit_magnitudes(&file) {
        diags.push(at(d, "platform", &slug));
    }
    diags
}

/// The unknown-selector warning classes (L0011–L0014), with messages
/// byte-identical to the ones `pdceval validate` has always printed
/// (via [`Diag::render_bare`]); `pdceval lint` renders the same diags
/// with codes and locations.
pub fn selector_warnings(file: &SpecFile) -> Vec<Diag> {
    selector_warnings_keyed(file)
        .into_iter()
        .map(|(d, _, _)| d)
        .collect()
}

/// [`selector_warnings`] plus the `(stanza kind, slug)` each diagnostic
/// anchors to, so `lint_text` can attach source lines.
fn selector_warnings_keyed(file: &SpecFile) -> Vec<(Diag, &'static str, String)> {
    let registry = ModelRegistry::global();
    let known_platforms: HashSet<String> = file
        .platforms
        .iter()
        .map(|p| p.slug.clone())
        .chain(registry.platforms().into_iter().map(|p| p.slug()))
        .collect();
    let known_tools: HashSet<String> = file
        .tools
        .iter()
        .map(|t| t.slug.clone())
        .chain(registry.tools().into_iter().map(|t| t.slug()))
        .collect();
    let known_perturbs: HashSet<String> = file
        .perturbs
        .iter()
        .map(|p| p.slug.clone())
        .chain(registry.perturbs().into_iter().map(|p| p.slug()))
        .chain(std::iter::once("none".to_string()))
        .collect();

    let mut out = Vec::new();
    for t in &file.tools {
        let (key, slugs) = match &t.ports {
            PortPolicy::Allow(s) => ("ports.allow", s),
            PortPolicy::Deny(s) => ("ports.deny", s),
            PortPolicy::All { .. } => continue,
        };
        for slug in slugs.iter().filter(|s| !known_platforms.contains(*s)) {
            out.push((
                Diag::warning(
                    "L0011",
                    format!(
                        "tool '{}': {key} names '{slug}', which matches no platform in \
                         this file or the registry",
                        t.slug
                    ),
                ),
                "tool",
                t.slug.clone(),
            ));
        }
    }
    for c in &file.campaigns {
        for slug in c.tools.iter().filter(|s| !known_tools.contains(*s)) {
            out.push((
                Diag::warning(
                    "L0012",
                    format!(
                        "campaign '{}': tools names '{slug}', which matches no tool in \
                         this file or the registry",
                        c.slug
                    ),
                ),
                "campaign",
                c.slug.clone(),
            ));
        }
        for slug in c.platforms.iter().filter(|s| !known_platforms.contains(*s)) {
            out.push((
                Diag::warning(
                    "L0013",
                    format!(
                        "campaign '{}': platforms names '{slug}', which matches no \
                         platform in this file or the registry",
                        c.slug
                    ),
                ),
                "campaign",
                c.slug.clone(),
            ));
        }
        for slug in c.perturbs.iter().filter(|s| !known_perturbs.contains(*s)) {
            out.push((
                Diag::warning(
                    "L0014",
                    format!(
                        "campaign '{}': perturb names '{slug}', which matches no \
                         perturbation in this file or the registry",
                        c.slug
                    ),
                ),
                "campaign",
                c.slug.clone(),
            ));
        }
    }
    out
}

/// The tool models one campaign stanza sweeps, resolved the way loading
/// would: explicit slugs file-first then registry; an empty selector
/// means the file's own tools, falling back to the built-ins.
fn resolved_tools(c: &CampaignSpec, file: &SpecFile) -> Vec<ToolSpec> {
    if c.tools.is_empty() {
        if file.tools.is_empty() {
            return ToolKind::builtin()
                .iter()
                .map(|t| (*t.spec()).clone())
                .collect();
        }
        return file.tools.clone();
    }
    c.tools
        .iter()
        .filter_map(|s| {
            file.tools
                .iter()
                .find(|t| &t.slug == s)
                .cloned()
                .or_else(|| {
                    ModelRegistry::global()
                        .tool_by_slug(s)
                        .map(|id| (*id.spec()).clone())
                })
        })
        .collect()
}

/// Platform counterpart of [`resolved_tools`]; the built-in fallback is
/// the default pair the campaign loader uses.
fn resolved_platforms(c: &CampaignSpec, file: &SpecFile) -> Vec<PlatformSpec> {
    if c.platforms.is_empty() {
        if file.platforms.is_empty() {
            return [Platform::SUN_ETHERNET, Platform::SUN_ATM_LAN]
                .iter()
                .map(|p| (*p.spec()).clone())
                .collect();
        }
        return file.platforms.clone();
    }
    c.platforms
        .iter()
        .filter_map(|s| {
            file.platforms
                .iter()
                .find(|p| &p.slug == s)
                .cloned()
                .or_else(|| {
                    ModelRegistry::global()
                        .platform_by_slug(s)
                        .map(|id| (*id.spec()).clone())
                })
        })
        .collect()
}

/// L0101–L0103: models the file declares but no campaign in the file
/// can ever sweep. Only meaningful when the file declares campaigns —
/// a pure model library legitimately leaves referencing to others.
fn dead_models(file: &SpecFile) -> Vec<(Diag, &'static str, String)> {
    if file.campaigns.is_empty() {
        return Vec::new();
    }
    let mut live_tools: HashSet<String> = HashSet::new();
    let mut live_platforms: HashSet<String> = HashSet::new();
    let mut live_perturbs: HashSet<String> = HashSet::new();
    for c in &file.campaigns {
        live_tools.extend(resolved_tools(c, file).into_iter().map(|t| t.slug));
        live_platforms.extend(resolved_platforms(c, file).into_iter().map(|p| p.slug));
        live_perturbs.extend(c.perturbs.iter().cloned());
    }
    let mut out = Vec::new();
    for t in &file.tools {
        if !live_tools.contains(&t.slug) {
            out.push((
                Diag::warning(
                    "L0101",
                    format!(
                        "tool '{}' is declared but swept by no campaign in this file",
                        t.slug
                    ),
                ),
                "tool",
                t.slug.clone(),
            ));
        }
    }
    for p in &file.platforms {
        if !live_platforms.contains(&p.slug) {
            out.push((
                Diag::warning(
                    "L0102",
                    format!(
                        "platform '{}' is declared but swept by no campaign in this file",
                        p.slug
                    ),
                ),
                "platform",
                p.slug.clone(),
            ));
        }
    }
    for p in &file.perturbs {
        if !live_perturbs.contains(&p.slug) {
            out.push((
                Diag::warning(
                    "L0103",
                    format!(
                        "perturbation '{}' is declared but selected by no campaign in \
                         this file",
                        p.slug
                    ),
                ),
                "perturb",
                p.slug.clone(),
            ));
        }
    }
    out
}

/// L0201/L0202: per-campaign static grid reachability — an error when
/// the validity filter leaves nothing to run, a warning for each swept
/// rank count that exceeds a selected platform's capacity.
fn grid_reach(file: &SpecFile) -> Vec<(Diag, String)> {
    let mut out = Vec::new();
    for c in &file.campaigns {
        let tools = resolved_tools(c, file);
        let platforms = resolved_platforms(c, file);
        let tool_refs: Vec<&ToolSpec> = tools.iter().collect();
        let plat_refs: Vec<&PlatformSpec> = platforms.iter().collect();
        let Ok(reach) = static_reach(c, &tool_refs, &plat_refs) else {
            continue; // unknown kernels are a parse-time error already
        };
        if reach.is_unsatisfiable() {
            out.push((
                Diag::error(
                    "L0201",
                    format!(
                        "campaign '{}': the validity filter leaves no runnable scenario \
                         ({} grid point(s) enumerated, 0 valid)",
                        c.slug, reach.total
                    ),
                ),
                c.slug.clone(),
            ));
            continue;
        }
        for (platform, max_nodes, nprocs) in &reach.capacity_excess {
            out.push((
                Diag::warning(
                    "L0202",
                    format!(
                        "campaign '{}': nprocs {nprocs} exceeds platform '{platform}' \
                         capacity ({max_nodes} node(s)); those points are skipped",
                        c.slug
                    ),
                ),
                c.slug.clone(),
            ));
        }
    }
    out
}

/// Whether a perturbation draws from its seeded random streams (a crash
/// or straggler alone is deterministic — every seed produces the same
/// run).
fn is_randomized(p: &PerturbSpec) -> bool {
    p.jitter > 0.0 || p.congestion > 0.0 || p.loss > 0.0
}

/// L0301/L0302: perturbation stanzas that can never do what they
/// declare — a crash rank no referencing campaign ever materializes,
/// and randomized models swept with a single seed.
fn perturb_stanzas(file: &SpecFile) -> Vec<(Diag, String)> {
    let mut out = Vec::new();
    for p in &file.perturbs {
        let referencing: Vec<&CampaignSpec> = file
            .campaigns
            .iter()
            .filter(|c| c.perturbs.iter().any(|s| s == &p.slug))
            .collect();
        if referencing.is_empty() {
            continue; // dead stanza — L0103's finding, not ours
        }
        if let Some(rank) = p.crash_rank {
            let max_nprocs = referencing
                .iter()
                .flat_map(|c| c.nprocs.iter().copied())
                .max()
                .unwrap_or(0);
            if rank >= max_nprocs {
                out.push((
                    Diag::warning(
                        "L0301",
                        format!(
                            "perturbation '{}': crash.rank {rank} never exists — the \
                             campaigns sweeping it stop at nprocs {max_nprocs}",
                            p.slug
                        ),
                    ),
                    p.slug.clone(),
                ));
            }
        }
        if is_randomized(p) {
            for c in referencing.iter().filter(|c| c.seeds == 1) {
                out.push((
                    Diag::warning(
                        "L0302",
                        format!(
                            "campaign '{}': sweeps randomized perturbation '{}' with a \
                             single seed — one sample of a distribution; raise 'seeds'",
                            c.slug, p.slug
                        ),
                    ),
                    p.slug.clone(),
                ));
            }
        }
    }
    out
}

/// L0401–L0403: slug collisions. Within the file, one slug naming
/// stanzas in different namespaces is legal but confusing (L0401);
/// shadowing an already-registered model with *different* content
/// (L0402) or colliding with a built-in campaign name (L0403) would
/// make the load fail, so those are errors. Re-declaring a registered
/// model byte-identically is the supported idempotent load and stays
/// silent.
fn collisions(file: &SpecFile) -> Vec<(Diag, &'static str, String)> {
    let mut out = Vec::new();
    let mut seen: BTreeMap<&str, (&'static str, &'static str)> = BTreeMap::new();
    let namespaces: Vec<(&'static str, Vec<&str>)> = vec![
        ("tool", file.tools.iter().map(|t| t.slug.as_str()).collect()),
        (
            "platform",
            file.platforms.iter().map(|p| p.slug.as_str()).collect(),
        ),
        (
            "perturb",
            file.perturbs.iter().map(|p| p.slug.as_str()).collect(),
        ),
        (
            "campaign",
            file.campaigns.iter().map(|c| c.slug.as_str()).collect(),
        ),
    ];
    for (kind, slugs) in &namespaces {
        for slug in slugs {
            match seen.get(slug) {
                None => {
                    seen.insert(slug, (kind, kind));
                }
                Some((first, _)) => {
                    out.push((
                        Diag::warning(
                            "L0401",
                            format!(
                                "slug '{slug}' names both a {first} and a {kind} in this \
                                 file — scenario keys and selectors will read ambiguously"
                            ),
                        ),
                        *kind,
                        (*slug).to_string(),
                    ));
                }
            }
        }
    }

    let registry = ModelRegistry::global();
    for t in &file.tools {
        if let Some(id) = registry.tool_by_slug(&t.slug) {
            if *id.spec() != *t {
                out.push((
                    Diag::error(
                        "L0402",
                        format!(
                            "tool '{}' shadows an already-registered tool with different \
                             calibration — loading this file would fail",
                            t.slug
                        ),
                    ),
                    "tool",
                    t.slug.clone(),
                ));
            }
        }
    }
    for p in &file.platforms {
        if let Some(id) = registry.platform_by_slug(&p.slug) {
            if *id.spec() != *p {
                out.push((
                    Diag::error(
                        "L0402",
                        format!(
                            "platform '{}' shadows an already-registered platform with \
                             different calibration — loading this file would fail",
                            p.slug
                        ),
                    ),
                    "platform",
                    p.slug.clone(),
                ));
            }
        }
    }
    for p in &file.perturbs {
        if let Some(id) = registry.perturb_by_slug(&p.slug) {
            if *id.spec() != *p {
                out.push((
                    Diag::error(
                        "L0402",
                        format!(
                            "perturbation '{}' shadows an already-registered perturbation \
                             with different knobs — loading this file would fail",
                            p.slug
                        ),
                    ),
                    "perturb",
                    p.slug.clone(),
                ));
            }
        }
    }
    for c in &file.campaigns {
        if is_reserved_name(&c.slug) {
            out.push((
                Diag::error(
                    "L0403",
                    format!(
                        "campaign '{}' collides with the built-in campaign of the same \
                         name — loading this file would fail",
                        c.slug
                    ),
                ),
                "campaign",
                c.slug.clone(),
            ));
        } else if let Some(reg) = registry.campaign_by_slug(&c.slug) {
            if *reg != *c {
                out.push((
                    Diag::error(
                        "L0403",
                        format!(
                            "campaign '{}' collides with an already-registered campaign \
                             of the same name — loading this file would fail",
                            c.slug
                        ),
                    ),
                    "campaign",
                    c.slug.clone(),
                ));
            }
        }
    }
    out
}

/// How far off (as a ratio) a link calibration may sit from every peer
/// before it reads as a unit mistake. The built-in 1995 testbeds span
/// 3.2–127 Mbps and 60–420 µs — a 1000× leave-one-out band around the
/// declared population keeps legitimately modern fabrics (tens of Gbps,
/// microsecond latencies) clean while catching ms-vs-µs and
/// bits-vs-bytes slips.
const MAGNITUDE_BAND: f64 = 1000.0;

/// Every link calibration a platform declares, flattened:
/// per-group links plus the optional inter-group class.
fn platform_links(p: &PlatformSpec) -> Vec<&LinkParams> {
    p.topology
        .groups
        .iter()
        .map(|g| &g.link)
        .chain(p.topology.inter.as_ref())
        .collect()
}

/// L0501: leave-one-out unit-magnitude screening. Each file-declared
/// link's bandwidth and latency are compared against every *other*
/// calibrated link (the rest of the file plus the built-in platforms);
/// a value ≥1000× above or below the entire peer population is almost
/// always a unit slip (ms in a µs field, bytes/s in Mbps).
fn unit_magnitudes(file: &SpecFile) -> Vec<(Diag, String)> {
    struct Cal {
        platform: Option<String>, // None = built-in peer
        link: String,
        bandwidth_mbps: f64,
        latency_us: f64,
    }
    let mut cals: Vec<Cal> = Vec::new();
    for p in Platform::all() {
        let spec = p.spec();
        for l in platform_links(&spec) {
            cals.push(Cal {
                platform: None,
                link: l.name.clone(),
                bandwidth_mbps: l.bandwidth_mbps,
                latency_us: l.latency.as_micros_f64(),
            });
        }
    }
    for p in &file.platforms {
        for l in platform_links(p) {
            cals.push(Cal {
                platform: Some(p.slug.clone()),
                link: l.name.clone(),
                bandwidth_mbps: l.bandwidth_mbps,
                latency_us: l.latency.as_micros_f64(),
            });
        }
    }

    let mut out = Vec::new();
    for i in 0..cals.len() {
        let Some(pslug) = cals[i].platform.clone() else {
            continue; // built-ins are the reference population, not subjects
        };
        for (field, unit, value) in [
            ("bandwidth", "Mbps", cals[i].bandwidth_mbps),
            ("latency", "us", cals[i].latency_us),
        ] {
            let peers = cals
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| match field {
                    "bandwidth" => c.bandwidth_mbps,
                    _ => c.latency_us,
                })
                .filter(|v| *v > 0.0);
            let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
            for v in peers {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi == 0.0 {
                continue; // no positive peers to compare against
            }
            let suspicious =
                value > hi * MAGNITUDE_BAND || (value > 0.0 && value < lo / MAGNITUDE_BAND);
            if suspicious {
                out.push((
                    Diag::warning(
                        "L0501",
                        format!(
                            "platform '{pslug}': link '{}' {field} {value} {unit} is more \
                             than 1000x outside every other calibrated link \
                             ({lo}..{hi} {unit}) — check the units",
                            cals[i].link
                        ),
                    ),
                    pslug.clone(),
                ));
            }
        }
    }
    out
}

/// Maps each stanza header `[kind slug ...]` to its 1-based line, so
/// diagnostics computed from parsed specs can point back into the
/// source. Group/link stanzas attribute to their owning platform's
/// slug.
fn stanza_lines(text: &str) -> BTreeMap<(String, String), usize> {
    let mut map = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) else {
            continue;
        };
        let mut parts = inner.split_whitespace();
        let (Some(kind), Some(slug)) = (parts.next(), parts.next()) else {
            continue;
        };
        map.entry((kind.to_string(), slug.to_string()))
            .or_insert(i + 1);
    }
    map
}
