//! Platforms as data: [`PlatformSpec`] models and [`PlatformId`] handles.
//!
//! A platform pairs a [`Topology`] — named host groups, each with an
//! intra-group link class, plus the inter-group link — with a maximum
//! node count. The paper's six testbed configurations (§3.1) ship as
//! built-in single-group topologies ([`crate::builtin`]); arbitrary
//! further platforms, homogeneous or heterogeneous, can be registered at
//! run time from spec files without touching any code.
//!
//! [`PlatformId`] is a cheap `Copy` handle into the process-global
//! registry ([`crate::registry`]); the legacy name [`Platform`] is kept
//! as an alias so existing call sites keep reading naturally.

use crate::host::HostSpec;
use crate::net::LinkParams;
use crate::registry;
use crate::topology::Topology;
use std::fmt;
use std::sync::Arc;

/// A registered platform model. See the module docs.
///
/// The legacy enum-era name is kept as an alias: a `Platform` *is* a
/// `PlatformId`.
pub type Platform = PlatformId;

/// Cheap copyable handle to a registered [`PlatformSpec`].
///
/// Ordering and hashing follow registration order, which for the
/// built-ins is the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlatformId(u16);

/// The full description of one platform: everything the runtime needs to
/// instantiate a simulated cluster, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Display name matching the paper's terminology, e.g. `"SUN/Ethernet"`.
    pub name: String,
    /// Stable lower-case slug used in scenario/store keys, e.g. `"sun-eth"`.
    pub slug: String,
    /// The platform's topology: host groups and link classes. Homogeneous
    /// platforms (all built-ins) are single-group topologies.
    pub topology: Topology,
    /// Maximum number of nodes available (the topology's total capacity).
    pub max_nodes: usize,
    /// Whether the platform crosses a wide-area network.
    pub wan: bool,
}

impl PlatformSpec {
    /// Builds a homogeneous platform spec: `max_nodes` hosts of one
    /// model on one link — the shape of every built-in testbed.
    pub fn homogeneous(
        name: impl Into<String>,
        slug: impl Into<String>,
        host: HostSpec,
        link: LinkParams,
        max_nodes: usize,
        wan: bool,
    ) -> PlatformSpec {
        PlatformSpec {
            name: name.into(),
            slug: slug.into(),
            topology: Topology::homogeneous(host, link, max_nodes),
            max_nodes,
            wan,
        }
    }

    /// The primary (first) group's host model. For homogeneous platforms
    /// this is *the* host model.
    pub fn host(&self) -> &HostSpec {
        &self.topology.primary().host
    }

    /// The primary (first) group's link class. For homogeneous platforms
    /// this is *the* interconnect.
    pub fn link(&self) -> &LinkParams {
        &self.topology.primary().link
    }

    /// Checks the spec for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("platform name must not be empty".to_string());
        }
        if self.slug.is_empty() || !is_slug(&self.slug) {
            return Err(format!(
                "platform slug '{}' must be non-empty lower-case [a-z0-9-]",
                self.slug
            ));
        }
        if self.max_nodes == 0 {
            return Err(format!("platform '{}': max_nodes must be > 0", self.slug));
        }
        self.topology
            .validate(&format!("platform '{}'", self.slug))?;
        let capacity = self.topology.total_hosts();
        if capacity != self.max_nodes {
            return Err(format!(
                "platform '{}': group counts sum to {capacity} but max_nodes is {}",
                self.slug, self.max_nodes
            ));
        }
        Ok(())
    }
}

/// Whether `s` is a valid registry slug (non-empty lower-case
/// `[a-z0-9-]`). Tool and platform slugs share one scenario/store key
/// namespace, so both registries validate with this single helper.
pub fn is_slug(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

impl PlatformId {
    /// SUN SPARCstation ELCs on a shared 10 Mb/s Ethernet LAN.
    pub const SUN_ETHERNET: PlatformId = PlatformId(0);
    /// SUN SPARCstation IPXs on an ATM LAN (FORE switch, TAXI interfaces).
    pub const SUN_ATM_LAN: PlatformId = PlatformId(1);
    /// SUN SPARCstation IPXs across the NYNET ATM WAN
    /// (Syracuse University to Rome Laboratory).
    pub const SUN_ATM_WAN: PlatformId = PlatformId(2);
    /// DEC Alpha workstations on switched FDDI segments.
    pub const ALPHA_FDDI: PlatformId = PlatformId(3);
    /// IBM SP-1, RS/6000 370 nodes on the Allnode crossbar switch.
    pub const SP1_SWITCH: PlatformId = PlatformId(4);
    /// IBM SP-1 nodes on the machine's dedicated Ethernet.
    pub const SP1_ETHERNET: PlatformId = PlatformId(5);

    /// The paper's six testbeds, in presentation order. Unlike
    /// [`PlatformId::all`], this never includes spec-registered
    /// platforms — the default campaigns pin exactly these.
    pub fn builtin() -> [PlatformId; 6] {
        [
            PlatformId::SUN_ETHERNET,
            PlatformId::SUN_ATM_LAN,
            PlatformId::SUN_ATM_WAN,
            PlatformId::ALPHA_FDDI,
            PlatformId::SP1_SWITCH,
            PlatformId::SP1_ETHERNET,
        ]
    }

    /// Every registered platform (built-ins plus spec-registered), in
    /// registration order.
    pub fn all() -> Vec<PlatformId> {
        registry::all_platforms()
    }

    /// Looks a platform up by its stable slug.
    pub fn by_slug(slug: &str) -> Option<PlatformId> {
        registry::find_platform(slug)
    }

    /// The handle's dense registry index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The handle for registry index `i` (crate-internal; issued by the
    /// registry only).
    pub(crate) fn from_index(i: usize) -> PlatformId {
        PlatformId(u16::try_from(i).expect("platform registry overflow"))
    }

    /// The full spec this handle resolves to.
    pub fn spec(self) -> Arc<PlatformSpec> {
        registry::platform_spec(self)
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> String {
        self.spec().name.clone()
    }

    /// Stable lower-case slug used in scenario/store keys.
    pub fn slug(self) -> String {
        self.spec().slug.clone()
    }

    /// The primary group's calibrated link parameters (the interconnect,
    /// for homogeneous platforms).
    pub fn link(self) -> LinkParams {
        self.spec().link().clone()
    }

    /// The primary group's host model (the host model, for homogeneous
    /// platforms).
    pub fn host(self) -> HostSpec {
        self.spec().host().clone()
    }

    /// The platform's topology (host groups and link classes).
    pub fn topology(self) -> Topology {
        self.spec().topology.clone()
    }

    /// Whether this platform mixes more than one host group.
    pub fn is_heterogeneous(self) -> bool {
        self.spec().topology.is_heterogeneous()
    }

    /// Maximum number of nodes available.
    pub fn max_nodes(self) -> usize {
        self.spec().max_nodes
    }

    /// Whether the platform crosses a wide-area network.
    pub fn is_wan(self) -> bool {
        self.spec().wan
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkKind;

    #[test]
    fn every_builtin_platform_is_consistent() {
        for p in Platform::builtin() {
            assert!(p.max_nodes() >= 4, "{p} too small for the benchmarks");
            assert!(!p.name().is_empty());
            assert!(p.link().bandwidth_mbps > 0.0);
            assert!(p.host().mflops > 0.0);
            assert!(p.spec().validate().is_ok());
        }
    }

    #[test]
    fn wan_flag() {
        assert!(Platform::SUN_ATM_WAN.is_wan());
        assert!(!Platform::SUN_ETHERNET.is_wan());
    }

    #[test]
    fn alpha_cluster_uses_alphas_on_fddi() {
        let p = Platform::ALPHA_FDDI;
        assert_eq!(p.link(), NetworkKind::Fddi.params());
        assert!(p.host().name.contains("Alpha"));
    }

    #[test]
    fn nynet_limited_to_four_nodes() {
        assert_eq!(Platform::SUN_ATM_WAN.max_nodes(), 4);
    }

    #[test]
    fn all_contains_the_builtins_in_order() {
        let all = Platform::all();
        assert_eq!(&all[..6], &Platform::builtin()[..]);
    }

    #[test]
    fn builtins_are_single_group_topologies() {
        for p in Platform::builtin() {
            let spec = p.spec();
            assert!(!p.is_heterogeneous(), "{p}");
            assert!(spec.topology.is_homogeneous_shorthand(), "{p}");
            assert_eq!(spec.topology.total_hosts(), spec.max_nodes, "{p}");
            assert_eq!(spec.topology.hetero_slug(), None, "{p}");
        }
    }

    #[test]
    fn capacity_must_match_max_nodes() {
        let mut spec = (*Platform::SUN_ETHERNET.spec()).clone();
        spec.slug = "cap-mismatch".to_string();
        spec.max_nodes += 1;
        let err = spec.validate().unwrap_err();
        assert!(err.contains("sum to"), "{err}");
    }

    #[test]
    fn slug_validation() {
        assert!(is_slug("sun-eth"));
        assert!(is_slug("x100"));
        assert!(!is_slug("Sun"));
        assert!(!is_slug("a b"));
        assert!(!is_slug(""));
    }
}
