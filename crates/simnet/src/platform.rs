//! The five experimentation platforms of the paper's §3.1.
//!
//! A [`Platform`] pairs a host model with an interconnect and a maximum
//! node count, matching the NPAC testbed configurations on which the paper
//! evaluated Express, p4 and PVM.

use crate::host::HostSpec;
use crate::net::NetworkKind;
use std::fmt;

/// One of the paper's testbed configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// SUN SPARCstation ELCs on a shared 10 Mb/s Ethernet LAN.
    SunEthernet,
    /// SUN SPARCstation IPXs on an ATM LAN (FORE switch, TAXI interfaces).
    SunAtmLan,
    /// SUN SPARCstation IPXs across the NYNET ATM WAN
    /// (Syracuse University to Rome Laboratory).
    SunAtmWan,
    /// DEC Alpha workstations on switched FDDI segments.
    AlphaFddi,
    /// IBM SP-1, RS/6000 370 nodes on the Allnode crossbar switch.
    Sp1Switch,
    /// IBM SP-1 nodes on the machine's dedicated Ethernet.
    Sp1Ethernet,
}

impl Platform {
    /// All platforms, in the paper's presentation order.
    pub fn all() -> [Platform; 6] {
        [
            Platform::SunEthernet,
            Platform::SunAtmLan,
            Platform::SunAtmWan,
            Platform::AlphaFddi,
            Platform::Sp1Switch,
            Platform::Sp1Ethernet,
        ]
    }

    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::SunEthernet => "SUN/Ethernet",
            Platform::SunAtmLan => "SUN/ATM LAN",
            Platform::SunAtmWan => "SUN/ATM WAN (NYNET)",
            Platform::AlphaFddi => "ALPHA/FDDI",
            Platform::Sp1Switch => "IBM-SP1 (Switch)",
            Platform::Sp1Ethernet => "IBM-SP1 (Ethernet)",
        }
    }

    /// The interconnect of this platform.
    pub fn network(&self) -> NetworkKind {
        match self {
            Platform::SunEthernet => NetworkKind::Ethernet,
            Platform::SunAtmLan => NetworkKind::AtmLan,
            Platform::SunAtmWan => NetworkKind::AtmWan,
            Platform::AlphaFddi => NetworkKind::Fddi,
            Platform::Sp1Switch => NetworkKind::Allnode,
            Platform::Sp1Ethernet => NetworkKind::DedicatedEthernet,
        }
    }

    /// The host model populating this platform (homogeneous clusters).
    pub fn host(&self) -> HostSpec {
        match self {
            Platform::SunEthernet => HostSpec::sun_elc(),
            Platform::SunAtmLan | Platform::SunAtmWan => HostSpec::sun_ipx(),
            Platform::AlphaFddi => HostSpec::alpha_axp(),
            Platform::Sp1Switch | Platform::Sp1Ethernet => HostSpec::rs6000_370(),
        }
    }

    /// Maximum number of nodes available in the paper's experiments.
    pub fn max_nodes(&self) -> usize {
        match self {
            Platform::SunEthernet => 8,
            Platform::SunAtmLan => 8,
            // The NYNET experiments used at most 4 workstations (Figure 7).
            Platform::SunAtmWan => 4,
            Platform::AlphaFddi => 8,
            Platform::Sp1Switch | Platform::Sp1Ethernet => 16,
        }
    }

    /// Whether the platform crosses a wide-area network.
    pub fn is_wan(&self) -> bool {
        matches!(self, Platform::SunAtmWan)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_platform_is_consistent() {
        for p in Platform::all() {
            assert!(p.max_nodes() >= 4, "{p} too small for the benchmarks");
            assert!(!p.name().is_empty());
            let _ = p.network().params();
            let _ = p.host();
        }
    }

    #[test]
    fn wan_flag() {
        assert!(Platform::SunAtmWan.is_wan());
        assert!(!Platform::SunEthernet.is_wan());
    }

    #[test]
    fn alpha_cluster_uses_alphas_on_fddi() {
        let p = Platform::AlphaFddi;
        assert_eq!(p.network(), NetworkKind::Fddi);
        assert!(p.host().name.contains("Alpha"));
    }

    #[test]
    fn nynet_limited_to_four_nodes() {
        assert_eq!(Platform::SunAtmWan.max_nodes(), 4);
    }
}
