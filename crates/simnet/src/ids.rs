//! Identifier newtypes used throughout the simulator.

use std::fmt;

/// Identifies a simulated process within one [`crate::engine::Simulation`].
///
/// Process ids are dense indices assigned in spawn order, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Returns the id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Identifies a FIFO service resource (a wire, a NIC, a daemon, a CPU)
/// within one [`crate::engine::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Returns the id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// A message tag. Interpretation is up to the tool layer; the simulator
/// only uses tags for receive matching.
pub type Tag = u32;

/// A lazily rendered entity name: either owned up front, or a
/// `(prefix, index)` pair formatted only when the name is actually needed
/// (outcomes, errors, statistics). Keeps `format!` off the per-spawn and
/// per-resource registration paths.
#[derive(Debug, Clone)]
pub(crate) enum LazyName {
    /// A caller-provided name, stored as given.
    Owned(Box<str>),
    /// `{prefix}{index}`, rendered on demand.
    Indexed(&'static str, u32),
}

impl LazyName {
    pub(crate) fn render(&self) -> String {
        match self {
            LazyName::Owned(s) => s.to_string(),
            LazyName::Indexed(prefix, i) => format!("{prefix}{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_index() {
        assert_eq!(ProcId(3).to_string(), "proc#3");
        assert_eq!(ProcId(3).index(), 3);
        assert_eq!(ResourceId(7).to_string(), "res#7");
        assert_eq!(ResourceId(7).index(), 7);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ProcId(1) < ProcId(2));
        assert!(ResourceId(0) < ResourceId(1));
    }
}
