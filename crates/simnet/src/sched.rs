//! The pooled direct-handoff scheduler substrate.
//!
//! The engine runs each simulated process on a dedicated OS thread so that
//! process code can block in natural style, but *exactly one* of those
//! threads runs at any instant: control ping-pongs between the engine
//! thread and the current process thread on every simulator call. This
//! module provides the two primitives that make that ping-pong cheap:
//!
//! * [`ParkCell`] — a one-token park/unpark latch (crossbeam-`Parker`
//!   style) built on [`std::thread::park`]. Waking the exact next thread
//!   costs one atomic store + one `unpark`, with no queue or allocation.
//! * [`HandoffSlot`] — a single-value SPSC slot whose release/acquire flag
//!   transfers a request or resume between the two sides without a
//!   channel. Together with `ParkCell` this forms a *direct handoff*: the
//!   engine writes the resume into the process's slot and unparks it; the
//!   process writes its next request into the engine's inbox slot and
//!   unparks the engine.
//!
//! Worker threads are *pooled globally*: when a process finishes (or the
//! simulation is torn down), its thread parks itself on the pool's free
//! list instead of exiting, and the next [`spawn`](crate::engine::Simulation::spawn)
//! — in the same simulation or any later one — reuses it. Repeated
//! `Simulation::run` calls (parameter sweeps, the paper's node sweeps)
//! therefore stop paying thread-creation cost after warm-up.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, Thread};

use crate::syncpoint::{SyncPark, SyncSlot};

/// Idle workers kept parked in the global pool; threads beyond this exit
/// instead of returning (bounds idle-thread memory under bursty use).
const MAX_POOLED_WORKERS: usize = 256;

/// Bounded spin iterations attempted before falling back to a futex park,
/// when the machine has more than one core.
const SPIN_BEFORE_PARK: u32 = 128;

/// How many times [`ParkCell::park`] polls the token before parking the
/// OS thread.
///
/// On a multi-core machine the engine-to-process handoff usually deposits
/// the token within a few hundred nanoseconds of the owner blocking, so a
/// brief spin dodges the full futex round trip on the scheduler's hottest
/// path. On a single core, spinning only steals cycles from the thread
/// that would deposit the token, so the spin is disabled entirely.
pub(crate) fn spin_iters() -> u32 {
    static SPIN: OnceLock<u32> = OnceLock::new();
    *SPIN.get_or_init(|| match thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_BEFORE_PARK,
        _ => 0,
    })
}

// ---------------------------------------------------------------------------
// Park/unpark latch
// ---------------------------------------------------------------------------

/// A one-token park/unpark latch bound to its owner thread.
///
/// Exactly one thread (the owner, captured at construction) may call
/// [`ParkCell::park`]; any thread may call [`ParkCell::unpark`]. A token
/// stored by `unpark` makes the next `park` return immediately, so the
/// wake is never lost even if the owner had not parked yet.
#[derive(Debug)]
pub(crate) struct ParkCell {
    token: AtomicBool,
    owner: Thread,
}

impl ParkCell {
    /// Creates a latch owned by the calling thread.
    pub(crate) fn for_current() -> Arc<ParkCell> {
        Arc::new(ParkCell {
            token: AtomicBool::new(false),
            owner: thread::current(),
        })
    }

    /// Blocks the owner thread until a token is available, consuming it.
    /// Tolerates spurious wakeups from [`std::thread::park`].
    ///
    /// On multi-core machines the owner first spins briefly
    /// ([`spin_iters`] polls): the depositing thread is usually mid-store
    /// on another core, and catching the token in the spin window skips
    /// the futex park/unpark round trip entirely.
    pub(crate) fn park(&self) {
        debug_assert_eq!(
            thread::current().id(),
            self.owner.id(),
            "ParkCell parked from a non-owner thread"
        );
        for _ in 0..spin_iters() {
            // Cheap relaxed poll; only attempt the exclusive swap once the
            // token is visible, to keep the line shared while spinning.
            if self.token.load(Ordering::Relaxed) && self.try_consume() {
                return;
            }
            std::hint::spin_loop();
        }
        while !self.try_consume() {
            thread::park();
        }
    }

    /// Deposits a token and wakes the owner. See
    /// [`SyncPark::deposit_and_wake`] for the ordering contract.
    pub(crate) fn unpark(&self) {
        self.deposit_and_wake();
    }
}

impl SyncPark for ParkCell {
    #[inline]
    fn try_consume(&self) -> bool {
        self.token.swap(false, Ordering::Acquire)
    }

    /// The release store pairs with the acquire swap in
    /// [`SyncPark::try_consume`], so writes made before the deposit are
    /// visible to the owner when it resumes.
    #[inline]
    fn deposit_and_wake(&self) {
        self.token.store(true, Ordering::Release);
        self.owner.unpark();
    }
}

// ---------------------------------------------------------------------------
// Single-value handoff slot
// ---------------------------------------------------------------------------

/// A single-producer/single-consumer, single-value transfer slot.
///
/// The scheduling protocol guarantees strict alternation (a side never
/// writes until the other side has taken the previous value), so one slot
/// per direction suffices and no queue or allocation is involved.
#[derive(Debug)]
pub(crate) struct HandoffSlot<T> {
    full: AtomicBool,
    value: std::cell::UnsafeCell<Option<T>>,
}

// SAFETY: access to `value` is serialized by the `full` flag's
// release/acquire pair — the producer writes `value` before the release
// store of `full = true`, and the consumer reads it only after the acquire
// load observes `true` (and vice versa for emptying).
unsafe impl<T: Send> Sync for HandoffSlot<T> {}

impl<T> Default for HandoffSlot<T> {
    fn default() -> Self {
        HandoffSlot {
            full: AtomicBool::new(false),
            value: std::cell::UnsafeCell::new(None),
        }
    }
}

impl<T> HandoffSlot<T> {
    /// Deposits a value. The slot must be empty (protocol invariant).
    pub(crate) fn put(&self, v: T) {
        let clean = self.deposit(v);
        debug_assert!(clean, "handoff slot clobbered");
    }

    /// Removes the value if one is present.
    pub(crate) fn try_take(&self) -> Option<T> {
        self.withdraw()
    }
}

impl<T> SyncSlot<T> for HandoffSlot<T> {
    #[inline]
    fn deposit(&self, v: T) -> bool {
        let clean = !self.full.load(Ordering::Relaxed);
        // SAFETY: the slot is empty under the alternation protocol, so
        // the consumer is not reading it. (If the protocol were violated
        // the caller debug-asserts; the release store below still keeps
        // the write itself well-ordered.)
        unsafe {
            *self.value.get() = Some(v);
        }
        self.full.store(true, Ordering::Release);
        clean
    }

    #[inline]
    fn withdraw(&self) -> Option<T> {
        if self.full.load(Ordering::Acquire) {
            // SAFETY: `full` is true, so the producer's write is complete
            // and it will not write again until we clear the flag.
            let v = unsafe { (*self.value.get()).take() };
            self.full.store(false, Ordering::Release);
            v
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A job executed on a pooled worker thread. Receives the worker's own
/// [`ParkCell`] so the job can park itself awaiting engine resumes.
pub(crate) type Job = Box<dyn FnOnce(&Arc<ParkCell>) + Send + 'static>;

struct WorkerHandle {
    park: Arc<ParkCell>,
    job: Arc<Mutex<Option<Job>>>,
}

/// A pooled worker leased to one simulated process for the duration of its
/// job. Exposes the worker's latch so the engine can wake it for resumes.
pub(crate) struct WorkerLease {
    park: Arc<ParkCell>,
}

impl WorkerLease {
    /// The worker's park latch (for resume wakes).
    pub(crate) fn unparker(&self) -> Arc<ParkCell> {
        Arc::clone(&self.park)
    }
}

fn pool() -> &'static Mutex<Vec<WorkerHandle>> {
    static POOL: OnceLock<Mutex<Vec<WorkerHandle>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Acquires a worker (reusing a pooled one if available) and starts `job`
/// on it. Returns a lease holding the worker's wake latch.
pub(crate) fn spawn_job(job: Job) -> WorkerLease {
    let reused = pool().lock().expect("worker pool poisoned").pop();
    match reused {
        Some(handle) => {
            let park = Arc::clone(&handle.park);
            *handle.job.lock().expect("worker job slot poisoned") = Some(job);
            handle.park.unpark();
            // The handle is dropped here; the worker re-registers itself
            // in the pool when the job completes.
            WorkerLease { park }
        }
        None => {
            let job_slot: Arc<Mutex<Option<Job>>> = Arc::new(Mutex::new(Some(job)));
            let slot2 = Arc::clone(&job_slot);
            let (park_tx, park_rx) = std::sync::mpsc::sync_channel(1);
            thread::Builder::new()
                .name("simnet-worker".to_string())
                .spawn(move || {
                    let park = ParkCell::for_current();
                    park_tx
                        .send(Arc::clone(&park))
                        .expect("worker registration failed");
                    worker_main(park, slot2);
                })
                .expect("failed to spawn simnet worker thread");
            let park = park_rx.recv().expect("worker startup failed");
            WorkerLease { park }
        }
    }
}

fn worker_main(park: Arc<ParkCell>, job_slot: Arc<Mutex<Option<Job>>>) {
    loop {
        let job = loop {
            if let Some(j) = job_slot.lock().expect("worker job slot poisoned").take() {
                break j;
            }
            park.park();
        };
        // Jobs handle simulated-process panics internally (the engine
        // tears processes down via an unwind payload); a panic escaping a
        // job is an engine bug, but must not poison the pool either way.
        let _ = catch_unwind(AssertUnwindSafe(|| job(&park)));
        let mut pool = pool().lock().expect("worker pool poisoned");
        if pool.len() >= MAX_POOLED_WORKERS {
            return; // Pool saturated: let this thread exit.
        }
        pool.push(WorkerHandle {
            park: Arc::clone(&park),
            job: Arc::clone(&job_slot),
        });
    }
}

/// Number of idle workers currently parked in the pool (test aid).
#[cfg(test)]
pub(crate) fn pooled_workers() -> usize {
    pool().lock().expect("worker pool poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn handoff_slot_transfers_values() {
        let slot: HandoffSlot<u32> = HandoffSlot::default();
        assert_eq!(slot.try_take(), None);
        slot.put(7);
        assert_eq!(slot.try_take(), Some(7));
        assert_eq!(slot.try_take(), None);
        slot.put(8);
        assert_eq!(slot.try_take(), Some(8));
    }

    #[test]
    fn park_cell_token_is_not_lost() {
        let cell = ParkCell::for_current();
        cell.unpark(); // Token deposited before park.
        cell.park(); // Returns immediately.
    }

    #[test]
    fn jobs_run_and_workers_return_to_pool() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut leases = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&counter);
            leases.push(spawn_job(Box::new(move |_park| {
                c.fetch_add(1, Ordering::SeqCst);
            })));
        }
        // Jobs are asynchronous; wait for them to land.
        for _ in 0..100 {
            if counter.load(Ordering::SeqCst) == 4 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        // Workers drift back into the pool after completing.
        for _ in 0..100 {
            if pooled_workers() >= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(pooled_workers() >= 1);
    }

    #[test]
    fn park_unpark_synchronizes_across_threads() {
        let slot: Arc<HandoffSlot<u64>> = Arc::new(HandoffSlot::default());
        let main_park = ParkCell::for_current();
        let (slot2, main2) = (Arc::clone(&slot), Arc::clone(&main_park));
        let lease = spawn_job(Box::new(move |_park| {
            slot2.put(42);
            main2.unpark();
        }));
        let _ = lease;
        loop {
            if let Some(v) = slot.try_take() {
                assert_eq!(v, 42);
                break;
            }
            main_park.park();
        }
    }
}
