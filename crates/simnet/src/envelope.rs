//! Message envelopes and receive matching.
//!
//! The simulator moves opaque [`Envelope`]s between process mailboxes. The
//! tool layer (crate `pdceval-mpt`) encodes typed data into the payload and
//! uses [`Matcher`] to express selective receives (`pvm_recv(src, tag)`
//! style wildcards).

use crate::ids::{ProcId, Tag};
use crate::time::SimTime;
use bytes::Bytes;

/// A message in flight or queued at a mailbox.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending process.
    pub src: ProcId,
    /// Destination process.
    pub dst: ProcId,
    /// Tool-defined tag used for receive matching.
    pub tag: Tag,
    /// Opaque payload bytes.
    pub payload: Bytes,
    /// Bytes the message occupies on the wire (payload + tool headers);
    /// this is what cost models price, not `payload.len()`.
    pub wire_bytes: u64,
    /// Virtual time at which the send was initiated.
    pub sent_at: SimTime,
    /// Virtual time at which the message reached the destination mailbox.
    /// Set by the engine on delivery; [`SimTime::ZERO`] before that.
    pub delivered_at: SimTime,
}

impl Envelope {
    /// Creates a new envelope. `wire_bytes` defaults to the payload length;
    /// tool layers add their header overhead via [`Envelope::with_wire_bytes`].
    pub fn new(src: ProcId, dst: ProcId, tag: Tag, payload: Bytes) -> Envelope {
        let wire = payload.len() as u64;
        Envelope {
            src,
            dst,
            tag,
            payload,
            wire_bytes: wire,
            sent_at: SimTime::ZERO,
            delivered_at: SimTime::ZERO,
        }
    }

    /// Overrides the wire size (payload plus protocol headers).
    pub fn with_wire_bytes(mut self, wire_bytes: u64) -> Envelope {
        self.wire_bytes = wire_bytes;
        self
    }

    /// Latency experienced by this message, if it has been delivered.
    pub fn transit_time(&self) -> Option<crate::time::SimDuration> {
        if self.delivered_at >= self.sent_at && self.delivered_at != SimTime::ZERO {
            Some(self.delivered_at - self.sent_at)
        } else {
            None
        }
    }
}

/// A receive-matching predicate: `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Matcher {
    /// Match only messages from this process (wildcard if `None`).
    pub src: Option<ProcId>,
    /// Match only messages with this tag (wildcard if `None`).
    pub tag: Option<Tag>,
}

impl Matcher {
    /// Matches any message.
    pub fn any() -> Matcher {
        Matcher::default()
    }

    /// Matches messages from a specific source, any tag.
    pub fn from(src: ProcId) -> Matcher {
        Matcher {
            src: Some(src),
            tag: None,
        }
    }

    /// Matches messages with a specific tag, any source.
    pub fn tagged(tag: Tag) -> Matcher {
        Matcher {
            src: None,
            tag: Some(tag),
        }
    }

    /// Matches messages from a specific source with a specific tag.
    pub fn from_tagged(src: ProcId, tag: Tag) -> Matcher {
        Matcher {
            src: Some(src),
            tag: Some(tag),
        }
    }

    /// Tests whether an envelope satisfies this matcher.
    pub fn matches(&self, env: &Envelope) -> bool {
        self.src.is_none_or(|s| s == env.src) && self.tag.is_none_or(|t| t == env.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: Tag) -> Envelope {
        Envelope::new(ProcId(src), ProcId(9), tag, Bytes::from_static(b"x"))
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(Matcher::any().matches(&env(0, 1)));
        assert!(Matcher::any().matches(&env(5, 42)));
    }

    #[test]
    fn src_only_matcher() {
        let m = Matcher::from(ProcId(5));
        assert!(m.matches(&env(5, 1)));
        assert!(!m.matches(&env(4, 1)));
    }

    #[test]
    fn tag_only_matcher() {
        let m = Matcher::tagged(7);
        assert!(m.matches(&env(0, 7)));
        assert!(!m.matches(&env(0, 8)));
    }

    #[test]
    fn src_and_tag_matcher() {
        let m = Matcher::from_tagged(ProcId(2), 3);
        assert!(m.matches(&env(2, 3)));
        assert!(!m.matches(&env(2, 4)));
        assert!(!m.matches(&env(1, 3)));
    }

    #[test]
    fn wire_bytes_defaults_to_payload_len() {
        let e = env(0, 0);
        assert_eq!(e.wire_bytes, 1);
        let e = e.with_wire_bytes(100);
        assert_eq!(e.wire_bytes, 100);
    }

    #[test]
    fn transit_time_unset_before_delivery() {
        assert_eq!(env(0, 0).transit_time(), None);
    }
}
