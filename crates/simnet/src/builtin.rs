//! Built-in spec data: the paper's testbed, expressed as plain values.
//!
//! This module is the **only** place in the workspace that enumerates the
//! paper's platforms and interconnects in code. Everything else consumes
//! them through the platform registry ([`crate::registry`]) as
//! [`PlatformSpec`] data, exactly the way spec files supply user-defined
//! platforms — so adding a testbed never touches another module.

use crate::host::HostSpec;
use crate::net::LinkParams;
use crate::platform::PlatformSpec;
use crate::time::SimDuration;
use std::fmt;

/// The interconnect technologies of the paper's experimentation
/// environment, kept as a convenience for constructing built-in link
/// data ([`NetworkKind::params`]). Spec-defined platforms do not need a
/// `NetworkKind`; they carry their [`LinkParams`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Shared 10 Mb/s Ethernet LAN (SUN ELC cluster).
    Ethernet,
    /// The SP-1's dedicated Ethernet (same medium, no outside traffic).
    DedicatedEthernet,
    /// Switched 100 Mb/s FDDI segments (Alpha cluster).
    Fddi,
    /// ATM LAN through a FORE switch, 140 Mb/s TAXI host interface.
    AtmLan,
    /// NYNET ATM WAN (OC-3 access links, Syracuse to Rome NY).
    AtmWan,
    /// IBM SP-1 Allnode crossbar switch.
    Allnode,
}

impl NetworkKind {
    /// All network kinds, in a stable order.
    pub fn all() -> [NetworkKind; 6] {
        [
            NetworkKind::Ethernet,
            NetworkKind::DedicatedEthernet,
            NetworkKind::Fddi,
            NetworkKind::AtmLan,
            NetworkKind::AtmWan,
            NetworkKind::Allnode,
        ]
    }

    /// The calibrated link parameters for this network.
    pub fn params(&self) -> LinkParams {
        match self {
            // Effective Ethernet payload rate is calibrated to the paper's
            // Table 3: mid-1990s SunOS TCP over shared 10 Mb/s Ethernet
            // achieved roughly 3 Mb/s of user payload (CSMA/CD, framing,
            // inter-frame gaps, kernel mbuf handling).
            NetworkKind::Ethernet => LinkParams {
                name: "Ethernet".to_string(),
                bandwidth_mbps: 3.2,
                latency: SimDuration::from_micros(150),
                mtu: 1460,
                per_packet: SimDuration::from_micros(200),
                shared_medium: true,
            },
            NetworkKind::DedicatedEthernet => LinkParams {
                name: "Dedicated Ethernet".to_string(),
                bandwidth_mbps: 3.6,
                latency: SimDuration::from_micros(120),
                mtu: 1460,
                per_packet: SimDuration::from_micros(180),
                shared_medium: true,
            },
            NetworkKind::Fddi => LinkParams {
                name: "FDDI".to_string(),
                bandwidth_mbps: 80.0,
                latency: SimDuration::from_micros(90),
                mtu: 4352,
                per_packet: SimDuration::from_micros(40),
                shared_medium: false,
            },
            NetworkKind::AtmLan => LinkParams {
                name: "ATM LAN".to_string(),
                bandwidth_mbps: 127.0,
                latency: SimDuration::from_micros(60),
                mtu: 9180,
                per_packet: SimDuration::from_micros(30),
                shared_medium: false,
            },
            NetworkKind::AtmWan => LinkParams {
                name: "ATM WAN (NYNET)".to_string(),
                bandwidth_mbps: 112.0,
                latency: SimDuration::from_micros(420),
                mtu: 9180,
                per_packet: SimDuration::from_micros(30),
                shared_medium: false,
            },
            NetworkKind::Allnode => LinkParams {
                name: "Allnode switch".to_string(),
                bandwidth_mbps: 34.0,
                latency: SimDuration::from_micros(100),
                mtu: 4096,
                per_packet: SimDuration::from_micros(60),
                shared_medium: false,
            },
        }
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.params().name)
    }
}

/// The six testbed configurations of the paper's §3.1, in presentation
/// order, each expressed as a single-group topology. The registry seeds
/// itself with exactly this list, so the handle for
/// `builtin_platforms()[i]` is `PlatformId(i)`.
pub fn builtin_platforms() -> Vec<PlatformSpec> {
    vec![
        PlatformSpec::homogeneous(
            "SUN/Ethernet",
            "sun-eth",
            HostSpec::sun_elc(),
            NetworkKind::Ethernet.params(),
            8,
            false,
        ),
        PlatformSpec::homogeneous(
            "SUN/ATM LAN",
            "sun-atm-lan",
            HostSpec::sun_ipx(),
            NetworkKind::AtmLan.params(),
            8,
            false,
        ),
        // The NYNET experiments used at most 4 workstations (Figure 7).
        PlatformSpec::homogeneous(
            "SUN/ATM WAN (NYNET)",
            "sun-atm-wan",
            HostSpec::sun_ipx(),
            NetworkKind::AtmWan.params(),
            4,
            true,
        ),
        PlatformSpec::homogeneous(
            "ALPHA/FDDI",
            "alpha-fddi",
            HostSpec::alpha_axp(),
            NetworkKind::Fddi.params(),
            8,
            false,
        ),
        PlatformSpec::homogeneous(
            "IBM-SP1 (Switch)",
            "sp1-switch",
            HostSpec::rs6000_370(),
            NetworkKind::Allnode.params(),
            16,
            false,
        ),
        PlatformSpec::homogeneous(
            "IBM-SP1 (Ethernet)",
            "sp1-eth",
            HostSpec::rs6000_370(),
            NetworkKind::DedicatedEthernet.params(),
            16,
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_platform_slugs_are_stable() {
        let slugs: Vec<String> = builtin_platforms().into_iter().map(|p| p.slug).collect();
        assert_eq!(
            slugs,
            vec![
                "sun-eth",
                "sun-atm-lan",
                "sun-atm-wan",
                "alpha-fddi",
                "sp1-switch",
                "sp1-eth"
            ]
        );
    }

    #[test]
    fn only_nynet_is_wan() {
        for p in builtin_platforms() {
            assert_eq!(p.wan, p.slug == "sun-atm-wan", "{}", p.slug);
        }
    }
}
