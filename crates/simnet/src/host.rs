//! Host (compute node) models for the 1995 NPAC testbed.
//!
//! Each [`HostSpec`] captures the performance characteristics that matter
//! for reproducing the paper's measurements: floating-point rate, integer
//! rate, memory-copy bandwidth, and a *software overhead scale* used to
//! price message-passing library overheads (protocol stacks ran on the host
//! CPU in 1995, so a 150 MHz Alpha executed the same PVM code ~3x faster
//! than a 40 MHz SPARCstation IPX).
//!
//! Rates are calibrated to the paper's observed application times (Figures
//! 5-8), not to marketing MIPS; see `DESIGN.md` and `EXPERIMENTS.md`.

use std::fmt;

/// Performance model of a single compute node.
///
/// Hosts are pure data: the built-in models below cover the paper's
/// testbed, and spec files can declare new ones (see
/// `pdceval_mpt::spec`) without touching this module.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Human-readable model name, e.g. `"SUN SPARCstation IPX"`.
    pub name: String,
    /// Sustained floating-point rate in MFLOP/s.
    pub mflops: f64,
    /// Sustained integer-operation rate in M ops/s.
    pub mips: f64,
    /// Memory copy bandwidth in MB/s.
    pub mem_bw_mbs: f64,
    /// Multiplier applied to message-passing software overheads
    /// (1.0 = SUN SPARCstation IPX baseline; smaller is faster).
    pub sw_scale: f64,
}

impl HostSpec {
    /// SUN SPARCstation IPX: 40 MHz SPARC. The baseline host of the paper's
    /// ATM experiments (`sw_scale` = 1.0 by definition).
    pub fn sun_ipx() -> HostSpec {
        HostSpec {
            name: "SUN SPARCstation IPX".to_string(),
            mflops: 4.5,
            mips: 28.0,
            mem_bw_mbs: 25.0,
            sw_scale: 1.0,
        }
    }

    /// SUN SPARCstation ELC: 33 MHz SPARC, used on the Ethernet testbed.
    pub fn sun_elc() -> HostSpec {
        HostSpec {
            name: "SUN SPARCstation ELC".to_string(),
            mflops: 3.6,
            mips: 21.0,
            mem_bw_mbs: 20.0,
            sw_scale: 1.2,
        }
    }

    /// DEC Alpha AXP workstation: 150 MHz, the fastest node in the testbed.
    pub fn alpha_axp() -> HostSpec {
        HostSpec {
            name: "DEC Alpha AXP 150MHz".to_string(),
            mflops: 21.0,
            mips: 120.0,
            mem_bw_mbs: 80.0,
            sw_scale: 0.35,
        }
    }

    /// IBM RS/6000 370 node of the SP-1: 62.5 MHz POWER.
    ///
    /// The paper notes the SP-1 nodes are slower than the Alpha cluster
    /// (Figure 6 vs Figure 5), which these rates reproduce.
    pub fn rs6000_370() -> HostSpec {
        HostSpec {
            name: "IBM RS/6000 370 (SP-1 node)".to_string(),
            mflops: 9.0,
            mips: 55.0,
            mem_bw_mbs: 45.0,
            sw_scale: 0.6,
        }
    }

    /// A custom host model, for extensions beyond the paper's testbed.
    pub fn custom(
        name: impl Into<String>,
        mflops: f64,
        mips: f64,
        mem_bw_mbs: f64,
        sw_scale: f64,
    ) -> HostSpec {
        assert!(
            mflops > 0.0 && mips > 0.0 && mem_bw_mbs > 0.0 && sw_scale > 0.0,
            "host rates must be positive"
        );
        HostSpec {
            name: name.into(),
            mflops,
            mips,
            mem_bw_mbs,
            sw_scale,
        }
    }
}

impl fmt::Display for HostSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} MFLOP/s, {} MIPS, {} MB/s copy)",
            self.name, self.mflops, self.mips, self.mem_bw_mbs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_speed_ordering_matches_paper() {
        // Alpha > RS/6000 > IPX > ELC in compute rate.
        let alpha = HostSpec::alpha_axp();
        let rs = HostSpec::rs6000_370();
        let ipx = HostSpec::sun_ipx();
        let elc = HostSpec::sun_elc();
        assert!(alpha.mflops > rs.mflops);
        assert!(rs.mflops > ipx.mflops);
        assert!(ipx.mflops > elc.mflops);
        // Software overhead scale is inverted: faster host, lower scale.
        assert!(alpha.sw_scale < rs.sw_scale);
        assert!(rs.sw_scale < ipx.sw_scale);
        assert!(ipx.sw_scale < elc.sw_scale);
    }

    #[test]
    fn ipx_is_the_software_baseline() {
        assert_eq!(HostSpec::sun_ipx().sw_scale, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn custom_rejects_nonpositive_rates() {
        let _ = HostSpec::custom("bad", 0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn display_mentions_name() {
        let s = HostSpec::alpha_axp().to_string();
        assert!(s.contains("Alpha"));
    }
}
