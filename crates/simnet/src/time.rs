//! Virtual time for the discrete-event simulation.
//!
//! All simulation timestamps are [`SimTime`] values (nanoseconds since the
//! start of the run) and all intervals are [`SimDuration`] values. Both wrap
//! a `u64` nanosecond count, so arithmetic is exact and runs are perfectly
//! reproducible — no floating-point clock drift can creep into event
//! ordering. Floating-point accessors are provided for reporting only.
//!
//! # Examples
//!
//! ```
//! use pdceval_simnet::time::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let later = start + SimDuration::from_millis_f64(1.5);
//! assert_eq!((later - start).as_micros_f64(), 1500.0);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A length of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional microseconds (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as fractional milliseconds (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time as fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so such a call is a logic error in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The empty interval.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1_000_000.0)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1_000.0)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional milliseconds (reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration as fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            rhs.0 <= self.0,
            "SimDuration subtraction underflow: {self} - {rhs}"
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == 0 {
        write!(f, "0s")
    } else if ns < 1_000 {
        write!(f, "{ns}ns")
    } else if ns < 1_000_000 {
        write!(f, "{:.3}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1_000_000.0)
    } else {
        write!(f, "{:.6}s", ns as f64 / 1_000_000_000.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(b - a, SimDuration::from_nanos(150));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn time_since_panics_on_backwards() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn duration_from_fractional_units() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(0.25).as_nanos(), 250_000);
        assert_eq!(SimDuration::from_secs_f64(2.0).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn duration_from_negative_or_nan_clamps_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d + d, SimDuration::from_micros(20));
        assert_eq!(d - SimDuration::from_micros(4), SimDuration::from_micros(6));
        assert_eq!(
            d.saturating_sub(SimDuration::from_micros(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000000s");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(1000) * 1.5;
        assert_eq!(d.as_nanos(), 1500);
    }
}
