//! Network link models.
//!
//! A [`LinkParams`] is the *data* describing one interconnect: effective
//! payload bandwidth, per-fragment latency, fragmentation unit and
//! media-access overheads. Effective bandwidths are the achieved rates a
//! 1995 protocol stack saw, not the media's signalling rates (e.g. shared
//! 10 Mb/s Ethernet delivered roughly 3 Mb/s of payload after framing,
//! inter-frame gaps and CSMA/CD).
//!
//! The five NPAC testbed interconnects of the paper's §3.1 are shipped as
//! built-in data by [`crate::builtin`] (re-exported here as
//! [`NetworkKind`] for convenience); platform spec files can declare
//! arbitrary new links without touching any code.

use crate::time::SimDuration;

pub use crate::builtin::NetworkKind;

/// Calibrated parameters of one interconnect technology.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    /// Display name.
    pub name: String,
    /// Effective payload bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Per-fragment propagation plus switching latency.
    pub latency: SimDuration,
    /// Fragmentation unit in bytes (frame / AAL5 PDU payload).
    pub mtu: usize,
    /// Extra wire occupancy per fragment (headers, inter-frame gap,
    /// media-access overhead).
    pub per_packet: SimDuration,
    /// `true` for a single shared medium (Ethernet bus) where all
    /// transmissions serialize on one wire; `false` for switched fabrics
    /// with independent per-host ports.
    pub shared_medium: bool,
}

impl LinkParams {
    /// Wire occupancy time of one fragment carrying `bytes` payload bytes.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        let secs = (bytes * 8) as f64 / (self.bandwidth_mbps * 1e6);
        SimDuration::from_secs_f64(secs) + self.per_packet
    }

    /// Splits a message of `bytes` into MTU-sized fragment payloads.
    /// A zero-byte message still occupies one (header-only) fragment.
    pub fn fragment_sizes(&self, bytes: u64) -> Vec<u64> {
        if bytes == 0 {
            return vec![0];
        }
        let mtu = self.mtu as u64;
        let full = bytes / mtu;
        let rem = bytes % mtu;
        let mut sizes = vec![mtu; full as usize];
        if rem > 0 {
            sizes.push(rem);
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering_matches_testbed() {
        let eth = NetworkKind::Ethernet.params();
        let fddi = NetworkKind::Fddi.params();
        let atm = NetworkKind::AtmLan.params();
        assert!(eth.bandwidth_mbps < fddi.bandwidth_mbps);
        assert!(fddi.bandwidth_mbps < atm.bandwidth_mbps);
    }

    #[test]
    fn wan_has_higher_latency_than_lan() {
        assert!(NetworkKind::AtmWan.params().latency > NetworkKind::AtmLan.params().latency);
    }

    #[test]
    fn only_ethernets_are_shared() {
        for kind in NetworkKind::all() {
            let shared = kind.params().shared_medium;
            match kind {
                NetworkKind::Ethernet | NetworkKind::DedicatedEthernet => assert!(shared),
                _ => assert!(!shared, "{kind} should be switched"),
            }
        }
    }

    #[test]
    fn fragment_sizes_cover_message() {
        let p = NetworkKind::Ethernet.params();
        let sizes = p.fragment_sizes(4000);
        assert_eq!(sizes.iter().sum::<u64>(), 4000);
        assert_eq!(sizes.len(), 3); // 1460 + 1460 + 1080
        assert!(sizes[..2].iter().all(|&s| s == 1460));
    }

    #[test]
    fn zero_byte_message_still_occupies_a_frame() {
        let p = NetworkKind::AtmLan.params();
        assert_eq!(p.fragment_sizes(0), vec![0]);
        assert!(p.wire_time(0) > SimDuration::ZERO);
    }

    #[test]
    fn wire_time_grows_linearly() {
        let p = NetworkKind::Fddi.params();
        let t1 = p.wire_time(1000);
        let t2 = p.wire_time(2000);
        // Slope: doubling the bytes adds exactly one more 1000-byte worth.
        let slope = t2 - t1;
        assert_eq!(slope, p.wire_time(1000) - p.wire_time(0),);
    }

    #[test]
    fn exact_mtu_multiple_has_no_tail_fragment() {
        let p = NetworkKind::Allnode.params();
        let sizes = p.fragment_sizes(4096 * 3);
        assert_eq!(sizes, vec![4096, 4096, 4096]);
    }
}
