//! Network link models for the five NPAC testbed interconnects (paper §3.1).
//!
//! Each [`NetworkKind`] resolves to a set of [`LinkParams`] calibrated so
//! the simulated communication times reproduce the *shape* of the paper's
//! Table 3 and Figures 2-4: effective bandwidths are the achieved rates a
//! 1995 protocol stack saw, not the media's signalling rates (e.g. shared
//! 10 Mb/s Ethernet delivered roughly 7 Mb/s of payload after framing,
//! inter-frame gaps and CSMA/CD).

use crate::time::SimDuration;
use std::fmt;

/// Calibrated parameters of one interconnect technology.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkParams {
    /// Display name.
    pub name: &'static str,
    /// Effective payload bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Per-fragment propagation plus switching latency.
    pub latency: SimDuration,
    /// Fragmentation unit in bytes (frame / AAL5 PDU payload).
    pub mtu: usize,
    /// Extra wire occupancy per fragment (headers, inter-frame gap,
    /// media-access overhead).
    pub per_packet: SimDuration,
    /// `true` for a single shared medium (Ethernet bus) where all
    /// transmissions serialize on one wire; `false` for switched fabrics
    /// with independent per-host ports.
    pub shared_medium: bool,
}

impl LinkParams {
    /// Wire occupancy time of one fragment carrying `bytes` payload bytes.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        let secs = (bytes * 8) as f64 / (self.bandwidth_mbps * 1e6);
        SimDuration::from_secs_f64(secs) + self.per_packet
    }

    /// Splits a message of `bytes` into MTU-sized fragment payloads.
    /// A zero-byte message still occupies one (header-only) fragment.
    pub fn fragment_sizes(&self, bytes: u64) -> Vec<u64> {
        if bytes == 0 {
            return vec![0];
        }
        let mtu = self.mtu as u64;
        let full = bytes / mtu;
        let rem = bytes % mtu;
        let mut sizes = vec![mtu; full as usize];
        if rem > 0 {
            sizes.push(rem);
        }
        sizes
    }
}

/// The interconnect technologies of the paper's experimentation environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Shared 10 Mb/s Ethernet LAN (SUN ELC cluster).
    Ethernet,
    /// The SP-1's dedicated Ethernet (same medium, no outside traffic).
    DedicatedEthernet,
    /// Switched 100 Mb/s FDDI segments (Alpha cluster).
    Fddi,
    /// ATM LAN through a FORE switch, 140 Mb/s TAXI host interface.
    AtmLan,
    /// NYNET ATM WAN (OC-3 access links, Syracuse to Rome NY).
    AtmWan,
    /// IBM SP-1 Allnode crossbar switch.
    Allnode,
}

impl NetworkKind {
    /// All network kinds, in a stable order.
    pub fn all() -> [NetworkKind; 6] {
        [
            NetworkKind::Ethernet,
            NetworkKind::DedicatedEthernet,
            NetworkKind::Fddi,
            NetworkKind::AtmLan,
            NetworkKind::AtmWan,
            NetworkKind::Allnode,
        ]
    }

    /// The calibrated link parameters for this network.
    pub fn params(&self) -> LinkParams {
        match self {
            // Effective Ethernet payload rate is calibrated to the paper's
            // Table 3: mid-1990s SunOS TCP over shared 10 Mb/s Ethernet
            // achieved roughly 3 Mb/s of user payload (CSMA/CD, framing,
            // inter-frame gaps, kernel mbuf handling).
            NetworkKind::Ethernet => LinkParams {
                name: "Ethernet",
                bandwidth_mbps: 3.2,
                latency: SimDuration::from_micros(150),
                mtu: 1460,
                per_packet: SimDuration::from_micros(200),
                shared_medium: true,
            },
            NetworkKind::DedicatedEthernet => LinkParams {
                name: "Dedicated Ethernet",
                bandwidth_mbps: 3.6,
                latency: SimDuration::from_micros(120),
                mtu: 1460,
                per_packet: SimDuration::from_micros(180),
                shared_medium: true,
            },
            NetworkKind::Fddi => LinkParams {
                name: "FDDI",
                bandwidth_mbps: 80.0,
                latency: SimDuration::from_micros(90),
                mtu: 4352,
                per_packet: SimDuration::from_micros(40),
                shared_medium: false,
            },
            NetworkKind::AtmLan => LinkParams {
                name: "ATM LAN",
                bandwidth_mbps: 127.0,
                latency: SimDuration::from_micros(60),
                mtu: 9180,
                per_packet: SimDuration::from_micros(30),
                shared_medium: false,
            },
            NetworkKind::AtmWan => LinkParams {
                name: "ATM WAN (NYNET)",
                bandwidth_mbps: 112.0,
                latency: SimDuration::from_micros(420),
                mtu: 9180,
                per_packet: SimDuration::from_micros(30),
                shared_medium: false,
            },
            NetworkKind::Allnode => LinkParams {
                name: "Allnode switch",
                bandwidth_mbps: 34.0,
                latency: SimDuration::from_micros(100),
                mtu: 4096,
                per_packet: SimDuration::from_micros(60),
                shared_medium: false,
            },
        }
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.params().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering_matches_testbed() {
        let eth = NetworkKind::Ethernet.params();
        let fddi = NetworkKind::Fddi.params();
        let atm = NetworkKind::AtmLan.params();
        assert!(eth.bandwidth_mbps < fddi.bandwidth_mbps);
        assert!(fddi.bandwidth_mbps < atm.bandwidth_mbps);
    }

    #[test]
    fn wan_has_higher_latency_than_lan() {
        assert!(NetworkKind::AtmWan.params().latency > NetworkKind::AtmLan.params().latency);
    }

    #[test]
    fn only_ethernets_are_shared() {
        for kind in NetworkKind::all() {
            let shared = kind.params().shared_medium;
            match kind {
                NetworkKind::Ethernet | NetworkKind::DedicatedEthernet => assert!(shared),
                _ => assert!(!shared, "{kind} should be switched"),
            }
        }
    }

    #[test]
    fn fragment_sizes_cover_message() {
        let p = NetworkKind::Ethernet.params();
        let sizes = p.fragment_sizes(4000);
        assert_eq!(sizes.iter().sum::<u64>(), 4000);
        assert_eq!(sizes.len(), 3); // 1460 + 1460 + 1080
        assert!(sizes[..2].iter().all(|&s| s == 1460));
    }

    #[test]
    fn zero_byte_message_still_occupies_a_frame() {
        let p = NetworkKind::AtmLan.params();
        assert_eq!(p.fragment_sizes(0), vec![0]);
        assert!(p.wire_time(0) > SimDuration::ZERO);
    }

    #[test]
    fn wire_time_grows_linearly() {
        let p = NetworkKind::Fddi.params();
        let t1 = p.wire_time(1000);
        let t2 = p.wire_time(2000);
        // Slope: doubling the bytes adds exactly one more 1000-byte worth.
        let slope = t2 - t1;
        assert_eq!(slope, p.wire_time(1000) - p.wire_time(0),);
    }

    #[test]
    fn exact_mtu_multiple_has_no_tail_fragment() {
        let p = NetworkKind::Allnode.params();
        let sizes = p.fragment_sizes(4096 * 3);
        assert_eq!(sizes, vec![4096, 4096, 4096]);
    }
}
