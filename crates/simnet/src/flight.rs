//! Transmission plans: how a message crosses the simulated fabric.
//!
//! A [`TransmitPlan`] describes the journey of one message as one or more
//! *fragments*, each passing through a pipeline of [`Stage`]s (FIFO
//! resources and pure latencies). Fragments proceed independently, so a
//! multi-fragment message naturally *pipelines*: while fragment `k` occupies
//! the wire, fragment `k+1` can occupy the sender's protocol stack. The
//! message is delivered to the destination mailbox when its last fragment
//! completes.
//!
//! This single mechanism reproduces the bandwidth behaviour the paper
//! measured: effective throughput is set by the slowest pipeline stage
//! (the wire on 10 Mb/s Ethernet, the host protocol stack on 140 Mb/s ATM).

use crate::ids::ResourceId;
use crate::time::SimDuration;
use std::collections::VecDeque;

/// One step in a fragment's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A fixed delay with unlimited concurrency (propagation, switch cut-through).
    Latency(SimDuration),
    /// Occupancy of a FIFO resource for `service` time (wire slot,
    /// protocol-stack processing, daemon forwarding).
    Serve {
        /// The resource to queue at.
        resource: ResourceId,
        /// How long the resource is held.
        service: SimDuration,
    },
}

/// A complete plan for transmitting one message.
#[derive(Debug, Clone, Default)]
pub struct TransmitPlan {
    fragments: Vec<Vec<Stage>>,
}

impl TransmitPlan {
    /// A plan with no cost: the message is delivered at the current instant.
    pub fn instant() -> TransmitPlan {
        TransmitPlan::default()
    }

    /// A single-fragment plan.
    pub fn single(stages: Vec<Stage>) -> TransmitPlan {
        TransmitPlan {
            fragments: vec![stages],
        }
    }

    /// A multi-fragment (pipelined) plan.
    pub fn fragments(fragments: Vec<Vec<Stage>>) -> TransmitPlan {
        TransmitPlan { fragments }
    }

    /// Number of fragments in the plan.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Consumes the plan, yielding its fragment stage lists.
    pub(crate) fn into_fragments(self) -> Vec<Vec<Stage>> {
        self.fragments
    }

    /// The sum of all stage durations across all fragments, ignoring
    /// queueing and pipelining — a lower-bound sanity metric used in tests.
    pub fn serial_cost(&self) -> SimDuration {
        self.fragments
            .iter()
            .flatten()
            .map(|s| match s {
                Stage::Latency(d) => *d,
                Stage::Serve { service, .. } => *service,
            })
            .sum()
    }
}

/// An in-flight fragment being walked through its stages by the engine.
#[derive(Debug)]
pub(crate) struct Flight {
    pub(crate) stages: VecDeque<Stage>,
    /// Index into the engine's pending-delivery table.
    pub(crate) pending: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn instant_plan_has_no_fragments() {
        let p = TransmitPlan::instant();
        assert_eq!(p.fragment_count(), 0);
        assert_eq!(p.serial_cost(), SimDuration::ZERO);
    }

    #[test]
    fn serial_cost_sums_all_stages() {
        let p = TransmitPlan::fragments(vec![
            vec![
                Stage::Latency(us(5)),
                Stage::Serve {
                    resource: ResourceId(0),
                    service: us(10),
                },
            ],
            vec![Stage::Latency(us(1))],
        ]);
        assert_eq!(p.serial_cost(), us(16));
        assert_eq!(p.fragment_count(), 2);
    }

    #[test]
    fn single_wraps_one_fragment() {
        let p = TransmitPlan::single(vec![Stage::Latency(us(3))]);
        assert_eq!(p.fragment_count(), 1);
        assert_eq!(p.serial_cost(), us(3));
    }
}
