//! Transmission plans: how a message crosses the simulated fabric.
//!
//! A [`TransmitPlan`] describes the journey of one message as one or more
//! *trains*, each a run of `count` identical fragments passing through a
//! pipeline of [`Stage`]s (FIFO resources and pure latencies). Fragments
//! proceed independently, so a multi-fragment message naturally
//! *pipelines*: while fragment `k` occupies the wire, fragment `k+1` can
//! occupy the sender's protocol stack. The message is delivered to the
//! destination mailbox when its last fragment completes.
//!
//! A train of `count > 1` equal fragments is priced *in batch*: the engine
//! walks the stage pipeline once, tracking the head fragment's position
//! and the head-to-tail lag, instead of walking `count` separate flights.
//! For fragments that occupy each FIFO contiguously (the clean, uniform
//! path the fabric emits) the batched walk reproduces the per-fragment
//! pipeline's delivery time exactly — see `Flight::lag` — while costing
//! O(stages) events instead of O(count × stages). Per-fragment plans
//! ([`TransmitPlan::fragments`]) remain available and are what perturbed
//! paths use, since per-fragment random draws need per-fragment flights.
//!
//! This single mechanism reproduces the bandwidth behaviour the paper
//! measured: effective throughput is set by the slowest pipeline stage
//! (the wire on 10 Mb/s Ethernet, the host protocol stack on 140 Mb/s ATM).

use crate::ids::ResourceId;
use crate::time::SimDuration;
use std::collections::VecDeque;

/// One step in a fragment's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A fixed delay with unlimited concurrency (propagation, switch cut-through).
    Latency(SimDuration),
    /// Occupancy of a FIFO resource for `service` time (wire slot,
    /// protocol-stack processing, daemon forwarding).
    Serve {
        /// The resource to queue at.
        resource: ResourceId,
        /// How long the resource is held.
        service: SimDuration,
    },
}

/// A run of `count` identical fragments traversing `stages` as one unit.
#[derive(Debug, Clone)]
pub struct Train {
    pub(crate) stages: Vec<Stage>,
    pub(crate) count: u32,
}

impl Train {
    /// A train of `count` fragments, each crossing the same `stages`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(stages: Vec<Stage>, count: u32) -> Train {
        assert!(count > 0, "a train needs at least one fragment");
        Train { stages, count }
    }

    /// The number of fragments riding this train.
    pub fn count(&self) -> u32 {
        self.count
    }
}

/// A complete plan for transmitting one message.
#[derive(Debug, Clone, Default)]
pub struct TransmitPlan {
    trains: Vec<Train>,
}

impl TransmitPlan {
    /// A plan with no cost: the message is delivered at the current instant.
    pub fn instant() -> TransmitPlan {
        TransmitPlan::default()
    }

    /// A single-fragment plan.
    pub fn single(stages: Vec<Stage>) -> TransmitPlan {
        TransmitPlan {
            trains: vec![Train { stages, count: 1 }],
        }
    }

    /// A multi-fragment (pipelined) plan with one independent flight per
    /// fragment. Use [`TransmitPlan::trains`] when runs of fragments are
    /// identical — the engine then prices each run in one batched walk.
    pub fn fragments(fragments: Vec<Vec<Stage>>) -> TransmitPlan {
        TransmitPlan {
            trains: fragments
                .into_iter()
                .map(|stages| Train { stages, count: 1 })
                .collect(),
        }
    }

    /// A plan of fragment trains (see [`Train`]).
    pub fn trains(trains: Vec<Train>) -> TransmitPlan {
        TransmitPlan { trains }
    }

    /// Total number of fragments in the plan, counting every fragment of
    /// every train.
    pub fn fragment_count(&self) -> usize {
        self.trains.iter().map(|t| t.count as usize).sum()
    }

    /// Consumes the plan, yielding its trains.
    pub(crate) fn into_trains(self) -> Vec<Train> {
        self.trains
    }

    /// The sum of all stage durations across all fragments, ignoring
    /// queueing and pipelining — a lower-bound sanity metric used in tests.
    pub fn serial_cost(&self) -> SimDuration {
        self.trains
            .iter()
            .map(|t| {
                let per_frag: SimDuration = t
                    .stages
                    .iter()
                    .map(|s| match s {
                        Stage::Latency(d) => *d,
                        Stage::Serve { service, .. } => *service,
                    })
                    .sum();
                per_frag * t.count as u64
            })
            .sum()
    }
}

/// An in-flight fragment train being walked through its stages by the
/// engine. `count == 1` flights behave exactly like the historical
/// one-flight-per-fragment model.
#[derive(Debug)]
pub(crate) struct Flight {
    pub(crate) stages: VecDeque<Stage>,
    /// Index into the engine's pending-delivery table.
    pub(crate) pending: usize,
    /// Fragments riding this flight as one train.
    pub(crate) count: u32,
    /// Current head-to-tail lag: how far behind the head fragment the last
    /// fragment runs. Grows at serve stages (`max(lag, (count-1)·service)`
    /// — the tail of a train leaves a FIFO `(count-1)` services after its
    /// head), is preserved by latency stages, and delays final delivery by
    /// exactly itself once the head clears the last stage.
    pub(crate) lag: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn instant_plan_has_no_fragments() {
        let p = TransmitPlan::instant();
        assert_eq!(p.fragment_count(), 0);
        assert_eq!(p.serial_cost(), SimDuration::ZERO);
    }

    #[test]
    fn serial_cost_sums_all_stages() {
        let p = TransmitPlan::fragments(vec![
            vec![
                Stage::Latency(us(5)),
                Stage::Serve {
                    resource: ResourceId(0),
                    service: us(10),
                },
            ],
            vec![Stage::Latency(us(1))],
        ]);
        assert_eq!(p.serial_cost(), us(16));
        assert_eq!(p.fragment_count(), 2);
    }

    #[test]
    fn single_wraps_one_fragment() {
        let p = TransmitPlan::single(vec![Stage::Latency(us(3))]);
        assert_eq!(p.fragment_count(), 1);
        assert_eq!(p.serial_cost(), us(3));
    }

    #[test]
    fn train_plan_counts_every_fragment() {
        let stages = vec![Stage::Serve {
            resource: ResourceId(0),
            service: us(10),
        }];
        let p = TransmitPlan::trains(vec![
            Train::new(stages.clone(), 4),
            Train::new(vec![Stage::Latency(us(2))], 1),
        ]);
        assert_eq!(p.fragment_count(), 5);
        assert_eq!(p.serial_cost(), us(42));
    }

    #[test]
    #[should_panic(expected = "at least one fragment")]
    fn empty_train_is_rejected() {
        let _ = Train::new(vec![], 0);
    }
}
