//! Synchronization-point shims for the direct-handoff scheduler.
//!
//! The pooled scheduler in [`crate::sched`] rests on exactly two
//! cross-thread primitives: a one-token park/unpark latch and a
//! single-value SPSC handoff slot. Everything else in the engine runs
//! under the *baton* — the exclusive ownership of the simulation core
//! that those two primitives pass between threads — and is therefore
//! sequential.
//!
//! This module names those primitives as traits so that the scheduling
//! protocol can be checked *outside* the production code path:
//!
//! * The production implementations ([`crate::sched::ParkCell`] /
//!   `HandoffSlot`) implement the traits over the exact atomics they
//!   already used; the trait calls inline to the same instructions, so
//!   the shim is zero-cost in production builds.
//! * `pdceval-check` implements the same traits over plain explored
//!   state (`Cell`s inside a cloned world) and drives a DPOR-lite
//!   exhaustive interleaving explorer through them, detecting deadlock,
//!   lost wakeup, double-resume, and completion-detection races on small
//!   scheduler models.
//!
//! # Semantics contract
//!
//! The traits are deliberately *non-blocking*: blocking is a property of
//! the production runtime (OS park), not of the protocol. A model
//! implementation surfaces "would block" by having its scheduler only
//! step threads whose next operation can make progress.
//!
//! * [`SyncPark::try_consume`] atomically takes the wake token if one is
//!   present. The production `park()` loop is
//!   `while !try_consume() { thread::park() }` (plus a spin window).
//! * [`SyncPark::deposit_and_wake`] deposits a token *then* wakes the
//!   owner. Depositing before waking is what makes the latch race-free:
//!   a consumer that checked the token just before the deposit will
//!   either be woken from its OS park or find the token on its next
//!   `try_consume`. Model mutations that break this ordering (deposit
//!   without token — the classic lost wakeup) must be caught by the
//!   explorer as a deadlock.
//! * [`SyncSlot::deposit`] stores a value and reports whether the slot
//!   was empty beforehand. The scheduling protocol guarantees strict
//!   alternation, so a `false` return is a *double-resume* protocol
//!   violation: production debug-asserts on it, the model checker
//!   reports it.
//! * [`SyncSlot::withdraw`] removes the value if one is present, with
//!   acquire semantics pairing with `deposit`'s release.

/// A one-token park/unpark latch: the consumer side spins/parks until a
/// token is present; any producer may deposit a token and wake it.
pub trait SyncPark {
    /// Atomically consumes the wake token if present. Returns `true` if
    /// a token was taken (the consumer may proceed).
    fn try_consume(&self) -> bool;

    /// Deposits a wake token and wakes the owner. Writes made before
    /// this call must be visible to the owner after its successful
    /// [`SyncPark::try_consume`] (release/acquire pairing).
    fn deposit_and_wake(&self);
}

/// A single-producer/single-consumer, single-value transfer slot with
/// strict alternation: a side never deposits until the other side has
/// withdrawn the previous value.
pub trait SyncSlot<T> {
    /// Deposits a value. Returns `true` if the slot was empty (the
    /// protocol invariant); `false` means the previous value was
    /// clobbered — a double-resume violation.
    fn deposit(&self, v: T) -> bool;

    /// Withdraws the value if one is present.
    fn withdraw(&self) -> Option<T>;
}
