//! A bucketed calendar queue: the engine's event priority queue.
//!
//! The classic binary-heap event queue pays `O(log n)` comparisons plus an
//! occasional reallocation per scheduled event. A calendar queue (Brown,
//! CACM 1988) instead hashes each event by time into a circular array of
//! *day* buckets of power-of-two width, and pops by walking the calendar
//! from the current day forward. With a bucket width close to the mean
//! inter-event gap, both `push` and `pop` are `O(1)` amortized, and the
//! slot arena + free list below makes the steady state allocation-free.
//!
//! Ordering is **identical to the heap it replaces**: events pop in
//! `(time, seq)` order, where `seq` is the caller-assigned insertion
//! sequence number — same-time events come out FIFO. The engine's
//! determinism guarantees rest on this, and `tests/proptests.rs` pins the
//! equivalence against a `BinaryHeap` oracle.
//!
//! Internals, briefly:
//!
//! * **Arena.** Events live in a `Vec` of slots linked by `u32` indexes;
//!   retired slots go on an intrusive free list, so pushes after warm-up
//!   never allocate.
//! * **Buckets.** Bucket `(t >> shift) & mask` holds every resident event
//!   whose time maps there, kept sorted by `(time, seq)` with a tail
//!   pointer: the common monotone append is `O(1)`.
//! * **Day cursor.** `pop` scans forward from the last popped day; all
//!   same-day events share one bucket, so the first head matching the
//!   cursor's day is the global minimum. If a full lap finds nothing
//!   (sparse far-future events), it jumps straight to the earliest head.
//! * **Lazy resize.** When residency outgrows the calendar, it is rebuilt
//!   with twice the buckets and a width re-fitted to the observed event
//!   span; shrink never happens (peak capacity is retained for reuse).

use crate::time::SimTime;

/// Null link for the intrusive lists.
const NIL: u32 = u32::MAX;

/// Initial bucket count (power of two).
const INITIAL_BUCKETS: usize = 16;

/// Initial bucket width exponent: 2^10 ns ≈ 1 µs, the natural grain of
/// the testbed models (software overheads and wire times are µs-scale).
const INITIAL_SHIFT: u32 = 10;

/// Bucket width exponent bounds used when a rebuild re-fits the width.
const MIN_SHIFT: u32 = 4;
const MAX_SHIFT: u32 = 36;

struct Slot<T> {
    time: SimTime,
    seq: u64,
    next: u32,
    /// `None` while the slot sits on the free list.
    value: Option<T>,
}

#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket {
        head: NIL,
        tail: NIL,
    };
}

/// A calendar queue ordered by `(time, seq)`, FIFO within ties.
///
/// `seq` is assigned by the caller and must be unique; the engine uses its
/// global event sequence counter. See the [module docs](self) for the data
/// structure.
pub struct CalendarQueue<T> {
    slots: Vec<Slot<T>>,
    free: u32,
    buckets: Vec<Bucket>,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// `buckets.len() - 1` (bucket count is a power of two).
    mask: u64,
    /// The day (`time >> shift`) the next pop starts scanning from.
    /// Invariant: no resident event's day is earlier than this.
    day: u64,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue with the initial calendar geometry.
    pub fn new() -> CalendarQueue<T> {
        CalendarQueue {
            slots: Vec::new(),
            free: NIL,
            buckets: vec![Bucket::EMPTY; INITIAL_BUCKETS],
            shift: INITIAL_SHIFT,
            mask: (INITIAL_BUCKETS - 1) as u64,
            day: 0,
            len: 0,
        }
    }

    /// Number of resident events across all buckets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all events (dropping their values) while keeping the arena
    /// and calendar capacity for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free = NIL;
        for b in &mut self.buckets {
            *b = Bucket::EMPTY;
        }
        self.day = 0;
        self.len = 0;
    }

    fn bucket_of(&self, time: SimTime) -> usize {
        ((time.as_nanos() >> self.shift) & self.mask) as usize
    }

    fn alloc_slot(&mut self, time: SimTime, seq: u64, value: T) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let slot = &mut self.slots[idx as usize];
            self.free = slot.next;
            slot.time = time;
            slot.seq = seq;
            slot.next = NIL;
            slot.value = Some(value);
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                time,
                seq,
                next: NIL,
                value: Some(value),
            });
            idx
        }
    }

    /// Schedules `value` at `(time, seq)`.
    ///
    /// The caller must keep `seq` globally unique (the engine's sequence
    /// counter does) and must not schedule before an already-popped time —
    /// the same contract the engine's heap had.
    pub fn push(&mut self, time: SimTime, seq: u64, value: T) {
        if self.len + 1 > self.buckets.len() * 2 {
            self.grow();
        }
        let idx = self.alloc_slot(time, seq, value);
        self.insert_slot(idx);
        self.len += 1;
    }

    /// Links an allocated slot into its bucket, keeping the bucket sorted
    /// by `(time, seq)`.
    fn insert_slot(&mut self, idx: u32) {
        let (time, seq) = {
            let s = &self.slots[idx as usize];
            (s.time, s.seq)
        };
        let b = self.bucket_of(time);
        let bucket = self.buckets[b];
        if bucket.head == NIL {
            self.buckets[b] = Bucket {
                head: idx,
                tail: idx,
            };
            return;
        }
        // Monotone fast path: at or after the bucket's current maximum.
        let tail = &self.slots[bucket.tail as usize];
        if (time, seq) >= (tail.time, tail.seq) {
            self.slots[bucket.tail as usize].next = idx;
            self.buckets[b].tail = idx;
            return;
        }
        // Sorted insert (an earlier-epoch event landing in a bucket that
        // already holds wrapped-around future events, or a same-day event
        // scheduled behind a later one).
        let mut prev = NIL;
        let mut cur = bucket.head;
        loop {
            let s = &self.slots[cur as usize];
            if (time, seq) < (s.time, s.seq) {
                break;
            }
            prev = cur;
            cur = s.next;
            debug_assert!(cur != NIL, "tail check should have caught appends");
        }
        self.slots[idx as usize].next = cur;
        if prev == NIL {
            self.buckets[b].head = idx;
        } else {
            self.slots[prev as usize].next = idx;
        }
    }

    /// Pops the earliest event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Scan the calendar one day at a time. Every event of a given day
        // lives in that day's single bucket (sorted), so the first head
        // whose day matches the cursor is the global minimum.
        for _ in 0..self.buckets.len() {
            let b = (self.day & self.mask) as usize;
            let head = self.buckets[b].head;
            if head != NIL {
                let s = &self.slots[head as usize];
                if s.time.as_nanos() >> self.shift == self.day {
                    return Some(self.unlink_head(b));
                }
            }
            self.day += 1;
        }
        // A full lap found nothing in its day: the residents are all far
        // in the future. Jump the cursor to the earliest head directly.
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if bucket.head == NIL {
                continue;
            }
            let s = &self.slots[bucket.head as usize];
            if best.is_none_or(|(t, q, _)| (s.time, s.seq) < (t, q)) {
                best = Some((s.time, s.seq, b));
            }
        }
        let (time, _, b) = best.expect("non-empty queue with no bucket heads");
        self.day = time.as_nanos() >> self.shift;
        Some(self.unlink_head(b))
    }

    fn unlink_head(&mut self, b: usize) -> (SimTime, u64, T) {
        let idx = self.buckets[b].head;
        let slot = &mut self.slots[idx as usize];
        let time = slot.time;
        let seq = slot.seq;
        let value = slot.value.take().expect("popping a free slot");
        let next = slot.next;
        self.buckets[b].head = next;
        if next == NIL {
            self.buckets[b].tail = NIL;
        }
        slot.next = self.free;
        self.free = idx;
        self.len -= 1;
        (time, seq, value)
    }

    /// Doubles the bucket count and re-fits the bucket width to the
    /// resident events' observed span, then relinks every slot. Amortized
    /// over the pushes that triggered it.
    fn grow(&mut self) {
        // Collect resident slots (those still holding a value), sorted so
        // re-insertion takes the monotone append path.
        let mut resident: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&i| self.slots[i as usize].value.is_some())
            .collect();
        resident.sort_unstable_by_key(|&i| {
            let s = &self.slots[i as usize];
            (s.time, s.seq)
        });
        debug_assert_eq!(
            resident.len(),
            self.len,
            "calendar-queue live-entry count diverged from arena occupancy at regrow"
        );

        let nbuckets = (self.buckets.len() * 2).max(INITIAL_BUCKETS);
        self.buckets.clear();
        self.buckets.resize(nbuckets, Bucket::EMPTY);
        self.mask = (nbuckets - 1) as u64;

        // Re-fit the width: aim for roughly one event per day bucket by
        // matching the mean inter-event gap, clamped to sane widths.
        if let (Some(&first), Some(&last)) = (resident.first(), resident.last()) {
            let lo = self.slots[first as usize].time.as_nanos();
            let hi = self.slots[last as usize].time.as_nanos();
            let gap = ((hi - lo) / resident.len() as u64).max(1);
            self.shift = gap.ilog2().clamp(MIN_SHIFT, MAX_SHIFT);
            // The cursor must not pass the earliest resident's new day.
            self.day = lo >> self.shift;
        }

        for idx in resident {
            self.slots[idx as usize].next = NIL;
            self.insert_slot(idx);
        }
    }
}

impl<T> std::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width_ns", &(1u64 << self.shift))
            .field("day", &self.day)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + crate::time::SimDuration::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(t(300), 0, "c");
        q.push(t(100), 1, "a");
        q.push(t(200), 2, "b");
        assert_eq!(q.pop(), Some((t(100), 1, "a")));
        assert_eq!(q.pop(), Some((t(200), 2, "b")));
        assert_eq!(q.pop(), Some((t(300), 0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_pops_fifo_by_seq() {
        let mut q = CalendarQueue::new();
        for seq in 0..100u64 {
            q.push(t(5_000), seq, seq);
        }
        for seq in 0..100u64 {
            assert_eq!(q.pop(), Some((t(5_000), seq, seq)));
        }
    }

    #[test]
    fn far_future_event_is_reached() {
        let mut q = CalendarQueue::new();
        // Day gap far beyond one calendar lap at the initial width.
        q.push(t(1_000_000_000_000), 0, "far");
        q.push(t(10), 1, "near");
        assert_eq!(q.pop(), Some((t(10), 1, "near")));
        assert_eq!(q.pop(), Some((t(1_000_000_000_000), 0, "far")));
    }

    #[test]
    fn growth_preserves_order() {
        let mut q = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        // Enough events to force several rebuilds, spread over a wide span
        // with clusters of ties.
        let mut seq = 0u64;
        for i in 0..500u64 {
            let time = (i * 7919) % 100_000;
            for _ in 0..1 + (i % 3) {
                q.push(t(time), seq, seq);
                heap.push(Reverse((t(time), seq)));
                seq += 1;
            }
        }
        while let Some(Reverse((time, s))) = heap.pop() {
            assert_eq!(q.pop(), Some((time, s, s)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_with_advancing_clock() {
        // Mirrors the engine's use: pops advance the clock, pushes are
        // never before it.
        let mut q = CalendarQueue::new();
        let mut oracle: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut clock = 0u64;
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = |m: u64| {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        for _ in 0..5_000 {
            if next(3) > 0 || oracle.is_empty() {
                let at = clock + next(50_000);
                q.push(t(at), seq, seq);
                oracle.push(Reverse((t(at), seq)));
                seq += 1;
            } else {
                let Reverse((time, s)) = oracle.pop().unwrap();
                assert_eq!(q.pop(), Some((time, s, s)));
                clock = time.as_nanos();
            }
        }
        while let Some(Reverse((time, s))) = oracle.pop() {
            assert_eq!(q.pop(), Some((time, s, s)));
        }
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(t(i * 1000), i, i);
        }
        q.clear();
        assert!(q.is_empty());
        q.push(t(5), 0, 42);
        assert_eq!(q.pop(), Some((t(5), 0, 42)));
    }

    #[test]
    fn regrow_occupancy_matches_live_count() {
        // Interleave pushes and pops so the arena holds freed slots when
        // rebuilds sweep it; each `grow` runs the occupancy == len
        // debug_assert with a non-trivial free list.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut pushed = 0usize;
        let mut popped = 0usize;
        for round in 0..50u64 {
            for i in 0..40u64 {
                q.push(t(round * 100_000 + i * 13), seq, seq);
                seq += 1;
                pushed += 1;
            }
            for _ in 0..20 {
                assert!(q.pop().is_some());
                popped += 1;
            }
        }
        let mut last = (t(0), 0u64);
        while let Some((time, s, _)) = q.pop() {
            assert!((time, s) >= last, "order violated after regrow");
            last = (time, s);
            popped += 1;
        }
        assert_eq!(popped, pushed);
        assert!(q.is_empty());
    }

    #[test]
    fn steady_state_reuses_slots() {
        let mut q = CalendarQueue::new();
        for (seq, round) in (0..1_000u64).enumerate() {
            q.push(t(round * 100), seq as u64, ());
            q.pop().unwrap();
        }
        // One resident event at a time: the arena never grew past the
        // handful the free list cycles through.
        assert!(q.slots.len() <= 2, "arena grew to {}", q.slots.len());
    }
}
