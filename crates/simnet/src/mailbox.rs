//! Tag-indexed process mailboxes with O(1) amortized matching.
//!
//! The seed engine kept one `VecDeque<Envelope>` per mailbox and matched
//! receives with a linear scan plus an O(n) `VecDeque::remove` — the hot
//! path of every collective. This mailbox instead assigns each arriving
//! envelope a per-mailbox *arrival sequence number* and indexes it three
//! ways:
//!
//! * `all` — global arrival-order FIFO of sequence numbers;
//! * `by_tag` — per-tag FIFO of sequence numbers (hash map, FX-style
//!   integer hashing);
//! * `by_src` — per-source FIFO of sequence numbers (dense vector).
//!
//! Removal is *lazy*: taking an envelope removes it from the id→envelope
//! store only, and stale sequence numbers left in the other indexes are
//! skipped (and popped) when they surface at a queue front. Each sequence
//! number is pushed to each index once and popped at most once, so
//! wildcard, tag-only and src-only receives are O(1) amortized. A
//! src+tag receive walks the per-tag FIFO checking sources — O(k) in the
//! messages queued under that tag, which the tool layer keeps at ~1 by
//! using unique tags per collective operation.

use crate::envelope::{Envelope, Matcher};
use crate::ids::Tag;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// FX-style multiplicative hasher for small integer keys (tags). The
/// standard SipHash is measurably slower on the per-message path and its
/// DoS resistance buys nothing inside a simulator.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.hash = (self.hash.rotate_left(5) ^ u64::from(n)).wrapping_mul(FX_SEED);
    }

    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// One process's incoming-message buffer. See the module docs for the
/// indexing scheme.
#[derive(Debug, Default)]
pub(crate) struct Mailbox {
    /// Fast slot: the sole queued envelope while the indexes hold no live
    /// message. Ping-pong-style traffic (one message in flight per
    /// mailbox, receiver arriving just after the message) lives entirely
    /// in this slot and never pays `all`/`by_tag`/`by_src` maintenance.
    /// A second arrival spills the head into the indexes first, so
    /// arrival order is preserved; a take always checks the head before
    /// the indexes because the head is the earliest arrival.
    head: Option<Envelope>,
    /// Next arrival sequence number.
    seq: u64,
    /// Live envelopes by arrival sequence number.
    store: HashMap<u64, Envelope, FxBuild>,
    /// Arrival-order FIFO over all live (and lazily, some dead) ids.
    all: VecDeque<u64>,
    /// Per-tag arrival-order FIFOs.
    by_tag: HashMap<Tag, VecDeque<u64>, FxBuild>,
    /// Per-source arrival-order FIFOs, indexed densely by `ProcId`.
    by_src: Vec<VecDeque<u64>>,
    /// Upper bound on dead ids still referenced by the indexes; drives
    /// amortized compaction so index memory tracks *queued* messages, not
    /// total messages ever buffered.
    stale: usize,
    /// The matcher of a process blocked in `recv` on this mailbox, if any.
    pub(crate) waiting: Option<Matcher>,
}

impl Mailbox {
    /// Buffers an arrived envelope: into the head fast slot when the
    /// mailbox is empty, otherwise into the indexes.
    pub(crate) fn push(&mut self, env: Envelope) {
        if self.head.is_none() && self.store.is_empty() {
            self.head = Some(env);
            return;
        }
        if let Some(h) = self.head.take() {
            self.index_push(h);
        }
        self.index_push(env);
    }

    /// Inserts an envelope into all three indexes.
    fn index_push(&mut self, env: Envelope) {
        let id = self.seq;
        self.seq += 1;
        let src = env.src.index();
        if src >= self.by_src.len() {
            self.by_src.resize_with(src + 1, VecDeque::new);
        }
        self.by_src[src].push_back(id);
        self.by_tag.entry(env.tag).or_default().push_back(id);
        self.all.push_back(id);
        self.store.insert(id, env);
    }

    /// True if no live messages are queued (test aid).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.head.is_none() && self.store.is_empty()
    }

    /// Removes and returns the earliest-arrived envelope matching `m`.
    pub(crate) fn take_match(&mut self, m: &Matcher) -> Option<Envelope> {
        // The head slot, when occupied, is the earliest arrival: take it
        // directly (no index bookkeeping, nothing goes stale). If it does
        // not match, fall through — a matching indexed message arrived
        // later, which is exactly what matching semantics ask for.
        if let Some(h) = &self.head {
            if m.matches(h) {
                return self.head.take();
            }
        }
        let taken = match (m.src, m.tag) {
            (None, None) => {
                let id = Self::pop_live(&mut self.all, &self.store, &mut self.stale)?;
                self.store.remove(&id)
            }
            (None, Some(tag)) => {
                let q = self.by_tag.get_mut(&tag)?;
                let id = Self::pop_live(q, &self.store, &mut self.stale)?;
                self.store.remove(&id)
            }
            (Some(src), None) => {
                let q = self.by_src.get_mut(src.index())?;
                let id = Self::pop_live(q, &self.store, &mut self.stale)?;
                self.store.remove(&id)
            }
            (Some(src), Some(tag)) => {
                let q = self.by_tag.get_mut(&tag)?;
                // Drop dead ids surfacing at the front, then walk the
                // (typically length-1) live remainder for the source.
                while q.front().is_some_and(|id| !self.store.contains_key(id)) {
                    q.pop_front();
                    self.stale = self.stale.saturating_sub(1);
                }
                let pos = q
                    .iter()
                    .position(|id| self.store.get(id).is_some_and(|e| e.src == src))?;
                let id = q.remove(pos).expect("indexed position vanished");
                self.store.remove(&id)
            }
        };
        // Removing a live id orphans its entries in the two indexes the
        // take did not go through.
        self.stale += 2;
        if self.stale > 2 * self.store.len() + 64 {
            self.compact();
        }
        taken
    }

    /// Pops the first id in `q` that is still live, discarding dead ones.
    fn pop_live(
        q: &mut VecDeque<u64>,
        store: &HashMap<u64, Envelope, FxBuild>,
        stale: &mut usize,
    ) -> Option<u64> {
        while let Some(id) = q.pop_front() {
            if store.contains_key(&id) {
                return Some(id);
            }
            *stale = stale.saturating_sub(1);
        }
        None
    }

    /// Rebuilds every index from the live store in arrival order, dropping
    /// all dead ids. Amortized O(1) per take via the `stale` trigger.
    fn compact(&mut self) {
        // Lazy deletion leaves tombstones (dead ids) behind in the
        // indexes, but must never *lose* a live id: every queued envelope
        // still has its arrival-index entry to rebuild from.
        #[cfg(debug_assertions)]
        {
            let present: std::collections::HashSet<u64> = self.all.iter().copied().collect();
            debug_assert!(
                self.store.keys().all(|id| present.contains(id)),
                "mailbox lazy deletion dropped a live id from the arrival index"
            );
        }
        let mut ids: Vec<u64> = self.store.keys().copied().collect();
        ids.sort_unstable();
        self.all.clear();
        self.by_tag.clear();
        for q in &mut self.by_src {
            q.clear();
        }
        for &id in &ids {
            let env = &self.store[&id];
            self.all.push_back(id);
            self.by_tag.entry(env.tag).or_default().push_back(id);
            self.by_src[env.src.index()].push_back(id);
        }
        self.stale = 0;
        debug_assert_eq!(
            self.all.len()
                + self.by_tag.values().map(VecDeque::len).sum::<usize>()
                + self.by_src.iter().map(VecDeque::len).sum::<usize>(),
            3 * self.store.len(),
            "mailbox compaction left undrained tombstones"
        );
    }

    /// Total index entries currently held (test aid for compaction bounds).
    #[cfg(test)]
    pub(crate) fn index_entries(&self) -> usize {
        self.all.len()
            + self.by_tag.values().map(VecDeque::len).sum::<usize>()
            + self.by_src.iter().map(VecDeque::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;
    use bytes::Bytes;

    fn env(src: u32, tag: Tag) -> Envelope {
        Envelope::new(ProcId(src), ProcId(9), tag, Bytes::new())
    }

    #[test]
    fn wildcard_takes_in_arrival_order() {
        let mut mb = Mailbox::default();
        mb.push(env(0, 5));
        mb.push(env(1, 3));
        mb.push(env(0, 5));
        assert_eq!(mb.take_match(&Matcher::any()).unwrap().tag, 5);
        assert_eq!(mb.take_match(&Matcher::any()).unwrap().tag, 3);
        assert_eq!(mb.take_match(&Matcher::any()).unwrap().tag, 5);
        assert!(mb.take_match(&Matcher::any()).is_none());
        assert!(mb.is_empty());
    }

    #[test]
    fn tagged_take_skips_other_tags_preserving_order() {
        let mut mb = Mailbox::default();
        mb.push(env(0, 1));
        mb.push(env(0, 2));
        mb.push(env(0, 1));
        assert_eq!(mb.take_match(&Matcher::tagged(2)).unwrap().tag, 2);
        // Earlier tag-1 message still arrives first on a wildcard.
        let got = mb.take_match(&Matcher::any()).unwrap();
        assert_eq!(got.tag, 1);
        assert_eq!(mb.take_match(&Matcher::tagged(1)).unwrap().tag, 1);
        assert!(mb.is_empty());
    }

    #[test]
    fn src_take_respects_order_across_tags() {
        let mut mb = Mailbox::default();
        mb.push(env(2, 10));
        mb.push(env(1, 11));
        mb.push(env(2, 12));
        let a = mb.take_match(&Matcher::from(ProcId(2))).unwrap();
        assert_eq!(a.tag, 10);
        let b = mb.take_match(&Matcher::from(ProcId(2))).unwrap();
        assert_eq!(b.tag, 12);
        assert!(mb.take_match(&Matcher::from(ProcId(2))).is_none());
        assert_eq!(mb.take_match(&Matcher::from(ProcId(1))).unwrap().tag, 11);
    }

    #[test]
    fn src_and_tag_take_is_exact() {
        let mut mb = Mailbox::default();
        mb.push(env(1, 7));
        mb.push(env(2, 7));
        mb.push(env(1, 8));
        let got = mb.take_match(&Matcher::from_tagged(ProcId(2), 7)).unwrap();
        assert_eq!((got.src, got.tag), (ProcId(2), 7));
        assert!(mb.take_match(&Matcher::from_tagged(ProcId(2), 8)).is_none());
        assert_eq!(
            mb.take_match(&Matcher::from_tagged(ProcId(1), 7))
                .unwrap()
                .tag,
            7
        );
        assert_eq!(
            mb.take_match(&Matcher::from_tagged(ProcId(1), 8))
                .unwrap()
                .tag,
            8
        );
    }

    #[test]
    fn directed_takes_do_not_leak_index_entries() {
        // The jpeg-style pattern: every receive is (src, tag)-directed, so
        // removals never naturally drain `all`/`by_src`. Compaction must
        // keep index memory proportional to queued messages.
        let mut mb = Mailbox::default();
        for round in 0..10_000u32 {
            mb.push(env(1, round));
            let got = mb
                .take_match(&Matcher::from_tagged(ProcId(1), round))
                .unwrap();
            assert_eq!(got.tag, round);
        }
        assert!(mb.is_empty());
        assert!(
            mb.index_entries() <= 128,
            "index entries leaked: {}",
            mb.index_entries()
        );
    }

    #[test]
    fn single_message_traffic_never_touches_the_indexes() {
        // Ping-pong shape: at most one message queued at a time, receiver
        // arriving after the message. Everything stays in the head slot.
        let mut mb = Mailbox::default();
        for round in 0..1_000u32 {
            mb.push(env(1, round));
            let got = mb
                .take_match(&Matcher::from_tagged(ProcId(1), round))
                .unwrap();
            assert_eq!(got.tag, round);
            assert_eq!(mb.index_entries(), 0, "index maintenance not bypassed");
        }
        assert!(mb.is_empty());
    }

    #[test]
    fn second_arrival_spills_head_preserving_order() {
        let mut mb = Mailbox::default();
        mb.push(env(0, 1)); // head
        mb.push(env(0, 2)); // spills head into the indexes
        assert_eq!(mb.take_match(&Matcher::any()).unwrap().tag, 1);
        assert_eq!(mb.take_match(&Matcher::any()).unwrap().tag, 2);
        assert!(mb.is_empty());
    }

    #[test]
    fn non_matching_head_falls_through_to_indexes() {
        let mut mb = Mailbox::default();
        mb.push(env(0, 1));
        mb.push(env(0, 2));
        // Tag-2 is indexed; the (spilled) tag-1 message must survive.
        assert_eq!(mb.take_match(&Matcher::tagged(2)).unwrap().tag, 2);
        assert_eq!(mb.take_match(&Matcher::tagged(1)).unwrap().tag, 1);
        assert!(mb.is_empty());
        // An occupied head that does not match yields None, not a panic.
        mb.push(env(0, 7));
        assert!(mb.take_match(&Matcher::tagged(8)).is_none());
        assert_eq!(mb.take_match(&Matcher::tagged(7)).unwrap().tag, 7);
    }

    #[test]
    fn stale_index_entries_are_skipped() {
        let mut mb = Mailbox::default();
        // Interleave takes through different indexes so each leaves stale
        // ids in the others.
        for i in 0..100u32 {
            mb.push(env(i % 3, i % 5));
        }
        let mut taken = 0;
        while mb.take_match(&Matcher::tagged(2)).is_some() {
            taken += 1;
        }
        while mb.take_match(&Matcher::from(ProcId(1))).is_some() {
            taken += 1;
        }
        while mb.take_match(&Matcher::any()).is_some() {
            taken += 1;
        }
        assert_eq!(taken, 100);
        assert!(mb.is_empty());
    }

    #[test]
    fn compaction_drains_tombstones_with_a_resident_message() {
        let mut mb = Mailbox::default();
        // A long-lived message keeps the indexes engaged (the head fast
        // slot only serves an otherwise-empty mailbox), while churned
        // tagged messages orphan entries in `all`/`by_src` on every take.
        mb.push(env(0, 999));
        for _ in 0..200 {
            mb.push(env(1, 5));
            assert!(mb.take_match(&Matcher::tagged(5)).is_some());
        }
        // The stale counter (+2 per take, live count ~1) crosses the
        // compaction threshold every ~33 takes — compact()'s
        // debug_asserts run on each trigger. Without compaction the
        // indexes would hold ~400 entries; with it, at most one
        // threshold's worth of fresh tombstones survives.
        assert!(
            mb.index_entries() <= 3 + 2 * 34,
            "tombstones not drained: {} index entries",
            mb.index_entries()
        );
        assert_eq!(mb.take_match(&Matcher::tagged(999)).unwrap().tag, 999);
        assert!(mb.is_empty());
    }
}
