//! Platform topologies: named host groups and per-link-class parameters.
//!
//! The paper's six testbeds are *homogeneous* — one host model, one
//! interconnect — but the methodology is supposed to generalize to
//! configurations the original authors never measured. A [`Topology`]
//! models that generalization: an ordered list of named [`HostGroup`]s
//! (each a [`HostSpec`] plus a rank count, e.g. "8 fast nodes" and
//! "24 slow nodes") and the link classes messages traverse — every group
//! carries its own *intra-group* [`LinkParams`] (the rack fabric), and a
//! multi-group topology carries one *inter-group* link class (the WAN
//! between sites).
//!
//! Rank placement is deterministic: ranks fill groups in declaration
//! order, so rank `r` always lands on the same host model and the link
//! class of an endpoint pair is a pure function of the two ranks
//! ([`Topology::link_class`]). A homogeneous platform is simply a
//! single-group topology ([`Topology::homogeneous`]), which is exactly
//! how the built-in testbeds are expressed — nothing downstream
//! special-cases the homogeneous shape.

use crate::host::HostSpec;
use crate::net::LinkParams;
use std::fmt;

/// The group name used by [`Topology::homogeneous`]. A single-group
/// topology with this name renders in the legacy homogeneous `.spec`
/// shorthand (`host.*` / `link.*` keys directly in the platform
/// section).
pub const HOMOGENEOUS_GROUP: &str = "all";

/// One named host group: `count` ranks of one host model, wired
/// together by one intra-group link class.
#[derive(Debug, Clone, PartialEq)]
pub struct HostGroup {
    /// Group name (a registry-style slug, unique within the topology).
    pub name: String,
    /// The host model populating this group.
    pub host: HostSpec,
    /// Number of ranks this group contributes.
    pub count: usize,
    /// The link class connecting hosts *within* this group.
    pub link: LinkParams,
}

/// A platform's topology: ordered host groups plus the inter-group link
/// class. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Host groups in placement order (ranks fill group 0 first).
    pub groups: Vec<HostGroup>,
    /// The link class for endpoint pairs in *different* groups. Present
    /// exactly when the topology has more than one group.
    pub inter: Option<LinkParams>,
}

impl Topology {
    /// A single-group topology: `count` hosts of one model on one link —
    /// the shape of every homogeneous platform, including all built-ins.
    pub fn homogeneous(host: HostSpec, link: LinkParams, count: usize) -> Topology {
        Topology {
            groups: vec![HostGroup {
                name: HOMOGENEOUS_GROUP.to_string(),
                host,
                count,
                link,
            }],
            inter: None,
        }
    }

    /// Whether this topology has more than one host group.
    pub fn is_heterogeneous(&self) -> bool {
        self.groups.len() > 1
    }

    /// Whether this topology is the canonical homogeneous shape (one
    /// group named [`HOMOGENEOUS_GROUP`], no inter link) — the shape
    /// that renders in the legacy `.spec` shorthand.
    pub fn is_homogeneous_shorthand(&self) -> bool {
        self.groups.len() == 1 && self.groups[0].name == HOMOGENEOUS_GROUP && self.inter.is_none()
    }

    /// Total host capacity (the sum of all group counts).
    pub fn total_hosts(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// The primary (first) group. Homogeneous accessors like
    /// `PlatformId::host()` resolve here.
    pub fn primary(&self) -> &HostGroup {
        &self.groups[0]
    }

    /// First global rank index of group `g`.
    pub fn group_start(&self, g: usize) -> usize {
        self.groups[..g].iter().map(|gr| gr.count).sum()
    }

    /// The group index rank `rank` is placed in: ranks fill groups in
    /// declaration order (ranks `0..groups[0].count` land in group 0,
    /// and so on).
    ///
    /// This is a per-call linear scan over the groups; call sites that
    /// look up many ranks (fabric construction, per-rank host placement)
    /// should precompute a [`Placement`] once via
    /// [`Topology::placement`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `rank` exceeds the topology's capacity.
    pub fn group_of(&self, rank: usize) -> usize {
        let mut start = 0;
        for (g, group) in self.groups.iter().enumerate() {
            start += group.count;
            if rank < start {
                return g;
            }
        }
        panic!(
            "rank {rank} exceeds the topology's capacity of {} host(s)",
            self.total_hosts()
        );
    }

    /// Precomputes the group-start boundaries once, so repeated
    /// rank→group lookups cost a binary search over the boundary table
    /// instead of [`Topology::group_of`]'s per-call linear scan.
    pub fn placement(&self) -> Placement {
        let mut ends = Vec::with_capacity(self.groups.len());
        let mut total = 0;
        for g in &self.groups {
            total += g.count;
            ends.push(total);
        }
        Placement { ends }
    }

    /// The host model rank `rank` is placed on.
    ///
    /// # Panics
    ///
    /// Panics if `rank` exceeds the topology's capacity.
    pub fn host_for_rank(&self, rank: usize) -> &HostSpec {
        &self.groups[self.group_of(rank)].host
    }

    /// The link class an `(a, b)` endpoint pair uses: the groups' shared
    /// intra-group link when both ranks are in the same group (including
    /// `a == b`), the inter-group link otherwise.
    ///
    /// # Panics
    ///
    /// Panics if either rank exceeds the capacity, or if the ranks span
    /// groups in a topology without an inter link (impossible for
    /// validated topologies).
    pub fn link_class(&self, a: usize, b: usize) -> &LinkParams {
        let ga = self.group_of(a);
        let gb = self.group_of(b);
        if ga == gb {
            &self.groups[ga].link
        } else {
            self.inter
                .as_ref()
                .expect("multi-group topology without an inter-group link")
        }
    }

    /// A stable slug describing a *heterogeneous* topology's group mix,
    /// e.g. `8fast-24slow`. `None` for single-group topologies, so
    /// homogeneous scenario/store keys are exactly what they always were.
    pub fn hetero_slug(&self) -> Option<String> {
        if !self.is_heterogeneous() {
            return None;
        }
        Some(
            self.groups
                .iter()
                .map(|g| format!("{}{}", g.count, g.name))
                .collect::<Vec<_>>()
                .join("-"),
        )
    }

    /// The same groups and link classes with new rank counts — the
    /// building block for sweeping *group mixes* (register one platform
    /// per mix, put them all in a campaign grid).
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have one entry per group.
    pub fn remix(&self, counts: &[usize]) -> Topology {
        assert_eq!(
            counts.len(),
            self.groups.len(),
            "remix needs one count per group"
        );
        Topology {
            groups: self
                .groups
                .iter()
                .zip(counts)
                .map(|(g, &count)| HostGroup { count, ..g.clone() })
                .collect(),
            inter: self.inter.clone(),
        }
    }

    /// Checks the topology for internal consistency; `ctx` names the
    /// owning platform in diagnostics.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self, ctx: &str) -> Result<(), String> {
        if self.groups.is_empty() {
            return Err(format!("{ctx}: topology needs at least one host group"));
        }
        for (i, g) in self.groups.iter().enumerate() {
            if !crate::platform::is_slug(&g.name) {
                return Err(format!(
                    "{ctx}: group name '{}' must be non-empty lower-case [a-z0-9-]",
                    g.name
                ));
            }
            if self.groups[..i].iter().any(|o| o.name == g.name) {
                return Err(format!("{ctx}: duplicate group name '{}'", g.name));
            }
            if g.count == 0 {
                return Err(format!("{ctx}: group '{}': count must be > 0", g.name));
            }
            validate_host(&g.host, &format!("{ctx}: group '{}'", g.name))?;
            validate_link(&g.link, &format!("{ctx}: group '{}'", g.name))?;
        }
        match (&self.inter, self.groups.len()) {
            (None, n) if n > 1 => Err(format!(
                "{ctx}: a multi-group topology needs an inter-group link"
            )),
            (Some(_), 1) => Err(format!(
                "{ctx}: a single-group topology must not declare an inter-group link"
            )),
            (Some(link), _) => validate_link(link, &format!("{ctx}: inter-group link")),
            (None, _) => Ok(()),
        }
    }
}

/// Precomputed rank-placement boundaries of one [`Topology`]: the
/// cumulative group ends, built once per topology so rank→group lookups
/// on hot paths (fabric construction, per-rank host models) do not
/// re-run the linear scan of [`Topology::group_of`] per call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `ends[g]` is the first global rank *after* group `g`.
    ends: Vec<usize>,
}

impl Placement {
    /// Total host capacity (equals [`Topology::total_hosts`]).
    pub fn total_hosts(&self) -> usize {
        self.ends.last().copied().unwrap_or(0)
    }

    /// The group index rank `rank` is placed in — identical to
    /// [`Topology::group_of`] on the source topology, in O(log groups).
    ///
    /// # Panics
    ///
    /// Panics if `rank` exceeds the topology's capacity.
    pub fn group_of(&self, rank: usize) -> usize {
        let g = self.ends.partition_point(|&end| end <= rank);
        assert!(
            g < self.ends.len(),
            "rank {rank} exceeds the topology's capacity of {} host(s)",
            self.total_hosts()
        );
        g
    }
}

/// Checks one host model's rates (shared by group and homogeneous
/// validation paths).
pub(crate) fn validate_host(host: &HostSpec, ctx: &str) -> Result<(), String> {
    for (field, v) in [
        ("host.mflops", host.mflops),
        ("host.mips", host.mips),
        ("host.mem_bw_mbs", host.mem_bw_mbs),
        ("host.sw_scale", host.sw_scale),
    ] {
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("{ctx}: {field} must be positive and finite"));
        }
    }
    Ok(())
}

/// Checks one link class's parameters.
pub(crate) fn validate_link(link: &LinkParams, ctx: &str) -> Result<(), String> {
    if !link.bandwidth_mbps.is_finite() || link.bandwidth_mbps <= 0.0 {
        return Err(format!("{ctx}: link bandwidth must be positive"));
    }
    if link.mtu == 0 {
        return Err(format!("{ctx}: link mtu must be > 0"));
    }
    Ok(())
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut start = 0;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(
                f,
                "{}\u{d7}{} (ranks {}..{}, {})",
                g.count,
                g.name,
                start,
                start + g.count,
                g.link.name
            )?;
            start += g.count;
        }
        if let Some(inter) = &self.inter {
            write!(f, " over {}", inter.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkKind;

    fn two_group() -> Topology {
        Topology {
            groups: vec![
                HostGroup {
                    name: "fast".to_string(),
                    host: HostSpec::alpha_axp(),
                    count: 8,
                    link: NetworkKind::Fddi.params(),
                },
                HostGroup {
                    name: "slow".to_string(),
                    host: HostSpec::sun_elc(),
                    count: 24,
                    link: NetworkKind::Ethernet.params(),
                },
            ],
            inter: Some(NetworkKind::AtmWan.params()),
        }
    }

    #[test]
    fn placement_fills_groups_in_order() {
        let t = two_group();
        assert_eq!(t.total_hosts(), 32);
        assert_eq!(t.group_of(0), 0);
        assert_eq!(t.group_of(7), 0);
        assert_eq!(t.group_of(8), 1);
        assert_eq!(t.group_of(31), 1);
        assert_eq!(t.group_start(1), 8);
        assert!(t.host_for_rank(0).name.contains("Alpha"));
        assert!(t.host_for_rank(8).name.contains("ELC"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn out_of_capacity_rank_panics() {
        let _ = two_group().group_of(32);
    }

    #[test]
    fn placement_agrees_with_the_linear_scan() {
        // The precomputed boundary table must resolve every rank to the
        // same group as the per-call scan, including group edges and
        // zero-count groups skipped during placement.
        let mut topologies = vec![
            two_group(),
            Topology::homogeneous(HostSpec::sun_ipx(), NetworkKind::Fddi.params(), 7),
        ];
        let mut empty_first = two_group();
        empty_first.groups[0].count = 0;
        topologies.push(empty_first);
        for t in &topologies {
            let p = t.placement();
            assert_eq!(p.total_hosts(), t.total_hosts());
            for rank in 0..t.total_hosts() {
                assert_eq!(p.group_of(rank), t.group_of(rank), "rank {rank}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn out_of_capacity_rank_panics_in_placement() {
        let _ = two_group().placement().group_of(32);
    }

    #[test]
    fn link_classes_resolve_per_pair() {
        let t = two_group();
        assert_eq!(t.link_class(0, 7).name, "FDDI");
        assert_eq!(t.link_class(8, 31).name, "Ethernet");
        assert_eq!(t.link_class(0, 8).name, "ATM WAN (NYNET)");
        assert_eq!(t.link_class(31, 0).name, "ATM WAN (NYNET)");
        // Same-rank pairs resolve to the rank's own intra link.
        assert_eq!(t.link_class(9, 9).name, "Ethernet");
    }

    #[test]
    fn hetero_slug_is_stable_and_absent_for_homogeneous() {
        assert_eq!(two_group().hetero_slug().as_deref(), Some("8fast-24slow"));
        let homo = Topology::homogeneous(HostSpec::sun_ipx(), NetworkKind::AtmLan.params(), 8);
        assert_eq!(homo.hetero_slug(), None);
        assert!(homo.is_homogeneous_shorthand());
        assert!(!homo.is_heterogeneous());
    }

    #[test]
    fn remix_changes_counts_only() {
        let t = two_group().remix(&[4, 12]);
        assert_eq!(t.total_hosts(), 16);
        assert_eq!(t.hetero_slug().as_deref(), Some("4fast-12slow"));
        assert_eq!(t.groups[0].host, HostSpec::alpha_axp());
    }

    #[test]
    fn validation_rejects_inconsistent_topologies() {
        let ok = two_group();
        assert!(ok.validate("t").is_ok());

        let mut dup = ok.clone();
        dup.groups[1].name = "fast".to_string();
        assert!(dup.validate("t").unwrap_err().contains("duplicate"));

        let mut zero = ok.clone();
        zero.groups[0].count = 0;
        assert!(zero.validate("t").unwrap_err().contains("count"));

        let mut no_inter = ok.clone();
        no_inter.inter = None;
        assert!(no_inter.validate("t").unwrap_err().contains("inter-group"));

        let mut single_with_inter =
            Topology::homogeneous(HostSpec::sun_ipx(), NetworkKind::Fddi.params(), 4);
        single_with_inter.inter = Some(NetworkKind::AtmWan.params());
        assert!(single_with_inter
            .validate("t")
            .unwrap_err()
            .contains("must not declare"));

        let mut bad_name = ok.clone();
        bad_name.groups[0].name = "Fast Group".to_string();
        assert!(bad_name.validate("t").unwrap_err().contains("lower-case"));

        let mut bad_link = ok;
        bad_link.groups[0].link.bandwidth_mbps = -1.0;
        assert!(bad_link.validate("t").unwrap_err().contains("bandwidth"));
    }

    #[test]
    fn display_summarizes_groups_and_inter_link() {
        let s = two_group().to_string();
        assert!(s.contains("8\u{d7}fast"), "{s}");
        assert!(s.contains("ranks 8..32"), "{s}");
        assert!(s.contains("over ATM WAN"), "{s}");
    }
}
