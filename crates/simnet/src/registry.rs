//! The process-global platform registry.
//!
//! Platforms are *data* ([`PlatformSpec`]), addressed by cheap copyable
//! [`PlatformId`] handles. The registry seeds itself with the paper's six
//! built-in testbeds ([`crate::builtin::builtin_platforms`]) on first
//! use; spec files (or code) register further platforms at run time.
//! Registration is append-only, so a handle, once issued, resolves for
//! the lifetime of the process.
//!
//! The tool-side registry lives in `pdceval_mpt::registry`, which also
//! provides the combined `ModelRegistry` facade over both tables.

use crate::platform::{PlatformId, PlatformSpec};
use std::sync::{Arc, OnceLock, RwLock};

static PLATFORMS: OnceLock<RwLock<Vec<Arc<PlatformSpec>>>> = OnceLock::new();

fn table() -> &'static RwLock<Vec<Arc<PlatformSpec>>> {
    PLATFORMS.get_or_init(|| {
        RwLock::new(
            crate::builtin::builtin_platforms()
                .into_iter()
                .map(Arc::new)
                .collect(),
        )
    })
}

/// Resolves a handle to its spec.
///
/// # Panics
///
/// Panics if the handle was not issued by this registry (impossible for
/// handles obtained through [`register_platform`] or the built-in
/// constants).
pub fn platform_spec(id: PlatformId) -> Arc<PlatformSpec> {
    table()
        .read()
        .expect("platform registry poisoned")
        .get(id.index())
        .cloned()
        .unwrap_or_else(|| panic!("PlatformId({}) is not registered", id.index()))
}

/// Registers a platform spec and returns its handle.
///
/// Registering a spec whose slug is already taken returns the existing
/// handle if the specs are identical (idempotent re-registration, e.g. a
/// spec file loaded twice) and an error if they differ.
///
/// # Errors
///
/// Returns a description of the conflict or validation failure.
pub fn register_platform(spec: PlatformSpec) -> Result<PlatformId, String> {
    spec.validate()?;
    let mut t = table().write().expect("platform registry poisoned");
    if let Some((i, existing)) = t.iter().enumerate().find(|(_, p)| p.slug == spec.slug) {
        return if **existing == spec {
            Ok(PlatformId::from_index(i))
        } else {
            Err(format!(
                "platform slug '{}' is already registered with a different spec",
                spec.slug
            ))
        };
    }
    t.push(Arc::new(spec));
    Ok(PlatformId::from_index(t.len() - 1))
}

/// All registered platforms, in registration order (built-ins first).
pub fn all_platforms() -> Vec<PlatformId> {
    let n = table().read().expect("platform registry poisoned").len();
    (0..n).map(PlatformId::from_index).collect()
}

/// Looks a platform up by its stable slug.
pub fn find_platform(slug: &str) -> Option<PlatformId> {
    table()
        .read()
        .expect("platform registry poisoned")
        .iter()
        .position(|p| p.slug == slug)
        .map(PlatformId::from_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::net::NetworkKind;

    fn toy(slug: &str, max_nodes: usize) -> PlatformSpec {
        PlatformSpec::homogeneous(
            format!("Toy {slug}"),
            slug,
            HostSpec::sun_ipx(),
            NetworkKind::Fddi.params(),
            max_nodes,
            false,
        )
    }

    #[test]
    fn builtins_resolve_by_slug_and_index() {
        assert_eq!(find_platform("sun-eth"), Some(PlatformId::SUN_ETHERNET));
        assert_eq!(find_platform("sp1-eth"), Some(PlatformId::SP1_ETHERNET));
        assert_eq!(find_platform("no-such-platform"), None);
        assert_eq!(platform_spec(PlatformId::ALPHA_FDDI).slug, "alpha-fddi");
    }

    #[test]
    fn registration_is_idempotent_and_conflict_checked() {
        let id = register_platform(toy("toy-reg", 8)).unwrap();
        assert_eq!(register_platform(toy("toy-reg", 8)).unwrap(), id);
        let err = register_platform(toy("toy-reg", 16)).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        assert_eq!(platform_spec(id).name, "Toy toy-reg");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let err = register_platform(toy("toy-zero", 0)).unwrap_err();
        assert!(err.contains("max_nodes"), "{err}");
    }
}
