//! # pdceval-simnet
//!
//! A deterministic discrete-event simulator of 1995-era multicomputer
//! testbeds, built as the experimental substrate for reproducing
//! *"Software Tool Evaluation Methodology"* (Hariri et al., NPAC/Syracuse
//! University, 1995).
//!
//! The paper benchmarks message-passing tools (Express, p4, PVM) on SUN,
//! Alpha and IBM SP-1 clusters over Ethernet, FDDI and ATM networks. That
//! hardware no longer exists, so this crate recreates it as a simulation:
//!
//! * [`engine`] — a deterministic discrete-event engine whose simulated
//!   processes are ordinary Rust closures written in blocking style;
//! * [`resource`] — FIFO service resources from which contention (shared
//!   Ethernet, single-threaded PVM daemons) emerges;
//! * [`flight`] — pipelined multi-fragment message transmission plans;
//! * [`host`] / [`work`] — calibrated CPU models pricing real computation;
//! * [`net`] / [`fabric`] — calibrated link models for the five testbed
//!   interconnects;
//! * [`topology`] — named host groups with per-link-class parameters
//!   (heterogeneous clusters; homogeneous platforms are the one-group
//!   special case);
//! * [`platform`] — the paper's §3.1 testbed configurations.
//!
//! Determinism: events are ordered by `(virtual time, sequence number)`,
//! exactly one simulated process runs at a time, and application work is
//! priced analytically — repeated runs of the same configuration produce
//! bit-identical results.
//!
//! # Quick example
//!
//! ```
//! use bytes::Bytes;
//! use pdceval_simnet::prelude::*;
//!
//! let mut sim = Simulation::new();
//! let pong = ProcId(1);
//! sim.spawn("ping", HostSpec::sun_ipx(), move |ctx| {
//!     let env = Envelope::new(ctx.pid(), pong, 0, Bytes::from_static(b"ping"));
//!     ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(
//!         SimDuration::from_micros(50),
//!     )]));
//!     let reply = ctx.recv(Matcher::any());
//!     assert_eq!(&reply.payload[..], b"pong");
//! });
//! sim.spawn("pong", HostSpec::sun_ipx(), |ctx| {
//!     let msg = ctx.recv(Matcher::any());
//!     let env = Envelope::new(ctx.pid(), msg.src, 0, Bytes::from_static(b"pong"));
//!     ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(
//!         SimDuration::from_micros(50),
//!     )]));
//! });
//! let outcome = sim.run()?;
//! assert_eq!(outcome.end_time.as_micros_f64(), 100.0);
//! # Ok::<(), pdceval_simnet::error::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builtin;
pub mod calq;
pub mod engine;
pub mod envelope;
pub mod error;
pub mod fabric;
pub mod flight;
pub mod host;
pub mod ids;
mod mailbox;
pub mod net;
pub mod perturb;
pub mod platform;
pub mod registry;
pub mod resource;
mod sched;
pub mod syncpoint;
pub mod time;
pub mod topology;
pub mod trace;
pub mod work;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::engine::{Ctx, SimOutcome, Simulation};
    pub use crate::envelope::{Envelope, Matcher};
    pub use crate::error::SimError;
    pub use crate::fabric::Fabric;
    pub use crate::flight::{Stage, Train, TransmitPlan};
    pub use crate::host::HostSpec;
    pub use crate::ids::{ProcId, ResourceId, Tag};
    pub use crate::net::{LinkParams, NetworkKind};
    pub use crate::perturb::{PerturbConfig, PerturbId, PerturbSpec};
    pub use crate::platform::{Platform, PlatformId, PlatformSpec};
    pub use crate::resource::ResourceStats;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{HostGroup, Topology};
    pub use crate::trace::{CounterSummary, TraceHandle, TraceSink};
    pub use crate::work::Work;
}
