//! Simulation error types.

use crate::time::SimTime;
use std::error::Error;
use std::fmt;

/// Errors terminating a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// No process is runnable, no event is pending, but some processes have
    /// not finished — the classic distributed deadlock (e.g. two processes
    /// each blocked in a receive that the other never sends).
    Deadlock {
        /// Virtual time at which progress stopped.
        time: SimTime,
        /// Names of the processes still blocked.
        blocked: Vec<String>,
    },
    /// A simulated process panicked.
    ProcPanic {
        /// Name of the panicking process.
        name: String,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// A simulated process was crashed by fault injection
    /// (see [`crate::perturb`]). Unlike [`SimError::ProcPanic`] this is an
    /// *expected* outcome of a crash-perturbed run: the model terminated
    /// cleanly instead of deadlocking on the dead rank.
    InjectedCrash {
        /// Name of the crashed process.
        name: String,
        /// Virtual time at which the crash fired.
        at: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { time, blocked } => {
                write!(
                    f,
                    "simulation deadlocked at {time}: {} process(es) blocked ({})",
                    blocked.len(),
                    blocked.join(", ")
                )
            }
            SimError::ProcPanic { name, message } => {
                write!(f, "simulated process '{name}' panicked: {message}")
            }
            SimError::InjectedCrash { name, at } => {
                write!(
                    f,
                    "simulated process '{name}' crashed by fault injection at {at}"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_deadlock() {
        let e = SimError::Deadlock {
            time: SimTime::from_nanos(5_000_000),
            blocked: vec!["node0".into(), "node1".into()],
        };
        let s = e.to_string();
        assert!(s.contains("deadlocked"));
        assert!(s.contains("node0"));
        assert!(s.contains("node1"));
    }

    #[test]
    fn display_panic() {
        let e = SimError::ProcPanic {
            name: "master".into(),
            message: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("master"));
    }

    #[test]
    fn display_injected_crash() {
        let e = SimError::InjectedCrash {
            name: "rank2".into(),
            at: SimTime::from_nanos(150_000),
        };
        let s = e.to_string();
        assert!(s.contains("rank2"), "{s}");
        assert!(s.contains("fault injection"), "{s}");
    }
}
