//! The discrete-event engine and the blocking process API.
//!
//! # Execution model
//!
//! Each simulated process is a closure running on its own OS thread, written
//! in natural blocking style (`ctx.recv(..)`, `ctx.hold(..)`). The engine
//! runs **exactly one process at a time**: a process executes until it
//! issues a simulator call, at which point control returns to the engine,
//! which advances virtual time by processing events in `(time, sequence)`
//! order. Ties are broken by insertion sequence, so runs are fully
//! deterministic regardless of OS scheduling.
//!
//! # Examples
//!
//! ```
//! use pdceval_simnet::engine::Simulation;
//! use pdceval_simnet::envelope::{Envelope, Matcher};
//! use pdceval_simnet::flight::{Stage, TransmitPlan};
//! use pdceval_simnet::host::HostSpec;
//! use pdceval_simnet::ids::ProcId;
//! use pdceval_simnet::time::SimDuration;
//!
//! let mut sim = Simulation::new();
//! let sender = sim.spawn("sender", HostSpec::sun_ipx(), |ctx| {
//!     let env = Envelope::new(ctx.pid(), ProcId(1), 7, bytes::Bytes::from_static(b"hi"));
//!     ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(
//!         SimDuration::from_micros(100),
//!     )]));
//! });
//! assert_eq!(sender, ProcId(0));
//! sim.spawn("receiver", HostSpec::sun_ipx(), |ctx| {
//!     let msg = ctx.recv(Matcher::tagged(7));
//!     assert_eq!(&msg.payload[..], b"hi");
//! });
//! let outcome = sim.run().expect("no deadlock");
//! assert_eq!(outcome.end_time.as_micros_f64(), 100.0);
//! ```

use crate::envelope::{Envelope, Matcher};
use crate::error::SimError;
use crate::flight::{Flight, Stage, TransmitPlan};
use crate::host::HostSpec;
use crate::ids::{ProcId, ResourceId};
use crate::resource::{Resource, ResourceStats, Waiter};
use crate::time::{SimDuration, SimTime};
use crate::work::Work;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Engine <-> process protocol
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Request {
    Hold(SimDuration),
    Serve {
        resource: ResourceId,
        service: SimDuration,
    },
    Transmit {
        env: Envelope,
        plan: TransmitPlan,
    },
    Recv(Matcher),
    TryRecv(Matcher),
    Finish,
    Panicked(String),
}

#[derive(Debug)]
struct Resume {
    time: SimTime,
    kind: ResumeKind,
}

#[derive(Debug)]
enum ResumeKind {
    Ok,
    Msg(Envelope),
    TryMsg(Option<Envelope>),
}

/// Panic payload used to unwind process threads when the simulation is torn
/// down while they are still blocked (deadlock or early exit).
struct SimAborted;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug)]
enum EventKind {
    Wake(ProcId),
    ServiceDone(ResourceId),
    FlightStage(usize),
}

// ---------------------------------------------------------------------------
// Process-side context
// ---------------------------------------------------------------------------

/// Handle through which a simulated process interacts with the simulation.
///
/// A `Ctx` is passed to the process closure at spawn time and must not be
/// sent to other threads (it is intentionally neither `Clone` nor usable
/// after the closure returns).
pub struct Ctx {
    pid: ProcId,
    host: HostSpec,
    req_tx: Sender<(ProcId, Request)>,
    resume_rx: Receiver<Resume>,
    now: Cell<SimTime>,
}

impl Ctx {
    fn call(&self, req: Request) -> ResumeKind {
        if self.req_tx.send((self.pid, req)).is_err() {
            std::panic::panic_any(SimAborted);
        }
        match self.resume_rx.recv() {
            Ok(resume) => {
                self.now.set(resume.time);
                resume.kind
            }
            Err(_) => std::panic::panic_any(SimAborted),
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The host this process runs on.
    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advances virtual time by `d` (models local activity that does not
    /// contend with other processes).
    pub fn hold(&self, d: SimDuration) {
        match self.call(Request::Hold(d)) {
            ResumeKind::Ok => {}
            other => unreachable!("hold resumed with {other:?}"),
        }
    }

    /// Performs computational work: advances virtual time by the cost of
    /// `w` on this process's host.
    pub fn work(&self, w: Work) {
        let d = w.cost_on(&self.host);
        if !d.is_zero() {
            self.hold(d);
        }
    }

    /// Queues at a FIFO resource and holds it for `service` time. Blocks
    /// (in virtual time) until service completes.
    pub fn serve(&self, resource: ResourceId, service: SimDuration) {
        match self.call(Request::Serve { resource, service }) {
            ResumeKind::Ok => {}
            other => unreachable!("serve resumed with {other:?}"),
        }
    }

    /// Launches a message transmission and returns immediately (virtual
    /// time does not advance). The envelope is delivered to the destination
    /// mailbox when the plan's last fragment completes.
    pub fn transmit(&self, env: Envelope, plan: TransmitPlan) {
        match self.call(Request::Transmit { env, plan }) {
            ResumeKind::Ok => {}
            other => unreachable!("transmit resumed with {other:?}"),
        }
    }

    /// Blocks until a message matching `m` is available, then removes and
    /// returns it. Messages are matched in arrival order.
    pub fn recv(&self, m: Matcher) -> Envelope {
        match self.call(Request::Recv(m)) {
            ResumeKind::Msg(env) => env,
            other => unreachable!("recv resumed with {other:?}"),
        }
    }

    /// Non-blocking probe: removes and returns a matching message if one
    /// has already arrived.
    pub fn try_recv(&self, m: Matcher) -> Option<Envelope> {
        match self.call(Request::TryRecv(m)) {
            ResumeKind::TryMsg(env) => env,
            other => unreachable!("try_recv resumed with {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Ready,
    Blocked,
    Finished,
}

struct ProcSlot {
    name: String,
    resume_tx: Sender<Resume>,
    handle: Option<JoinHandle<()>>,
    state: ProcState,
    finished_at: SimTime,
}

#[derive(Debug, Default)]
struct Mailbox {
    queue: VecDeque<Envelope>,
    waiting: Option<Matcher>,
}

impl Mailbox {
    fn take_match(&mut self, m: &Matcher) -> Option<Envelope> {
        let idx = self.queue.iter().position(|env| m.matches(env))?;
        self.queue.remove(idx)
    }
}

#[derive(Debug)]
struct Pending {
    remaining: usize,
    env: Option<Envelope>,
}

/// A configured simulation: resources plus spawned processes, ready to run.
///
/// See the [module documentation](self) for the execution model and an
/// example.
pub struct Simulation {
    resources: Vec<Resource>,
    procs: Vec<ProcSlot>,
    mailboxes: Vec<Mailbox>,
    req_tx: Sender<(ProcId, Request)>,
    req_rx: Receiver<(ProcId, Request)>,
    flights: Vec<Option<Flight>>,
    free_flights: Vec<usize>,
    pendings: Vec<Option<Pending>>,
    free_pendings: Vec<usize>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    clock: SimTime,
    runnable: VecDeque<(ProcId, ResumeKind)>,
    messages_delivered: u64,
    wire_bytes_delivered: u64,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Simulation {
        let (req_tx, req_rx) = unbounded();
        Simulation {
            resources: Vec::new(),
            procs: Vec::new(),
            mailboxes: Vec::new(),
            req_tx,
            req_rx,
            flights: Vec::new(),
            free_flights: Vec::new(),
            pendings: Vec::new(),
            free_pendings: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            clock: SimTime::ZERO,
            runnable: VecDeque::new(),
            messages_delivered: 0,
            wire_bytes_delivered: 0,
        }
    }

    /// Registers a FIFO resource and returns its id.
    pub fn add_resource(&mut self, name: &str) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource::new(name.to_string()));
        id
    }

    /// Number of processes spawned so far (the next spawn gets this id).
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// Spawns a simulated process. Ids are assigned densely in spawn order,
    /// so the *n*-th spawn receives `ProcId(n)`.
    pub fn spawn<F>(&mut self, name: &str, host: HostSpec, f: F) -> ProcId
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let pid = ProcId(self.procs.len() as u32);
        let (resume_tx, resume_rx) = unbounded();
        let req_tx = self.req_tx.clone();
        let ctx = Ctx {
            pid,
            host,
            req_tx: req_tx.clone(),
            resume_rx,
            now: Cell::new(SimTime::ZERO),
        };
        let thread_name = format!("sim-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // Wait for the engine's start signal before running user code.
                match ctx.resume_rx.recv() {
                    Ok(resume) => ctx.now.set(resume.time),
                    Err(_) => return,
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                match result {
                    Ok(()) => {
                        let _ = req_tx.send((pid, Request::Finish));
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<SimAborted>().is_some() {
                            // Quiet teardown: the engine already gave up on us.
                        } else {
                            let msg = panic_message(payload.as_ref());
                            let _ = req_tx.send((pid, Request::Panicked(msg)));
                        }
                    }
                }
            })
            .expect("failed to spawn simulation thread");
        self.procs.push(ProcSlot {
            name: name.to_string(),
            resume_tx,
            handle: Some(handle),
            state: ProcState::Ready,
            finished_at: SimTime::ZERO,
        });
        self.mailboxes.push(Mailbox::default());
        pid
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        debug_assert!(at >= self.clock, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time: at,
            seq,
            kind,
        }));
    }

    fn alloc_flight(&mut self, flight: Flight) -> usize {
        if let Some(idx) = self.free_flights.pop() {
            self.flights[idx] = Some(flight);
            idx
        } else {
            self.flights.push(Some(flight));
            self.flights.len() - 1
        }
    }

    fn alloc_pending(&mut self, p: Pending) -> usize {
        if let Some(idx) = self.free_pendings.pop() {
            self.pendings[idx] = Some(p);
            idx
        } else {
            self.pendings.push(Some(p));
            self.pendings.len() - 1
        }
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if unfinished processes remain but no
    /// event can make progress, and [`SimError::ProcPanic`] if a simulated
    /// process panics.
    pub fn run(mut self) -> Result<SimOutcome, SimError> {
        // All processes start ready at t = 0, in spawn order.
        for i in 0..self.procs.len() {
            self.runnable.push_back((ProcId(i as u32), ResumeKind::Ok));
        }

        let result = self.event_loop();

        // Tear down: wake any still-blocked threads so they can exit, then join.
        for slot in &mut self.procs {
            // Dropping the sender disconnects blocked receivers.
            let (dead_tx, _) = unbounded();
            slot.resume_tx = dead_tx;
        }
        for slot in &mut self.procs {
            if let Some(h) = slot.handle.take() {
                let _ = h.join();
            }
        }

        result.map(|end_time| SimOutcome {
            end_time,
            proc_finish: self
                .procs
                .iter()
                .map(|p| (p.name.clone(), p.finished_at))
                .collect(),
            resources: self
                .resources
                .iter()
                .enumerate()
                .map(|(i, r)| r.stats(ResourceId(i as u32), end_time))
                .collect(),
            messages_delivered: self.messages_delivered,
            wire_bytes_delivered: self.wire_bytes_delivered,
        })
    }

    fn event_loop(&mut self) -> Result<SimTime, SimError> {
        loop {
            while let Some((pid, resume)) = self.runnable.pop_front() {
                self.run_proc(pid, resume)?;
            }
            if self.all_finished() {
                let end = self
                    .procs
                    .iter()
                    .map(|p| p.finished_at)
                    .max()
                    .unwrap_or(self.clock);
                return Ok(end);
            }
            match self.heap.pop() {
                Some(Reverse(ev)) => {
                    debug_assert!(ev.time >= self.clock);
                    self.clock = ev.time;
                    self.dispatch(ev.kind);
                }
                None => {
                    let blocked = self
                        .procs
                        .iter()
                        .filter(|p| p.state == ProcState::Blocked)
                        .map(|p| p.name.clone())
                        .collect();
                    return Err(SimError::Deadlock {
                        time: self.clock,
                        blocked,
                    });
                }
            }
        }
    }

    fn all_finished(&self) -> bool {
        self.procs.iter().all(|p| p.state == ProcState::Finished)
    }

    /// Resumes process `pid` and services its requests until it blocks,
    /// finishes, or panics.
    fn run_proc(&mut self, pid: ProcId, mut resume: ResumeKind) -> Result<(), SimError> {
        loop {
            let slot = &mut self.procs[pid.index()];
            slot.state = ProcState::Ready;
            slot.resume_tx
                .send(Resume {
                    time: self.clock,
                    kind: resume,
                })
                .expect("process thread hung up unexpectedly");
            let (rpid, req) = self
                .req_rx
                .recv()
                .expect("all process threads disconnected");
            debug_assert_eq!(rpid, pid, "request from a process that is not running");
            match req {
                Request::Hold(d) => {
                    self.schedule(self.clock + d, EventKind::Wake(pid));
                    self.procs[pid.index()].state = ProcState::Blocked;
                    return Ok(());
                }
                Request::Serve { resource, service } => {
                    let started =
                        self.resources[resource.index()].enqueue(Waiter::Proc(pid), service);
                    if let Some(d) = started {
                        self.schedule(self.clock + d, EventKind::ServiceDone(resource));
                    }
                    self.procs[pid.index()].state = ProcState::Blocked;
                    return Ok(());
                }
                Request::Transmit { mut env, plan } => {
                    env.sent_at = self.clock;
                    self.start_transmit(env, plan);
                    resume = ResumeKind::Ok;
                }
                Request::Recv(m) => {
                    if let Some(env) = self.mailboxes[pid.index()].take_match(&m) {
                        resume = ResumeKind::Msg(env);
                    } else {
                        self.mailboxes[pid.index()].waiting = Some(m);
                        self.procs[pid.index()].state = ProcState::Blocked;
                        return Ok(());
                    }
                }
                Request::TryRecv(m) => {
                    let env = self.mailboxes[pid.index()].take_match(&m);
                    resume = ResumeKind::TryMsg(env);
                }
                Request::Finish => {
                    let slot = &mut self.procs[pid.index()];
                    slot.state = ProcState::Finished;
                    slot.finished_at = self.clock;
                    return Ok(());
                }
                Request::Panicked(message) => {
                    return Err(SimError::ProcPanic {
                        name: self.procs[pid.index()].name.clone(),
                        message,
                    });
                }
            }
        }
    }

    fn start_transmit(&mut self, env: Envelope, plan: TransmitPlan) {
        let fragments = plan.into_fragments();
        if fragments.is_empty() {
            // Instant delivery.
            let pending = self.alloc_pending(Pending {
                remaining: 1,
                env: Some(env),
            });
            self.complete_pending(pending);
            return;
        }
        let pending = self.alloc_pending(Pending {
            remaining: fragments.len(),
            env: Some(env),
        });
        for stages in fragments {
            let flight = Flight {
                stages: stages.into(),
                pending,
            };
            let idx = self.alloc_flight(flight);
            self.advance_flight(idx);
        }
    }

    fn advance_flight(&mut self, idx: usize) {
        loop {
            let flight = self.flights[idx]
                .as_mut()
                .expect("advancing a retired flight");
            match flight.stages.pop_front() {
                None => {
                    let pending = flight.pending;
                    self.flights[idx] = None;
                    self.free_flights.push(idx);
                    self.complete_pending(pending);
                    return;
                }
                Some(Stage::Latency(d)) => {
                    if d.is_zero() {
                        continue;
                    }
                    self.schedule(self.clock + d, EventKind::FlightStage(idx));
                    return;
                }
                Some(Stage::Serve { resource, service }) => {
                    let started =
                        self.resources[resource.index()].enqueue(Waiter::Flight(idx), service);
                    if let Some(d) = started {
                        self.schedule(self.clock + d, EventKind::ServiceDone(resource));
                    }
                    return;
                }
            }
        }
    }

    fn complete_pending(&mut self, idx: usize) {
        let done = {
            let p = self.pendings[idx].as_mut().expect("retired pending");
            p.remaining -= 1;
            p.remaining == 0
        };
        if done {
            let mut p = self.pendings[idx].take().expect("retired pending");
            self.free_pendings.push(idx);
            let mut env = p.env.take().expect("pending without envelope");
            env.delivered_at = self.clock;
            self.deliver(env);
        }
    }

    fn deliver(&mut self, env: Envelope) {
        self.messages_delivered += 1;
        self.wire_bytes_delivered += env.wire_bytes;
        let dst = env.dst;
        let mbox = &mut self.mailboxes[dst.index()];
        mbox.queue.push_back(env);
        if let Some(m) = mbox.waiting {
            if let Some(matched) = mbox.take_match(&m) {
                mbox.waiting = None;
                self.runnable.push_back((dst, ResumeKind::Msg(matched)));
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Wake(pid) => {
                self.runnable.push_back((pid, ResumeKind::Ok));
            }
            EventKind::ServiceDone(rid) => {
                let (done, next) = self.resources[rid.index()].complete();
                if let Some(d) = next {
                    self.schedule(self.clock + d, EventKind::ServiceDone(rid));
                }
                match done {
                    Waiter::Proc(pid) => {
                        self.runnable.push_back((pid, ResumeKind::Ok));
                    }
                    Waiter::Flight(idx) => {
                        self.advance_flight(idx);
                    }
                }
            }
            EventKind::FlightStage(idx) => {
                self.advance_flight(idx);
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Results of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Virtual time at which the last process finished.
    pub end_time: SimTime,
    /// `(name, finish_time)` for every process, in spawn order.
    pub proc_finish: Vec<(String, SimTime)>,
    /// Usage statistics for every resource, in registration order.
    pub resources: Vec<ResourceStats>,
    /// Total messages delivered to mailboxes.
    pub messages_delivered: u64,
    /// Total wire bytes across all delivered messages.
    pub wire_bytes_delivered: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn empty_simulation_completes_at_zero() {
        let sim = Simulation::new();
        let out = sim.run().unwrap();
        assert_eq!(out.end_time, SimTime::ZERO);
        assert_eq!(out.messages_delivered, 0);
    }

    #[test]
    fn hold_advances_time() {
        let mut sim = Simulation::new();
        sim.spawn("p", HostSpec::sun_ipx(), |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.hold(us(500));
            assert_eq!(ctx.now(), SimTime::ZERO + us(500));
        });
        let out = sim.run().unwrap();
        assert_eq!(out.end_time, SimTime::ZERO + us(500));
    }

    #[test]
    fn work_advances_time_by_host_rate() {
        let mut sim = Simulation::new();
        sim.spawn("p", HostSpec::sun_ipx(), |ctx| {
            // 4.5 MFLOP on a 4.5 MFLOP/s host = 1 second.
            ctx.work(Work::flops(4_500_000));
            assert_eq!(ctx.now().as_secs_f64(), 1.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn send_and_receive_through_latency() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            let env = Envelope::new(ctx.pid(), ProcId(1), 42, Bytes::from_static(b"payload"));
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(us(250))]));
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::tagged(42));
            assert_eq!(env.delivered_at, SimTime::ZERO + us(250));
            assert_eq!(&env.payload[..], b"payload");
            assert_eq!(env.src, ProcId(0));
        });
        let out = sim.run().unwrap();
        assert_eq!(out.messages_delivered, 1);
    }

    #[test]
    fn shared_resource_serializes_transmissions() {
        // Two senders contend for one wire; the second message must wait.
        let mut sim = Simulation::new();
        let wire = sim.add_resource("wire");
        for i in 0..2 {
            sim.spawn(&format!("tx{i}"), HostSpec::sun_ipx(), move |ctx| {
                let env = Envelope::new(ctx.pid(), ProcId(2), i, Bytes::new());
                ctx.transmit(
                    env,
                    TransmitPlan::single(vec![Stage::Serve {
                        resource: wire,
                        service: us(100),
                    }]),
                );
            });
        }
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let a = ctx.recv(Matcher::any());
            let b = ctx.recv(Matcher::any());
            assert_eq!(a.delivered_at, SimTime::ZERO + us(100));
            assert_eq!(b.delivered_at, SimTime::ZERO + us(200));
        });
        let out = sim.run().unwrap();
        let wire_stats = &out.resources[0];
        assert_eq!(wire_stats.served, 2);
        assert_eq!(wire_stats.busy_time, us(200));
    }

    #[test]
    fn fragments_pipeline_through_stages() {
        // 4 fragments through two sequential resources of equal service s:
        // pipelined completion = (n + 1) * s, not 2 n s.
        let mut sim = Simulation::new();
        let a = sim.add_resource("stage-a");
        let b = sim.add_resource("stage-b");
        sim.spawn("tx", HostSpec::sun_ipx(), move |ctx| {
            let frags = (0..4)
                .map(|_| {
                    vec![
                        Stage::Serve {
                            resource: a,
                            service: us(10),
                        },
                        Stage::Serve {
                            resource: b,
                            service: us(10),
                        },
                    ]
                })
                .collect();
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::fragments(frags));
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::any());
            assert_eq!(env.delivered_at, SimTime::ZERO + us(50));
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            ctx.hold(us(1_000));
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::instant());
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let env = ctx.recv(Matcher::any());
            assert_eq!(ctx.now(), SimTime::ZERO + us(1_000));
            assert_eq!(env.transit_time(), Some(SimDuration::ZERO));
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_recv_probes_without_blocking() {
        let mut sim = Simulation::new();
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            assert!(ctx.try_recv(Matcher::any()).is_none());
            ctx.hold(us(10));
            assert!(ctx.try_recv(Matcher::any()).is_none());
        });
        sim.run().unwrap();
    }

    #[test]
    fn selective_recv_skips_non_matching() {
        let mut sim = Simulation::new();
        sim.spawn("tx", HostSpec::sun_ipx(), |ctx| {
            for tag in [1u32, 2, 3] {
                let env = Envelope::new(ctx.pid(), ProcId(1), tag, Bytes::new());
                ctx.transmit(env, TransmitPlan::instant());
            }
        });
        sim.spawn("rx", HostSpec::sun_ipx(), |ctx| {
            let b = ctx.recv(Matcher::tagged(2));
            assert_eq!(b.tag, 2);
            let a = ctx.recv(Matcher::any());
            assert_eq!(a.tag, 1, "matching must preserve arrival order");
            let c = ctx.recv(Matcher::any());
            assert_eq!(c.tag, 3);
        });
        sim.run().unwrap();
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("stuck", HostSpec::sun_ipx(), |ctx| {
            let _ = ctx.recv(Matcher::any());
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked, vec!["stuck".to_string()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("bad", HostSpec::sun_ipx(), |_ctx| {
            panic!("boom");
        });
        match sim.run() {
            Err(SimError::ProcPanic { name, message }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Many processes wake at the same instant; completion order must be
        // identical across runs.
        fn run_once() -> Vec<(String, SimTime)> {
            let mut sim = Simulation::new();
            for i in 0..8 {
                sim.spawn(&format!("p{i}"), HostSpec::sun_ipx(), move |ctx| {
                    ctx.hold(us(100));
                    ctx.hold(us(100 + i));
                });
            }
            sim.run().unwrap().proc_finish
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
    }

    #[test]
    fn proc_ids_follow_spawn_order() {
        let mut sim = Simulation::new();
        let a = sim.spawn("a", HostSpec::sun_ipx(), |_| {});
        let b = sim.spawn("b", HostSpec::sun_ipx(), |_| {});
        assert_eq!(a, ProcId(0));
        assert_eq!(b, ProcId(1));
        assert_eq!(sim.proc_count(), 2);
        sim.run().unwrap();
    }

    #[test]
    fn ping_pong_round_trip_time() {
        let mut sim = Simulation::new();
        let one_way = us(300);
        sim.spawn("a", HostSpec::sun_ipx(), move |ctx| {
            let env = Envelope::new(ctx.pid(), ProcId(1), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(one_way)]));
            let _ = ctx.recv(Matcher::any());
            assert_eq!(ctx.now(), SimTime::ZERO + us(600));
        });
        sim.spawn("b", HostSpec::sun_ipx(), move |ctx| {
            let _ = ctx.recv(Matcher::any());
            let env = Envelope::new(ctx.pid(), ProcId(0), 0, Bytes::new());
            ctx.transmit(env, TransmitPlan::single(vec![Stage::Latency(one_way)]));
        });
        sim.run().unwrap();
    }
}
